"""Contrastive pre-training and cross-workload transfer.

Demonstrates the two "better starting point" mechanisms the paper
compares in Section 4.3:

1. DGI pre-training of the graph encoder on the target workload itself
   (cheap — it never touches the measurement environment), and
2. transferring a policy trained on a *different* workload and
   fine-tuning it (expensive — the source training needs measurements).

Run:  python examples/pretrain_and_transfer.py
"""

import numpy as np

from repro import ClusterSpec, build_vgg16, build_inception_v3, fast_profile
from repro.core import build_mars_agent, transfer_agent
from repro.core.generalize import generalization_run
from repro.gnn import DGI
from repro.graph import FeatureExtractor, normalized_adjacency


def main():
    cluster = ClusterSpec.default()
    fx = FeatureExtractor()
    config = fast_profile(seed=0, iterations=12)

    # --- 1. Pre-train the encoder with Deep Graph Infomax -------------
    target = build_inception_v3(scale=0.34)
    agent = build_mars_agent(target, cluster, config, feature_extractor=fx)
    clock = agent.pretrain(config.pretrain, seed=0)
    res = agent.pretrain_result
    print(f"DGI pre-training: loss {res.losses[0]:.3f} -> {res.best_loss:.3f} "
          f"in {res.iterations} iterations ({clock:.1f} simulated seconds)")

    # The discriminator now tells real node/summary pairs from corrupted ones.
    dgi = DGI(agent.encoder, rng=0)
    acc = dgi.accuracy(agent.features, normalized_adjacency(target), np.random.default_rng(1))
    print(f"discriminator accuracy on fresh corruptions: {acc:.2%}")

    # --- 2. Transfer a policy trained on VGG16 to Inception-V3 --------
    source = build_vgg16(scale=0.5)
    gen = generalization_run(
        source,
        target,
        cluster=cluster,
        config=config,
        finetune_samples=60,
        train_patience=80,
        feature_extractor=fx,
    )
    print(f"\ntrained on {gen.train_workload} "
          f"({gen.train_history.total_samples} samples, best {gen.train_history.best_runtime:.4f}s)")
    print(f"fine-tuned on {gen.test_workload} for {gen.finetune_history.total_samples} samples")
    print(f"final per-step time on the unseen workload: {gen.final_runtime:.4f}s")


if __name__ == "__main__":
    main()
