"""Placing a custom model on a custom machine.

The library is not limited to the paper's three benchmarks: any DAG of
operations with shape/FLOP/byte attributes can be placed on any cluster.
This example builds a small two-tower recommender model with the
GraphBuilder API and places it on an asymmetric machine (2 GPUs).

Run:  python examples/custom_workload.py
"""

from repro import ClusterSpec, PlacementEnv, fast_profile, optimize_placement
from repro.sim import DeviceSpec
from repro.workloads.builder import GraphBuilder, matmul_flops


def build_two_tower(batch: int = 512, embed_dim: int = 128, items: int = 100_000):
    """A two-tower retrieval model: user tower, item tower, dot product."""
    b = GraphBuilder("two_tower")
    user_ids = b.op("user_ids", "Input", shape=(batch,), cpu_only=True)
    item_ids = b.op("item_ids", "Input", shape=(batch,), cpu_only=True)

    towers = {}
    for tower, ids in (("user", user_ids), ("item", item_ids)):
        x = b.op(f"{tower}/embed", "Embedding", inputs=[ids],
                 shape=(batch, embed_dim),
                 flops=float(batch * embed_dim),
                 params=4.0 * items * embed_dim,
                 coloc=f"{tower}_table")
        for i, width in enumerate((512, 256, embed_dim)):
            prev_width = embed_dim if i == 0 else (512, 256)[i - 1]
            x = b.op(f"{tower}/fc{i}", "MatMul", inputs=[x],
                     shape=(batch, width),
                     flops=matmul_flops(batch, prev_width, width),
                     params=4.0 * prev_width * width)
            x = b.op(f"{tower}/relu{i}", "ReLU", inputs=[x],
                     shape=(batch, width), flops=float(batch * width))
        towers[tower] = x

    score = b.op("score", "MatMul", inputs=[towers["user"], towers["item"]],
                 shape=(batch,), flops=matmul_flops(batch, embed_dim, 1))
    loss = b.op("loss", "CrossEntropy", inputs=[score], shape=(1,), flops=float(batch))
    b.op("train/apply_gradients", "ApplyGradient", inputs=[loss], shape=(1,),
         flops=3.0 * 2 * items * embed_dim)
    return b.build()


def main():
    graph = build_two_tower()
    print(graph.summary())

    # A custom asymmetric machine: one big GPU, one small GPU, a CPU.
    cluster = ClusterSpec(
        devices=(
            DeviceSpec.p100(0, memory_gb=16.0),
            DeviceSpec.p100(1, memory_gb=8.0),
            DeviceSpec.xeon(0),
        )
    )
    result = optimize_placement(
        graph, cluster, "mars", fast_profile(seed=0, iterations=15)
    )
    env = PlacementEnv(graph, cluster)
    best = env.resolve(result.history.best_placement)
    print(f"best per-step time: {result.final_runtime * 1000:.2f} ms")
    print("placement:", best.describe())
    # The two embedding towers parallelize across the two GPUs.
    for name in ("user/embed", "item/embed"):
        idx = graph.index_of(name)
        print(f"  {name} -> {cluster.devices[best.device_of(idx)].name}")


if __name__ == "__main__":
    main()
