"""Model-parallel BERT: the workload that motivates device placement.

BERT-Base at sequence length 384 / batch 24 needs ~24 GB of training
memory — it cannot run on a single 12 GB GPU (the paper's Table 2 reports
OOM for both the Human Expert and GPU-Only baselines). The RL agent must
discover a placement that (a) fits per-device memory and (b) minimizes
the inter-GPU communication that model parallelism introduces.

Run:  python examples/place_bert.py
"""

import numpy as np

from repro import (
    ClusterSpec,
    MeasurementProtocol,
    PlacementEnv,
    build_bert,
    fast_profile,
    gpu_only_placement,
    optimize_placement,
)
from repro.core.baselines import balanced_chain_placement
from repro.sim import MemoryModel


def main():
    graph = build_bert(scale=0.5)  # 6 transformer layers for a quick demo
    cluster = ClusterSpec.default(gpu_memory_gb=6.0)
    print(graph.summary())

    # Show why placement matters: the single-GPU placement is infeasible.
    memory = MemoryModel()
    naive = gpu_only_placement(graph, cluster)
    report = memory.check(naive)
    print("\nGPU-only placement:", report.describe(cluster))
    assert not report.fits, "expected the naive placement to OOM"

    # A classical heuristic: balanced contiguous chains over k GPUs. k=2
    # balances *compute*, which can still violate memory — the first k that
    # fits is the honest comparison point.
    env = PlacementEnv(graph, cluster)
    for k in (2, 3, 4):
        chain = balanced_chain_placement(graph, cluster, k=k)
        runtime = env.final_run(chain.devices)
        if np.isfinite(runtime):
            print(f"balanced-chain heuristic (k={k}): {runtime:.3f}s/step, "
                  f"{chain.num_cut_edges()} cut edges")
            break
        print(f"balanced-chain heuristic (k={k}): OOM")

    # Let Mars search. The 30s cutoff aborts evaluations of hopeless
    # placements, exactly as described in Section 3.4.
    config = fast_profile(seed=0, iterations=40)
    result = optimize_placement(
        graph,
        cluster,
        agent_kind="mars",
        config=config,
        protocol=MeasurementProtocol(bad_step_threshold=30.0),
    )
    print(f"\nMars best placement: {result.final_runtime:.3f}s/step")
    best = env.resolve(result.history.best_placement)
    print("per-device memory:", memory.check(best).describe(cluster))
    print("placement:", best.describe())

    invalid = sum(r.n_invalid for r in result.history.records)
    print(f"\nsearch statistics: {result.history.total_samples} sampled placements, "
          f"{invalid} were OOM (penalized with a {result.env.protocol.invalid_penalty:.0f}s step time)")


if __name__ == "__main__":
    main()
