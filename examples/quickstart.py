"""Quickstart: find a device placement for Inception-V3 with Mars.

Builds the Inception-V3 computational graph, the paper's 4-GPU machine,
and trains the Mars agent (DGI-pre-trained GCN encoder + segment-level
seq2seq placer, PPO) for a handful of policy iterations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ClusterSpec,
    PlacementEnv,
    build_inception_v3,
    fast_profile,
    gpu_only_placement,
    optimize_placement,
)


def main():
    # A scaled-down Inception-V3 keeps this example under a minute.
    graph = build_inception_v3(scale=0.34)
    cluster = ClusterSpec.default()  # 4x P100-12GB + Xeon host
    print(graph.summary())

    # 30 policy iterations keep this demo short; with ~40 the agent reaches
    # the single-GPU optimum (see benchmarks/bench_table2.py).
    config = fast_profile(seed=0, iterations=30)
    result = optimize_placement(graph, cluster, agent_kind="mars", config=config)

    history = result.history
    print(f"\nsearched {history.total_samples} placements "
          f"({history.sim_clock / 3600:.2f} simulated hours of agent training)")
    print(f"best per-step time found: {history.best_runtime:.4f}s")
    print(f"final 1000-step evaluation: {result.final_runtime:.4f}s")

    # Compare against the GPU-only baseline.
    env = PlacementEnv(graph, cluster)
    baseline = env.final_run(gpu_only_placement(graph, cluster).devices)
    print(f"GPU-only baseline:          {baseline:.4f}s")

    placement = env.resolve(history.best_placement)
    print("\nbest placement:", placement.describe())


if __name__ == "__main__":
    main()
