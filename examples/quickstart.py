"""Quickstart: find a device placement for Inception-V3 with Mars.

Builds the Inception-V3 computational graph, the paper's 4-GPU machine,
and trains the Mars agent (DGI-pre-trained GCN encoder + segment-level
seq2seq placer, PPO) for a handful of policy iterations. The search is
recorded by the telemetry layer (docs/observability.md): a run directory
with JSONL events, a manifest and a metrics snapshot lands under runs/,
and the run-summary table is printed at the end.

Run:  PYTHONPATH=src python examples/quickstart.py [iterations]
"""

import sys

from repro import (
    ClusterSpec,
    PlacementEnv,
    build_inception_v3,
    fast_profile,
    gpu_only_placement,
    optimize_placement,
)
from repro.telemetry import start_run, use_telemetry
from repro.telemetry.report import render_report


def main(iterations=None):
    if iterations is None:
        try:
            iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 30
        except ValueError:
            sys.exit(f"usage: {sys.argv[0]} [iterations]")
    # A scaled-down Inception-V3 keeps this example under a minute.
    graph = build_inception_v3(scale=0.34)
    cluster = ClusterSpec.default()  # 4x P100-12GB + Xeon host
    print(graph.summary())

    # 30 policy iterations keep this demo short; with ~40 the agent reaches
    # the single-GPU optimum (see benchmarks/bench_table2.py).
    config = fast_profile(seed=0, iterations=iterations)
    tel = start_run(
        "quickstart-inception-v3",
        base_dir="runs",
        manifest={"workload": graph.name, "agent_kind": "mars",
                  "seed": 0, "iterations": iterations},
    )
    with use_telemetry(tel):
        result = optimize_placement(graph, cluster, agent_kind="mars", config=config)
    tel.close()

    history = result.history
    print(f"\nsearched {history.total_samples} placements "
          f"({history.sim_clock / 3600:.2f} simulated hours of agent training)")
    print(f"best per-step time found: {history.best_runtime:.4f}s")
    print(f"final 1000-step evaluation: {result.final_runtime:.4f}s")

    # Compare against the GPU-only baseline.
    env = PlacementEnv(graph, cluster)
    baseline = env.final_run(gpu_only_placement(graph, cluster).devices)
    print(f"GPU-only baseline:          {baseline:.4f}s")

    placement = env.resolve(history.best_placement)
    print("\nbest placement:", placement.describe())

    # The telemetry run summary (same as `python -m repro.telemetry.report`).
    print()
    print(render_report(tel.run_dir))
    print(f"\ntelemetry run directory: {tel.run_dir}")
    print("open a Perfetto trace with: "
          f"PYTHONPATH=src python -m repro.telemetry.report {tel.run_dir} --trace run.trace.json")


if __name__ == "__main__":
    main()
