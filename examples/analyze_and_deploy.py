"""Analyzing a placement and deploying a trained agent.

After the search finishes, practitioners want to know *why* the chosen
placement is fast: which device does what, how much time goes to
communication, and where the critical path runs. This example trains a
small agent, prints the full diagnostic report and an ASCII execution
timeline, then saves the agent and reloads it for greedy (sample-free)
placement.

Run:  python examples/analyze_and_deploy.py
"""

import os
import tempfile

from repro import ClusterSpec, PlacementEnv, build_gnmt, fast_profile, optimize_placement
from repro.analysis import (
    analyze_placement,
    build_timeline,
    critical_path,
    render_timeline,
)
from repro.core import greedy_placement, load_agent, save_agent


def main():
    graph = build_gnmt(scale=0.2)
    cluster = ClusterSpec.default(gpu_memory_gb=3.0)
    print(graph.summary())

    result = optimize_placement(
        graph, cluster, "mars", fast_profile(seed=0, iterations=25)
    )
    env = PlacementEnv(graph, cluster)
    best = env.resolve(result.history.best_placement)

    # --- Diagnostics ---------------------------------------------------
    report = analyze_placement(best)
    print("\n=== placement report ===")
    print(report.summary())

    cp_placed, _ = critical_path(graph, cluster, best)
    cp_ideal, _ = critical_path(graph, cluster)
    print(f"\ncritical path: {cp_placed * 1e3:.1f} ms placed "
          f"vs {cp_ideal * 1e3:.1f} ms best-device lower bound")

    print("\n=== execution timeline (one training step) ===")
    print(render_timeline(build_timeline(best), width=68))

    # --- Deploy --------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "mars_gnmt")
        save_agent(path, result.agent, "mars", workload=graph.name)
        restored, meta = load_agent(path, graph, cluster, fast_profile(seed=0))
        devices = greedy_placement(restored, env)
        runtime = env.final_run(devices)
        print(f"\nreloaded checkpoint ({meta['num_parameters']} parameters)")
        if runtime == runtime:  # not NaN
            print(f"greedy (argmax) placement step time: {runtime:.4f}s")
        else:
            # The argmax of a stochastic policy can violate memory even when
            # good sampled placements exist — deploy the best *measured*
            # placement instead, which is what the paper reports.
            print("greedy placement OOMs; deploying the best measured placement:")
            print(f"best measured placement step time: "
                  f"{env.final_run(result.history.best_placement):.4f}s")


if __name__ == "__main__":
    main()
