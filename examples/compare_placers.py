"""Mini placer-design study (the experiment behind the paper's Table 1).

Trains the three placer designs — plain seq2seq, Transformer-XL and the
segment-level seq2seq — on identical, frozen, DGI-pre-trained node
representations and compares the placements they find for a scaled GNMT.

Run:  python examples/compare_placers.py
"""

import time

from repro import ClusterSpec, MeasurementProtocol, build_gnmt, fast_profile, optimize_placement

PLACERS = [
    ("study:seq2seq", "plain seq2seq"),
    ("study:transformer_xl", "Transformer-XL"),
    ("study:segment_seq2seq", "segment-level seq2seq (Mars)"),
]


def main():
    graph = build_gnmt(scale=0.25)
    cluster = ClusterSpec.default(gpu_memory_gb=3.0)  # memory scaled with seq len
    print(graph.summary())
    print(f"{'placer':32s} {'best (s)':>9s} {'samples':>8s} {'wall (s)':>9s}")
    for kind, label in PLACERS:
        config = fast_profile(seed=0, iterations=25)
        start = time.perf_counter()
        result = optimize_placement(
            graph,
            cluster,
            agent_kind=kind,
            config=config,
            protocol=MeasurementProtocol(bad_step_threshold=20.0),
        )
        wall = time.perf_counter() - start
        print(f"{label:32s} {result.final_runtime:9.4f} "
              f"{result.history.total_samples:8d} {wall:9.1f}")


if __name__ == "__main__":
    main()
