"""Encoder-placer policy agents (Mars and the GDP baseline).

Both share :class:`EncoderPlacerPolicy`: a graph encoder produces node
representations which a placer turns into per-op device choices; the two
are trained jointly (Section 3.4). They differ in which encoder/placer is
plugged in and whether the encoder is pre-trained with contrastive
learning.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.config import MarsConfig
from repro.gnn import GCNEncoder, GraphSAGEEncoder, pretrain_encoder
from repro.graph import CompGraph, FeatureExtractor, adjacency_matrix, normalized_adjacency
from repro.nn import Module, Tensor, no_grad
from repro.placers import MLPPlacer, SegmentSeq2SeqPlacer, TransformerXLPlacer
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.rl.trainer import AGENT_DEVICE_FLOPS, AGENT_PASS_OVERHEAD
from repro.sim.cluster import ClusterSpec
from repro.utils.rng import new_rng


class _IdentityEncoder(Module):
    """Pass-through encoder (ablation: placer sees raw features)."""

    def __init__(self, in_dim: int):
        super().__init__()
        self.in_dim = in_dim
        self.out_dim = in_dim

    def forward(self, x, adj) -> Tensor:
        return x if isinstance(x, Tensor) else Tensor(x)


class EncoderPlacerPolicy(PolicyAgent):
    """Joint encoder+placer policy over one workload graph."""

    def __init__(
        self,
        graph: CompGraph,
        cluster: ClusterSpec,
        encoder: Module,
        placer,
        features: Optional[np.ndarray] = None,
        feature_extractor: Optional[FeatureExtractor] = None,
        encoder_adj: Optional[sp.spmatrix] = None,
    ):
        super().__init__()
        self.graph = graph
        self.cluster = cluster
        self.num_ops = graph.num_nodes
        self.num_devices = cluster.num_devices
        self.feature_extractor = feature_extractor or FeatureExtractor()
        self.features = (
            features if features is not None else self.feature_extractor(graph)
        )
        self.encoder = encoder
        self.placer = placer
        if encoder_adj is not None:
            self.adj = encoder_adj
        elif isinstance(encoder, GraphSAGEEncoder):
            self.adj = adjacency_matrix(graph)
        else:
            self.adj = normalized_adjacency(graph)
        self.pretrain_result = None
        #: When True, ``parameters()`` exposes only the placer — the
        #: encoder's representations are fixed, as in the paper's placer
        #: study (Table 1).
        self.freeze_encoder = False

    def parameters(self):
        if self.freeze_encoder:
            return self.placer.parameters()
        return super().parameters()

    # ------------------------------------------------------------------
    def node_representations(self) -> Tensor:
        if self.freeze_encoder:
            with no_grad():
                reps = self.encoder(self.features, self.adj)
            return reps.detach()
        return self.encoder(self.features, self.adj)

    def sample(self, n_samples: int, rng, greedy: bool = False) -> AgentRollout:
        rng = new_rng(rng)
        with no_grad():
            reps = self.node_representations()
            out = self.placer.run(reps, n_samples=n_samples, rng=rng, greedy=greedy)
        return AgentRollout(
            placements=out.actions,
            internal={"placement": out.actions},
            old_logp=out.log_probs.data.copy(),
        )

    def evaluate(self, internal: Dict[str, np.ndarray]) -> Tuple[Tensor, Tensor]:
        reps = self.node_representations()
        out = self.placer.run(reps, actions=internal["placement"])
        return out.log_probs, out.entropy

    # ------------------------------------------------------------------
    def pretrain(self, config, seed=None) -> float:
        """DGI pre-training of the encoder (paper Section 3.2).

        Returns the *simulated* wall-clock seconds the pre-training would
        cost — contrastive learning never touches the measurement
        environment, so this is pure (cheap) agent compute.
        """
        if not config.enabled:
            return 0.0
        self.pretrain_result = pretrain_encoder(
            self.encoder,
            self.features,
            normalized_adjacency(self.graph)
            if not isinstance(self.encoder, GraphSAGEEncoder)
            else self.adj,
            iterations=config.iterations,
            lr=config.learning_rate,
            grad_clip=config.grad_clip,
            seed=seed,
        )
        iters = self.pretrain_result.iterations
        per_iter = (
            6.0 * self.encoder.num_parameters() * self.num_ops * 2 / AGENT_DEVICE_FLOPS
            + AGENT_PASS_OVERHEAD
        )
        return iters * per_iter


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def _make_encoder(kind: str, in_dim: int, hidden: int, layers: int, rng):
    if kind == "gcn":
        return GCNEncoder(in_dim, hidden_dim=hidden, num_layers=layers, rng=rng)
    if kind == "sage":
        return GraphSAGEEncoder(in_dim, hidden_dim=hidden, num_layers=layers, rng=rng)
    if kind == "identity":
        return _IdentityEncoder(in_dim)
    raise ValueError(f"unknown encoder kind {kind!r}")


def _make_placer(kind: str, in_dim: int, num_devices: int, cfg, rng):
    if kind == "segment_seq2seq":
        return SegmentSeq2SeqPlacer(
            in_dim,
            num_devices,
            hidden_size=cfg.hidden_size,
            segment_size=cfg.segment_size,
            action_embed_dim=cfg.action_embed_dim,
            rng=rng,
        )
    if kind == "seq2seq":
        return SegmentSeq2SeqPlacer(
            in_dim,
            num_devices,
            hidden_size=cfg.hidden_size,
            segment_size=None,
            action_embed_dim=cfg.action_embed_dim,
            rng=rng,
        )
    if kind == "transformer_xl":
        return TransformerXLPlacer(
            in_dim,
            num_devices,
            model_dim=cfg.model_dim,
            n_layers=cfg.n_layers,
            n_heads=cfg.n_heads,
            segment_size=cfg.segment_size,
            rng=rng,
        )
    if kind == "mlp":
        return MLPPlacer(in_dim, num_devices, hidden_size=cfg.hidden_size, rng=rng)
    raise ValueError(f"unknown placer kind {kind!r}")


def build_mars_agent(
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: Optional[FeatureExtractor] = None,
) -> EncoderPlacerPolicy:
    """Mars: GCN encoder + segment-level seq2seq placer."""
    rng = new_rng(config.seed)
    fx = feature_extractor or FeatureExtractor()
    encoder = _make_encoder(
        config.encoder.kind, fx.dim, config.encoder.hidden_dim, config.encoder.num_layers, rng
    )
    placer = _make_placer(
        config.placer.kind, encoder.out_dim, cluster.num_devices, config.placer, rng
    )
    return EncoderPlacerPolicy(graph, cluster, encoder, placer, feature_extractor=fx)


def build_encoder_placer_agent(
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: Optional[FeatureExtractor] = None,
) -> EncoderPlacerPolicy:
    """The GDP baseline [33]: GraphSAGE encoder + Transformer-XL placer."""
    rng = new_rng(config.seed)
    fx = feature_extractor or FeatureExtractor()
    encoder = GraphSAGEEncoder(
        fx.dim, hidden_dim=config.encoder.hidden_dim, num_layers=config.encoder.num_layers, rng=rng
    )
    placer = TransformerXLPlacer(
        encoder.out_dim,
        cluster.num_devices,
        model_dim=config.placer.model_dim,
        n_layers=config.placer.n_layers,
        n_heads=config.placer.n_heads,
        segment_size=config.placer.segment_size,
        rng=rng,
    )
    return EncoderPlacerPolicy(graph, cluster, encoder, placer, feature_extractor=fx)


def build_placer_study_agent(
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    placer_kind: str,
    feature_extractor: Optional[FeatureExtractor] = None,
) -> EncoderPlacerPolicy:
    """Table 1 agents: a (pre-trainable) GCN encoder + the placer under study."""
    rng = new_rng(config.seed)
    fx = feature_extractor or FeatureExtractor()
    encoder = _make_encoder(
        config.encoder.kind, fx.dim, config.encoder.hidden_dim, config.encoder.num_layers, rng
    )
    placer = _make_placer(placer_kind, encoder.out_dim, cluster.num_devices, config.placer, rng)
    return EncoderPlacerPolicy(graph, cluster, encoder, placer, feature_extractor=fx)
