"""The paper's agents and baselines, ready to train.

* :func:`build_mars_agent` — GCN encoder (DGI pre-trainable) + segment-level
  seq2seq placer (the paper's contribution);
* :func:`build_encoder_placer_agent` — GraphSAGE + Transformer-XL (GDP [33]);
* :class:`GrouperPlacerAgent` — MLP grouper + seq2seq placer (Hierarchical
  Planner [20]);
* static baselines — Human Expert, GPU-Only, and a classical partitioner;
* :func:`optimize_placement` — the end-to-end search entry point;
* generalization utilities for Table 3.
"""

from repro.core.agents import (
    EncoderPlacerPolicy,
    build_mars_agent,
    build_encoder_placer_agent,
    build_placer_study_agent,
)
from repro.core.grouper_placer import GrouperPlacerAgent, build_grouper_placer_agent
from repro.core.baselines import (
    gpu_only_placement,
    human_expert_placement,
    balanced_chain_placement,
    partitioner_placement,
)
from repro.core.search import optimize_placement, OptimizationResult
from repro.core.runstate import (
    RunStateManager,
    latest_snapshot,
    load_run_state,
    history_to_json,
    install_signal_handlers,
    restore_signal_handlers,
    halt_requested,
    clear_halt,
)
from repro.core.generalize import transfer_agent, generalization_run
from repro.core.checkpoint import save_agent, load_agent, greedy_placement
from repro.core.annealing import AnnealingConfig, AnnealingResult, anneal_placement

__all__ = [
    "EncoderPlacerPolicy",
    "build_mars_agent",
    "build_encoder_placer_agent",
    "build_placer_study_agent",
    "GrouperPlacerAgent",
    "build_grouper_placer_agent",
    "gpu_only_placement",
    "human_expert_placement",
    "balanced_chain_placement",
    "partitioner_placement",
    "optimize_placement",
    "OptimizationResult",
    "RunStateManager",
    "latest_snapshot",
    "load_run_state",
    "history_to_json",
    "install_signal_handlers",
    "restore_signal_handlers",
    "halt_requested",
    "clear_halt",
    "transfer_agent",
    "generalization_run",
    "save_agent",
    "load_agent",
    "greedy_placement",
    "AnnealingConfig",
    "AnnealingResult",
    "anneal_placement",
]
