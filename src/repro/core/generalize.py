"""Generalization across workloads (paper Section 4.3, Table 3).

The agent is trained on one workload until it stops improving ("cannot
find better placement for 100 steps"), its parameters are transferred to a
fresh agent over the unseen workload (possible because the shared op-type
vocabulary keeps feature spaces identical), and the policy is fine-tuned
for 100 samples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import MarsConfig, fast_profile
from repro.core.agents import EncoderPlacerPolicy
from repro.core.search import OptimizationResult, build_agent
from repro.graph import CompGraph, FeatureExtractor
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim.cluster import ClusterSpec
from repro.sim.env import PlacementEnv
from repro.utils.logging import get_logger

logger = get_logger("repro.core.generalize")


def transfer_agent(
    source: EncoderPlacerPolicy,
    target_graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    agent_kind: str = "mars_no_pretrain",
    feature_extractor: Optional[FeatureExtractor] = None,
) -> EncoderPlacerPolicy:
    """A new agent over ``target_graph`` initialized from ``source``'s weights."""
    fx = feature_extractor or source.feature_extractor
    agent, _ = build_agent(agent_kind, target_graph, cluster, config, fx)
    agent.load_state_dict(source.state_dict())
    return agent


@dataclass
class GeneralizationResult:
    train_workload: str
    test_workload: str
    train_history: SearchHistory
    finetune_history: SearchHistory
    final_runtime: float


def generalization_run(
    train_graph: CompGraph,
    test_graph: CompGraph,
    cluster: Optional[ClusterSpec] = None,
    config: Optional[MarsConfig] = None,
    finetune_samples: int = 100,
    train_patience: int = 100,
    agent_kind: str = "mars",
    feature_extractor: Optional[FeatureExtractor] = None,
    test_env: Optional[PlacementEnv] = None,
) -> GeneralizationResult:
    """Train on ``train_graph``, fine-tune and evaluate on ``test_graph``."""
    cluster = cluster or ClusterSpec.default()
    config = config or fast_profile()
    fx = feature_extractor or FeatureExtractor()

    # Phase 1: train on the source workload until improvement stalls.
    source_env = PlacementEnv(train_graph, cluster)
    agent, pretrain_clock = build_agent(agent_kind, train_graph, cluster, config, fx)
    train_cfg = replace(config.trainer, patience_samples=train_patience)
    train_history = SearchHistory(pretrain_clock=pretrain_clock)
    train_history = JointTrainer(agent, source_env, train_cfg).train(train_history)

    # Phase 2: transfer and fine-tune on the unseen workload.
    target_agent = transfer_agent(
        agent, test_graph, cluster, config, agent_kind="mars_no_pretrain", feature_extractor=fx
    )
    env = test_env or PlacementEnv(test_graph, cluster)
    ft_iterations = max(1, finetune_samples // config.trainer.samples_per_policy)
    ft_cfg = replace(
        config.trainer,
        iterations=ft_iterations,
        early_stop_samples=finetune_samples,
        patience_samples=None,
    )
    finetune_history = JointTrainer(target_agent, env, ft_cfg).train()

    if finetune_history.best_placement is None:
        final = float("nan")
    else:
        final = env.final_run(finetune_history.best_placement)
    return GeneralizationResult(
        train_workload=train_graph.name,
        test_workload=test_graph.name,
        train_history=train_history,
        finetune_history=finetune_history,
        final_runtime=final,
    )
