"""End-to-end placement optimization — the library's main entry point.

``optimize_placement`` builds the requested agent, optionally pre-trains
its encoder with contrastive learning, trains it jointly with PPO against
the measurement environment, and reports the best placement's long-run
per-step time (the paper's evaluation metric).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

import numpy as np

from repro.config import MarsConfig, fast_profile
from repro.core.runstate import RunStateManager, latest_snapshot, load_run_state
from repro.core.agents import (
    build_encoder_placer_agent,
    build_mars_agent,
    build_placer_study_agent,
)
from repro.core.grouper_placer import build_grouper_placer_agent
from repro.graph import CompGraph, FeatureExtractor
from repro.rl.policy import PolicyAgent
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim.cluster import ClusterSpec
from repro.sim.env import PlacementEnv
from repro.sim.measurement import MeasurementProtocol
from repro.telemetry import Telemetry, telemetry_from_config, use_telemetry
from repro.telemetry.tracing import span
from repro.utils.logging import get_logger

logger = get_logger("repro.core.search")


@dataclass
class OptimizationResult:
    """Everything an experiment needs from one agent-training run."""

    workload: str
    agent_kind: str
    history: SearchHistory
    final_runtime: float  # 1000-step evaluation of the best placement
    agent: PolicyAgent
    env: PlacementEnv

    @property
    def training_hours(self) -> float:
        """Simulated agent-training time (the Fig. 8 quantity)."""
        return self.history.sim_clock / 3600.0


AGENT_BUILDERS: Dict[str, Callable] = {}


def _register(name: str):
    def deco(fn):
        AGENT_BUILDERS[name] = fn
        return fn

    return deco


@_register("mars")
def _mars(graph, cluster, config, fx):
    agent = build_mars_agent(graph, cluster, config, feature_extractor=fx)
    pretrain_clock = agent.pretrain(config.pretrain, seed=config.seed)
    return agent, pretrain_clock


@_register("mars_no_pretrain")
def _mars_np(graph, cluster, config, fx):
    return build_mars_agent(graph, cluster, config, feature_extractor=fx), 0.0


@_register("encoder_placer")
def _gdp(graph, cluster, config, fx):
    return build_encoder_placer_agent(graph, cluster, config, feature_extractor=fx), 0.0


@_register("grouper_placer")
def _hier(graph, cluster, config, fx):
    return build_grouper_placer_agent(graph, cluster, config, feature_extractor=fx), 0.0


for _placer_kind in ("seq2seq", "segment_seq2seq", "transformer_xl", "mlp"):

    def _make(placer_kind):
        def build(graph, cluster, config, fx):
            agent = build_placer_study_agent(
                graph, cluster, config, placer_kind, feature_extractor=fx
            )
            pretrain_clock = agent.pretrain(config.pretrain, seed=config.seed)
            # Table 1 trains the placers on *fixed* representations from the
            # trained encoder, isolating the placer design.
            agent.freeze_encoder = True
            return agent, pretrain_clock

        return build

    AGENT_BUILDERS[f"study:{_placer_kind}"] = _make(_placer_kind)


def build_agent(
    kind: str,
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: Optional[FeatureExtractor] = None,
):
    """Build agent ``kind``; returns ``(agent, simulated_pretrain_seconds)``."""
    try:
        builder = AGENT_BUILDERS[kind]
    except KeyError as exc:
        raise KeyError(f"unknown agent kind {kind!r}; options: {sorted(AGENT_BUILDERS)}") from exc
    return builder(graph, cluster, config, feature_extractor)


def optimize_placement(
    graph: CompGraph,
    cluster: Optional[ClusterSpec] = None,
    agent_kind: str = "mars",
    config: Optional[MarsConfig] = None,
    protocol: Optional[MeasurementProtocol] = None,
    env: Optional[PlacementEnv] = None,
    feature_extractor: Optional[FeatureExtractor] = None,
    telemetry: Optional[Telemetry] = None,
    snapshot_dir: Optional[str] = None,
    resume: bool = False,
) -> OptimizationResult:
    """Find a placement for ``graph`` with agent ``agent_kind``.

    Telemetry: pass a :class:`~repro.telemetry.Telemetry` session, or let
    ``config.telemetry`` decide — with ``run_dir`` set, each call opens a
    per-run directory (events + manifest + metrics, see
    ``docs/observability.md``); otherwise the ambient session is used.

    Crash safety: with ``snapshot_dir`` set, the run writes resumable
    snapshots every ``config.snapshot.snapshot_every`` iterations and on
    graceful shutdown; with ``resume=True`` the newest complete snapshot
    under ``snapshot_dir`` is restored first — the resumed run replays
    the remaining iterations bit-identically to an uninterrupted one
    (docs/architecture.md §"Run state & resume").
    """
    cluster = cluster or ClusterSpec.default()
    config = config or fast_profile()

    owned = None
    if telemetry is None:
        owned = telemetry_from_config(
            getattr(config, "telemetry", None),
            name=f"{graph.name}__{agent_kind.replace(':', '-')}",
            manifest={"workload": graph.name, "agent_kind": agent_kind,
                      "seed": config.seed},
        )
        telemetry = owned
    try:
        with use_telemetry(telemetry) as tel:
            env = env or PlacementEnv(
                graph,
                cluster,
                protocol=protocol,
                batch=getattr(config, "eval_batch", None),
                incremental=getattr(config, "incremental", None),
            )
            snapshot = None
            if resume and snapshot_dir:
                snap_path = latest_snapshot(snapshot_dir)
                if snap_path is None:
                    logger.info(
                        "no snapshot to resume under %s — starting fresh", snapshot_dir
                    )
                else:
                    snapshot = load_run_state(snap_path)
            if snapshot is not None:
                if snapshot["agent_kind"] != agent_kind:
                    raise ValueError(
                        f"snapshot at {snapshot['path']!r} holds a "
                        f"{snapshot['agent_kind']!r} run, requested {agent_kind!r}"
                    )
                # Lazy import (checkpoint.py imports this module).
                from repro.core.checkpoint import load_agent

                agent, _meta = load_agent(
                    os.path.join(snapshot["path"], "agent"),
                    graph,
                    cluster,
                    config,
                    feature_extractor,
                )
                history = snapshot["history"]
                done = len(history.records)
                pretrain_clock = history.pretrain_clock
                trainer = JointTrainer(
                    agent,
                    env,
                    replace(
                        config.trainer,
                        iterations=max(0, config.trainer.iterations - done),
                    ),
                    health=getattr(config, "health", None),
                )
                trainer.load_state_dict(snapshot["trainer"])
                env.load_state_dict(snapshot["env"])
                tel.emit(
                    "resume",
                    iteration=done,
                    path=snapshot["path"],
                    samples=int(history.total_samples),
                    sim_clock=float(history.sim_clock),
                )
                tel.update_manifest(
                    resumed_from=snapshot["path"], resumed_at_iteration=done
                )
                logger.info(
                    "resumed %s/%s from %s (iteration %d, %d samples)",
                    graph.name,
                    agent_kind,
                    snapshot["path"],
                    done,
                    history.total_samples,
                )
            else:
                agent, pretrain_clock = build_agent(
                    agent_kind, graph, cluster, config, feature_extractor
                )
                history = SearchHistory(pretrain_clock=pretrain_clock)
                trainer = JointTrainer(
                    agent, env, config.trainer, health=getattr(config, "health", None)
                )
            run_state = None
            if snapshot_dir:
                run_state = RunStateManager(
                    snapshot_dir,
                    getattr(config, "snapshot", None),
                    agent_kind=agent_kind,
                    workload=graph.name,
                    mars_config=config,
                )
            # Trace root for the whole search: trainer.iteration spans and
            # the env spans below them all join this trace (only when the
            # session writes event files — in-memory runs record nothing).
            distrib = getattr(config, "distrib", None)
            workers = getattr(distrib, "workers", 0)
            with span(
                "search.optimize",
                telemetry=tel,
                new_trace=True,
                workload=graph.name,
                agent_kind=agent_kind,
                workers=int(workers),
            ):
                if workers > 0:
                    # Lazy import: repro.distrib imports this module's
                    # build_agent for worker replicas.
                    from repro.distrib import train_distributed

                    history = train_distributed(
                        trainer,
                        config,
                        agent_kind,
                        history=history,
                        run_state=run_state,
                        telemetry=tel,
                    )
                else:
                    history = trainer.train(history, run_state=run_state)
                if history.halt_reason is not None and not history.halt_reason.startswith(
                    "signal"
                ):
                    logger.warning(
                        "%s/%s halted by health watchdog: %s",
                        graph.name,
                        agent_kind,
                        history.halt_reason,
                    )

                if history.best_placement is None:
                    logger.warning(
                        "%s/%s never found a valid placement", graph.name, agent_kind
                    )
                    final = float("nan")
                else:
                    final = env.final_run(history.best_placement)
    finally:
        if env is not None:
            env.close_pool()  # evaluation workers; restarts lazily if reused
        if owned is not None:
            owned.close()
    return OptimizationResult(
        workload=graph.name,
        agent_kind=agent_kind,
        history=history,
        final_runtime=final,
        agent=agent,
        env=env,
    )
