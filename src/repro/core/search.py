"""End-to-end placement optimization — the library's main entry point.

``optimize_placement`` builds the requested agent, optionally pre-trains
its encoder with contrastive learning, trains it jointly with PPO against
the measurement environment, and reports the best placement's long-run
per-step time (the paper's evaluation metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.config import MarsConfig, fast_profile
from repro.core.agents import (
    build_encoder_placer_agent,
    build_mars_agent,
    build_placer_study_agent,
)
from repro.core.grouper_placer import build_grouper_placer_agent
from repro.graph import CompGraph, FeatureExtractor
from repro.rl.policy import PolicyAgent
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim.cluster import ClusterSpec
from repro.sim.env import PlacementEnv
from repro.sim.measurement import MeasurementProtocol
from repro.telemetry import Telemetry, telemetry_from_config, use_telemetry
from repro.utils.logging import get_logger

logger = get_logger("repro.core.search")


@dataclass
class OptimizationResult:
    """Everything an experiment needs from one agent-training run."""

    workload: str
    agent_kind: str
    history: SearchHistory
    final_runtime: float  # 1000-step evaluation of the best placement
    agent: PolicyAgent
    env: PlacementEnv

    @property
    def training_hours(self) -> float:
        """Simulated agent-training time (the Fig. 8 quantity)."""
        return self.history.sim_clock / 3600.0


AGENT_BUILDERS: Dict[str, Callable] = {}


def _register(name: str):
    def deco(fn):
        AGENT_BUILDERS[name] = fn
        return fn

    return deco


@_register("mars")
def _mars(graph, cluster, config, fx):
    agent = build_mars_agent(graph, cluster, config, feature_extractor=fx)
    pretrain_clock = agent.pretrain(config.pretrain, seed=config.seed)
    return agent, pretrain_clock


@_register("mars_no_pretrain")
def _mars_np(graph, cluster, config, fx):
    return build_mars_agent(graph, cluster, config, feature_extractor=fx), 0.0


@_register("encoder_placer")
def _gdp(graph, cluster, config, fx):
    return build_encoder_placer_agent(graph, cluster, config, feature_extractor=fx), 0.0


@_register("grouper_placer")
def _hier(graph, cluster, config, fx):
    return build_grouper_placer_agent(graph, cluster, config, feature_extractor=fx), 0.0


for _placer_kind in ("seq2seq", "segment_seq2seq", "transformer_xl", "mlp"):

    def _make(placer_kind):
        def build(graph, cluster, config, fx):
            agent = build_placer_study_agent(
                graph, cluster, config, placer_kind, feature_extractor=fx
            )
            pretrain_clock = agent.pretrain(config.pretrain, seed=config.seed)
            # Table 1 trains the placers on *fixed* representations from the
            # trained encoder, isolating the placer design.
            agent.freeze_encoder = True
            return agent, pretrain_clock

        return build

    AGENT_BUILDERS[f"study:{_placer_kind}"] = _make(_placer_kind)


def build_agent(
    kind: str,
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: Optional[FeatureExtractor] = None,
):
    """Build agent ``kind``; returns ``(agent, simulated_pretrain_seconds)``."""
    try:
        builder = AGENT_BUILDERS[kind]
    except KeyError as exc:
        raise KeyError(f"unknown agent kind {kind!r}; options: {sorted(AGENT_BUILDERS)}") from exc
    return builder(graph, cluster, config, feature_extractor)


def optimize_placement(
    graph: CompGraph,
    cluster: Optional[ClusterSpec] = None,
    agent_kind: str = "mars",
    config: Optional[MarsConfig] = None,
    protocol: Optional[MeasurementProtocol] = None,
    env: Optional[PlacementEnv] = None,
    feature_extractor: Optional[FeatureExtractor] = None,
    telemetry: Optional[Telemetry] = None,
) -> OptimizationResult:
    """Find a placement for ``graph`` with agent ``agent_kind``.

    Telemetry: pass a :class:`~repro.telemetry.Telemetry` session, or let
    ``config.telemetry`` decide — with ``run_dir`` set, each call opens a
    per-run directory (events + manifest + metrics, see
    ``docs/observability.md``); otherwise the ambient session is used.
    """
    cluster = cluster or ClusterSpec.default()
    config = config or fast_profile()

    owned = None
    if telemetry is None:
        owned = telemetry_from_config(
            getattr(config, "telemetry", None),
            name=f"{graph.name}__{agent_kind.replace(':', '-')}",
            manifest={"workload": graph.name, "agent_kind": agent_kind,
                      "seed": config.seed},
        )
        telemetry = owned
    try:
        with use_telemetry(telemetry):
            env = env or PlacementEnv(
                graph,
                cluster,
                protocol=protocol,
                batch=getattr(config, "eval_batch", None),
            )
            agent, pretrain_clock = build_agent(
                agent_kind, graph, cluster, config, feature_extractor
            )
            history = SearchHistory(pretrain_clock=pretrain_clock)
            trainer = JointTrainer(
                agent, env, config.trainer, health=getattr(config, "health", None)
            )
            history = trainer.train(history)
            if history.halt_reason is not None:
                logger.warning(
                    "%s/%s halted by health watchdog: %s",
                    graph.name,
                    agent_kind,
                    history.halt_reason,
                )

            if history.best_placement is None:
                logger.warning(
                    "%s/%s never found a valid placement", graph.name, agent_kind
                )
                final = float("nan")
            else:
                final = env.final_run(history.best_placement)
    finally:
        if env is not None:
            env.close_pool()  # evaluation workers; restarts lazily if reused
        if owned is not None:
            owned.close()
    return OptimizationResult(
        workload=graph.name,
        agent_kind=agent_kind,
        history=history,
        final_runtime=final,
        agent=agent,
        env=env,
    )
