"""Crash-safe resumable search runs.

A Mars search is long-horizon RL: the paper's headline claim is *reduced
agent training time*, yet a single SIGTERM or crash used to throw the
whole run away. This module snapshots everything a run needs to continue
**bit-identically** — agent weights (via the atomic ``save_agent``),
updater/optimizer moments, the EMA reward baseline, the rollout buffer,
the trainer's numpy ``Generator`` state (``bit_generator.state``), the
:class:`~repro.rl.trainer.SearchHistory`, the environment's measurement
clock *and its LRU result cache* (cache hits charge less simulated time
than misses, so an empty cache would skew the resumed clock), and the
health watchdog's sliding windows.

Layout: ``<run_dir>/snap-<NNNNNN>/`` with ``agent.npz`` + ``agent.json``
(the ordinary checkpoint), ``state.npz`` (all arrays) and
``runstate.json``. Every file is written atomically (temp +
``os.replace``, the ``core/checkpoint.py`` recipe) and ``runstate.json``
is written **last**: its presence marks the snapshot complete, so a
crash mid-snapshot leaves at worst an ignorable partial directory and
never a loadable-but-wrong one.

Graceful shutdown: :func:`install_signal_handlers` turns SIGTERM/SIGINT
into a *halt request*; the training loop finishes the current iteration,
snapshots, records ``halt_reason="signal: ..."`` in the run manifest
(the PR 3 halt path) and returns. ``--resume RUN_DIR`` on the
experiments runner, or ``optimize_placement(snapshot_dir=..., resume=True)``,
picks the run back up from the newest complete snapshot.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import time
from typing import Dict, List, Optional

import numpy as np

from repro.config import SnapshotConfig
from repro.rl.trainer import SearchHistory, SearchRecord
from repro.utils.logging import get_logger
from repro.utils.serialization import load_state_dict, save_state_dict

logger = get_logger("repro.core.runstate")

__all__ = [
    "RUNSTATE_VERSION",
    "SnapshotConfig",
    "RunStateManager",
    "latest_snapshot",
    "load_run_state",
    "history_to_state",
    "history_from_state",
    "history_to_json",
    "install_signal_handlers",
    "restore_signal_handlers",
    "halt_requested",
    "clear_halt",
]

#: Bump when the snapshot layout changes incompatibly; loaders refuse
#: versions they don't understand instead of resuming wrongly.
RUNSTATE_VERSION = 1

_SNAP_PREFIX = "snap-"
_SIDECAR = "runstate.json"


# ----------------------------------------------------------------------
# Graceful-shutdown signal handling (module-level: one flag per process)
# ----------------------------------------------------------------------
_PENDING_SIGNAL: Optional[str] = None
_INSTALLED: Dict[int, object] = {}


def _handler(signum, frame) -> None:
    global _PENDING_SIGNAL
    name = signal.Signals(signum).name
    if _PENDING_SIGNAL is not None and signum == signal.SIGINT:
        # Second Ctrl-C while already halting: stop immediately.
        raise KeyboardInterrupt
    _PENDING_SIGNAL = name
    logger.warning("%s received — finishing the current iteration, then snapshotting", name)


def install_signal_handlers(signals=(signal.SIGTERM, signal.SIGINT)) -> None:
    """Turn SIGTERM/SIGINT into a graceful halt request.

    Idempotent; call :func:`restore_signal_handlers` to undo (tests do).
    Only entry points opt in — importing the library never touches signal
    disposition.
    """
    for sig in signals:
        if sig not in _INSTALLED:
            _INSTALLED[sig] = signal.signal(sig, _handler)


def restore_signal_handlers() -> None:
    global _PENDING_SIGNAL
    for sig, previous in _INSTALLED.items():
        signal.signal(sig, previous)
    _INSTALLED.clear()
    _PENDING_SIGNAL = None


def halt_requested() -> Optional[str]:
    """The pending halt signal's name ("SIGTERM"/"SIGINT"), or ``None``."""
    return _PENDING_SIGNAL


def clear_halt() -> None:
    global _PENDING_SIGNAL
    _PENDING_SIGNAL = None


# ----------------------------------------------------------------------
# Nested-state packing: ndarrays go to .npz, everything else to JSON
# ----------------------------------------------------------------------
def _pack(obj, arrays: Dict[str, np.ndarray]):
    """Replace every ndarray in a nested structure with a reference into
    ``arrays``; returns the JSON-serializable skeleton."""
    if isinstance(obj, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = obj
        return {"__nd__": key}
    if isinstance(obj, dict):
        return {str(k): _pack(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_pack(v, arrays) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def _unpack(doc, arrays: Dict[str, np.ndarray]):
    if isinstance(doc, dict):
        if set(doc) == {"__nd__"}:
            return arrays[doc["__nd__"]]
        return {k: _unpack(v, arrays) for k, v in doc.items()}
    if isinstance(doc, list):
        return [_unpack(v, arrays) for v in doc]
    return doc


# ----------------------------------------------------------------------
# SearchHistory <-> plain state
# ----------------------------------------------------------------------
def history_to_state(history: SearchHistory) -> dict:
    """``SearchHistory`` as a packable dict (floats stay exact: Python's
    ``json`` round-trips float ``repr`` bit-for-bit)."""
    return {
        "records": [
            {
                "iteration": int(r.iteration),
                "samples_so_far": int(r.samples_so_far),
                "runtimes": [float(x) for x in r.runtimes],
                "valid_runtimes": [float(x) for x in r.valid_runtimes],
                "n_invalid": int(r.n_invalid),
                "n_truncated": int(r.n_truncated),
                "best_runtime": float(r.best_runtime),
                "baseline": float(r.baseline),
                "sim_clock": float(r.sim_clock),
            }
            for r in history.records
        ],
        "best_runtime": float(history.best_runtime),
        "best_placement": history.best_placement,
        "sim_clock": float(history.sim_clock),
        "pretrain_clock": float(history.pretrain_clock),
        "halt_reason": history.halt_reason,
    }


def history_from_state(state: dict) -> SearchHistory:
    records = [
        SearchRecord(
            iteration=int(r["iteration"]),
            samples_so_far=int(r["samples_so_far"]),
            runtimes=[float(x) for x in r["runtimes"]],
            valid_runtimes=[float(x) for x in r["valid_runtimes"]],
            n_invalid=int(r["n_invalid"]),
            n_truncated=int(r["n_truncated"]),
            best_runtime=float(r["best_runtime"]),
            baseline=float(r["baseline"]),
            sim_clock=float(r["sim_clock"]),
        )
        for r in state["records"]
    ]
    placement = state["best_placement"]
    return SearchHistory(
        records=records,
        best_runtime=float(state["best_runtime"]),
        best_placement=None if placement is None else np.asarray(placement, dtype=np.int64),
        sim_clock=float(state["sim_clock"]),
        pretrain_clock=float(state["pretrain_clock"]),
        halt_reason=state["halt_reason"],
    )


def history_to_json(history: SearchHistory) -> dict:
    """Pure-JSON form of a history (placement as a list) — the canonical
    document the resume property test and ``tools/resume_smoke.py``
    compare bit-for-bit."""
    state = history_to_state(history)
    placement = state["best_placement"]
    if placement is not None:
        state["best_placement"] = [int(x) for x in placement]
    return state


# ----------------------------------------------------------------------
# Snapshot directories
# ----------------------------------------------------------------------
def _snapshot_dirs(directory: str) -> "tuple[List[str], List[str]]":
    """(complete, incomplete) snapshot directories, sorted by iteration
    (the zero-padded ``snap-%06d`` name sorts lexicographically)."""
    complete: List[str] = []
    incomplete: List[str] = []
    if not directory or not os.path.isdir(directory):
        return complete, incomplete
    for name in sorted(os.listdir(directory)):
        full = os.path.join(directory, name)
        if not name.startswith(_SNAP_PREFIX) or not os.path.isdir(full):
            continue
        if os.path.exists(os.path.join(full, _SIDECAR)):
            complete.append(full)
        else:
            incomplete.append(full)
    return complete, incomplete


def latest_snapshot(directory: str) -> Optional[str]:
    """Newest *complete* snapshot under ``directory`` (``None`` if none).

    Directories without a ``runstate.json`` sidecar — a crash landed
    mid-snapshot — are ignored.
    """
    complete, _ = _snapshot_dirs(directory)
    return complete[-1] if complete else None


def load_run_state(path: str) -> dict:
    """Load one snapshot directory back into plain state.

    Returns the sidecar document with arrays re-inserted, ``history``
    rebuilt as a :class:`SearchHistory`, and ``path`` added. The agent
    itself is loaded separately with the ordinary
    :func:`repro.core.checkpoint.load_agent` on ``<path>/agent``.
    """
    with open(os.path.join(path, _SIDECAR)) as fh:
        doc = json.load(fh)
    version = doc.get("version")
    if version != RUNSTATE_VERSION:
        raise ValueError(
            f"snapshot {path!r} has runstate version {version!r}, "
            f"this build reads version {RUNSTATE_VERSION}"
        )
    arrays = load_state_dict(os.path.join(path, "state"))
    state = _unpack(doc, arrays)
    state["history"] = history_from_state(state["history"])
    state["path"] = path
    return state


class RunStateManager:
    """Writes periodic + on-halt snapshots of a training run.

    The trainer calls :meth:`after_iteration` at the end of every policy
    iteration: a snapshot is written every ``snapshot_every`` iterations,
    and always when a halt (signal or watchdog) is pending — so no
    completed iteration's work is ever lost. Old snapshots are pruned to
    the ``keep_last`` newest complete ones.
    """

    def __init__(
        self,
        directory: str,
        config: Optional[SnapshotConfig] = None,
        agent_kind: str = "",
        workload: str = "",
        mars_config=None,
        extra: Optional[dict] = None,
    ):
        self.directory = directory
        # Fresh default per manager — a shared default instance would alias.
        self.config = config if config is not None else SnapshotConfig()
        self.agent_kind = agent_kind
        self.workload = workload
        self.mars_config = mars_config  # echoed into the agent sidecar
        # Free-form run metadata recorded in every sidecar (the distrib
        # learner stamps workers/policy_version here). Mutable: callers
        # may update it between snapshots.
        self.extra: dict = dict(extra) if extra else {}
        self._last_snapshot_len: Optional[int] = None
        os.makedirs(directory, exist_ok=True)

    # -- hooks the trainer calls ----------------------------------------
    def after_iteration(self, trainer, history, telemetry=None, force: bool = False):
        """Snapshot if due (or halting); returns the pending signal name."""
        signame = halt_requested()
        every = self.config.snapshot_every
        due = bool(every and every > 0 and len(history.records) % every == 0)
        if signame or due or force:
            reason = f"signal:{signame}" if signame else ("halt" if force else "periodic")
            self.snapshot(trainer, history, telemetry, reason=reason)
        return signame

    def snapshot_if_new(self, trainer, history, telemetry=None, reason: str = "final"):
        """Snapshot unless one was already written at this iteration count."""
        if self._last_snapshot_len == len(history.records):
            return None
        return self.snapshot(trainer, history, telemetry, reason=reason)

    # -- the snapshot itself --------------------------------------------
    def snapshot(self, trainer, history, telemetry=None, reason: str = "periodic") -> str:
        # Lazy import: checkpoint.py imports core.search, which imports
        # this module's consumers — a module-level import would cycle.
        from repro.core.checkpoint import _write_json_atomic, save_agent

        start = time.perf_counter()
        n = len(history.records)
        path = os.path.join(self.directory, f"{_SNAP_PREFIX}{n:06d}")
        os.makedirs(path, exist_ok=True)
        save_agent(
            os.path.join(path, "agent"),
            trainer.agent,
            self.agent_kind,
            workload=self.workload,
            config=self.mars_config,
        )
        state = {
            "version": RUNSTATE_VERSION,
            "agent_kind": self.agent_kind,
            "workload": self.workload,
            "iteration": n,
            "reason": reason,
            "history": history_to_state(history),
            "trainer": trainer.state_dict(),
            "env": trainer.env.state_dict(),
        }
        if self.extra:
            state["extra"] = dict(self.extra)
        arrays: Dict[str, np.ndarray] = {}
        doc = _pack(state, arrays)
        if not arrays:  # np.load chokes on a zero-member archive
            arrays["__empty__"] = np.zeros(0)
        save_state_dict(os.path.join(path, "state"), arrays)
        # Sidecar last = commit point (same recipe as save_agent).
        _write_json_atomic(os.path.join(path, _SIDECAR), doc)
        self._last_snapshot_len = n
        duration = time.perf_counter() - start
        logger.info("snapshot %s (%s) in %.3fs", path, reason, duration)
        if telemetry is not None:
            telemetry.emit(
                "snapshot",
                iteration=n,
                path=path,
                reason=reason,
                duration_s=float(duration),
            )
        self.prune()
        return path

    def prune(self) -> None:
        """Drop incomplete snapshot dirs and all but the ``keep_last``
        newest complete ones (``keep_last <= 0`` keeps everything)."""
        complete, incomplete = _snapshot_dirs(self.directory)
        doomed = list(incomplete)
        if self.config.keep_last and self.config.keep_last > 0:
            doomed.extend(complete[: -self.config.keep_last])
        for path in doomed:
            shutil.rmtree(path, ignore_errors=True)
