"""The grouper-placer baseline (Hierarchical Planner, Mirhoseini et al. '18).

A two-layer MLP grouper assigns each op to one of ``num_groups`` groups;
group embeddings (mean op features per group) feed a seq2seq placer with
attention which assigns one device per *group*. Both networks are trained
jointly by policy gradient: the log-probability of a decision batch is the
concatenation of per-op group log-probs and per-group device log-probs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.config import MarsConfig
from repro.graph import CompGraph, FeatureExtractor
from repro.nn import Tensor, concat, no_grad, stack
from repro.placers import MLPGrouper, SegmentSeq2SeqPlacer
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.sim.cluster import ClusterSpec
from repro.utils.rng import new_rng


class GrouperPlacerAgent(PolicyAgent):
    """The hierarchical grouper-placer policy [20] over one workload graph.

    Decisions are factored into per-op group choices (MLP grouper) and
    per-group device choices (seq2seq placer with attention).
    """

    def __init__(
        self,
        graph: CompGraph,
        cluster: ClusterSpec,
        num_groups: int = 64,
        grouper_hidden: int = 64,
        placer_hidden: int = 64,
        action_embed_dim: int = 16,
        feature_extractor: FeatureExtractor = None,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        self.graph = graph
        self.cluster = cluster
        self.num_ops = graph.num_nodes
        self.num_devices = cluster.num_devices
        self.num_groups = min(num_groups, max(2, graph.num_nodes))
        fx = feature_extractor or FeatureExtractor()
        self.features = fx(graph)
        self.grouper = MLPGrouper(
            self.features.shape[1], self.num_groups, hidden_size=grouper_hidden, rng=rng
        )
        # The hierarchical model's placer is a plain seq2seq with attention
        # over the (short) group sequence.
        self.placer = SegmentSeq2SeqPlacer(
            self.features.shape[1],
            self.num_devices,
            hidden_size=placer_hidden,
            segment_size=None,
            action_embed_dim=action_embed_dim,
            rng=rng,
        )

    # ------------------------------------------------------------------
    def _placements_from(self, groups: np.ndarray, devices: np.ndarray) -> np.ndarray:
        return np.take_along_axis(devices, groups, axis=1)

    def sample(self, n_samples: int, rng, greedy: bool = False) -> AgentRollout:
        rng = new_rng(rng)
        with no_grad():
            feats = Tensor(self.features)
            groups, g_logp, _ = self.grouper.run(
                feats, n_samples=n_samples, rng=rng, greedy=greedy
            )
            embeddings = MLPGrouper.group_embeddings(self.features, groups, self.num_groups)
            dev_rows: List[np.ndarray] = []
            d_logp_rows: List[np.ndarray] = []
            for b in range(n_samples):
                out = self.placer.run(Tensor(embeddings[b]), n_samples=1, rng=rng, greedy=greedy)
                dev_rows.append(out.actions[0])
                d_logp_rows.append(out.log_probs.data[0])
        devices = np.stack(dev_rows)
        old_logp = np.concatenate([g_logp.data, np.stack(d_logp_rows)], axis=1)
        return AgentRollout(
            placements=self._placements_from(groups, devices),
            internal={"groups": groups, "devices": devices},
            old_logp=old_logp,
        )

    def evaluate(self, internal: Dict[str, np.ndarray]) -> Tuple[Tensor, Tensor]:
        groups = internal["groups"]
        devices = internal["devices"]
        feats = Tensor(self.features)
        _, g_logp, g_ent = self.grouper.run(feats, actions=groups)
        embeddings = MLPGrouper.group_embeddings(self.features, groups, self.num_groups)
        d_logps, d_ents = [], []
        for b in range(groups.shape[0]):
            out = self.placer.run(Tensor(embeddings[b]), actions=devices[b : b + 1])
            d_logps.append(out.log_probs.reshape(self.num_groups))
            d_ents.append(out.entropy.reshape(self.num_groups))
        d_logp = stack(d_logps, axis=0)
        d_ent = stack(d_ents, axis=0)
        return concat([g_logp, d_logp], axis=1), concat([g_ent, d_ent], axis=1)


def build_grouper_placer_agent(
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: FeatureExtractor = None,
) -> GrouperPlacerAgent:
    """Construct the grouper-placer baseline from a :class:`MarsConfig`."""
    return GrouperPlacerAgent(
        graph,
        cluster,
        num_groups=config.grouper.num_groups,
        grouper_hidden=config.grouper.hidden_size,
        placer_hidden=config.placer.hidden_size,
        action_embed_dim=config.placer.action_embed_dim,
        feature_extractor=feature_extractor,
        rng=config.seed,
    )
