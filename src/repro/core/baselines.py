"""Static placement baselines (paper Section 4.1).

* **GPU Only** — every GPU-compatible op on one GPU (valid only for models
  that fit, e.g. Inception-V3).
* **Human Expert** — the hand-crafted placements of Google's reference
  implementations: single-GPU for the vision models (TF-Slim), per-layer
  round-robin for GNMT (Google NMT), and no model parallelism for BERT
  (which therefore OOMs, as in the paper's Table 2).
* **Classical partitioner** — a Scotch-like balanced min-cut baseline
  (recursive Kernighan–Lin bisection over the op graph), included because
  the paper discusses why such solvers underperform: they optimize a static
  proxy (cut size under load balance) rather than measured step time.
"""

from __future__ import annotations

import re
from typing import Optional

import numpy as np

from repro.graph import CompGraph, topological_groups
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.placement import Placement, resolve_placement


def gpu_only_placement(graph: CompGraph, cluster: ClusterSpec, gpu: int = 0) -> Placement:
    """All GPU-compatible ops on ``cluster.gpu_indices[gpu]``."""
    device = cluster.gpu_indices[gpu]
    return resolve_placement(np.full(graph.num_nodes, device), graph, cluster)


_LAYER_RE = re.compile(r"(?:^|/)(?:enc|dec)/l(\d+)/")
_BLOCK_RE = re.compile(r"(?:^|/)layer(\d+)/")


def human_expert_placement(graph: CompGraph, cluster: ClusterSpec) -> Placement:
    """Reproduce the hand-crafted expert placement for each workload family.

    The family is inferred from the graph's op names:

    * RNN seq2seq graphs (``enc/l{i}``/``dec/l{i}`` ops): LSTM layer ``i``
      goes to GPU ``i % num_gpus``; embeddings stay with the first layer's
      device; the softmax/projection goes to the last GPU — Google's NMT
      round-robin scheme.
    * Transformer graphs (``layer{i}`` ops): no model-parallel reference
      implementation exists (the paper notes BERT "does not support
      multi-GPU training using model parallelism by default"), so the
      expert placement is single-GPU — OOM for BERT, exactly as reported.
    * Everything else (vision models): single GPU (TF-Slim).
    """
    gpus = cluster.gpu_indices
    names = [n.name for n in graph.nodes]
    is_rnn = any(_LAYER_RE.search(name) for name in names)
    if not is_rnn:
        return gpu_only_placement(graph, cluster)

    actions = np.full(graph.num_nodes, gpus[0])
    for i, name in enumerate(names):
        m = _LAYER_RE.search(name)
        if m:
            actions[i] = gpus[int(m.group(1)) % len(gpus)]
        elif name.startswith("proj/") or name.startswith("loss/"):
            actions[i] = gpus[-1]
        elif "embedding" in name:
            actions[i] = gpus[0]
        elif name.startswith("dec/attn"):
            actions[i] = gpus[0]  # attention lives with decoder layer 0
    return resolve_placement(actions, graph, cluster)


def balanced_chain_placement(graph: CompGraph, cluster: ClusterSpec, k: Optional[int] = None) -> Placement:
    """Contiguous topological chunks balanced by per-op compute time.

    A strong non-learned heuristic: split the topological order into ``k``
    contiguous ranges with (approximately) equal total best-device compute
    time and map range ``j`` to GPU ``j``.
    """
    gpus = cluster.gpu_indices
    k = k or len(gpus)
    k = min(k, len(gpus))
    if graph.num_nodes == 0:
        return resolve_placement(np.empty(0, dtype=np.int64), graph, cluster)
    if k <= 1:
        return resolve_placement(np.full(graph.num_nodes, gpus[0]), graph, cluster)
    cost = CostModel().op_time_matrix(graph, cluster).min(axis=1)
    order = np.asarray(graph.topological_order())
    cum = np.cumsum(cost[order])
    bounds = np.searchsorted(cum, np.linspace(0, cum[-1], k + 1)[1:-1])
    chunk_of_position = np.zeros(graph.num_nodes, dtype=np.int64)
    for j, b in enumerate(bounds):
        chunk_of_position[b:] = j + 1
    actions = np.empty(graph.num_nodes, dtype=np.int64)
    for position, op in enumerate(order):
        actions[op] = gpus[chunk_of_position[position]]
    return resolve_placement(actions, graph, cluster)


def partitioner_placement(
    graph: CompGraph, cluster: ClusterSpec, k: Optional[int] = None, seed: int = 0
) -> Placement:
    """Scotch-style balanced min-cut partitioning via recursive bisection.

    Uses networkx's Kernighan–Lin bisection on the undirected op graph,
    recursively, until ``k`` parts exist; parts are then mapped to GPUs.
    """
    import networkx as nx

    gpus = cluster.gpu_indices
    k = k or len(gpus)
    k = min(k, len(gpus))
    g = graph.to_networkx().to_undirected()
    parts = [set(g.nodes)]
    while len(parts) < k:
        # Split the currently largest part.
        parts.sort(key=len, reverse=True)
        biggest = parts.pop(0)
        if len(biggest) < 2:
            parts.append(biggest)
            break
        sub = g.subgraph(biggest)
        a, b = nx.algorithms.community.kernighan_lin_bisection(sub, seed=seed)
        parts.extend([set(a), set(b)])
    actions = np.zeros(graph.num_nodes, dtype=np.int64)
    for j, part in enumerate(parts):
        for node in part:
            actions[node] = gpus[j % len(gpus)]
    return resolve_placement(actions, graph, cluster)


def round_robin_groups_placement(graph: CompGraph, cluster: ClusterSpec, n_groups: int) -> Placement:
    """Topological grouping, groups dealt round-robin over GPUs (a weak
    scattering baseline, useful in tests and ablations)."""
    gpus = cluster.gpu_indices
    groups = topological_groups(graph, n_groups)
    actions = np.array([gpus[g % len(gpus)] for g in groups], dtype=np.int64)
    return resolve_placement(actions, graph, cluster)
