"""Simulated-annealing placement search — a classical, non-learned baseline.

The paper argues (Section 2) that classical combinatorial optimizers
underperform because they need an explicit cost model. Simulated annealing
sidesteps that by querying the *measurement environment* directly, which
makes it the fairest non-RL baseline: same reward signal, same measurement
budget, no neural networks. Useful for judging how much of the RL agents'
gain comes from learning rather than from raw search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.runstate import halt_requested
from repro.sim.env import PlacementEnv
from repro.utils.rng import new_rng


@dataclass
class AnnealingConfig:
    evaluations: int = 600  # measurement budget (== RL samples for fairness)
    initial_temperature: float = 0.1
    final_temperature: float = 1e-3
    block_move_probability: float = 0.5  # move a contiguous block vs one op
    max_block: int = 32
    restart_after: Optional[int] = 150  # rejected moves before a restart
    seed: int = 0


@dataclass
class AnnealingResult:
    best_runtime: float
    best_placement: np.ndarray
    runtimes: List[float] = field(default_factory=list)
    evaluations: int = 0
    wall_clock: float = 0.0  # simulated measurement time


def _propose(actions: np.ndarray, num_devices: int, cfg: AnnealingConfig, rng) -> np.ndarray:
    """Mutate: reassign one op or a contiguous block of ops."""
    out = actions.copy()
    n = len(actions)
    device = rng.integers(0, num_devices)
    if rng.random() < cfg.block_move_probability and n > 2:
        size = int(rng.integers(1, min(cfg.max_block, n) + 1))
        start = int(rng.integers(0, n - size + 1))
        out[start : start + size] = device
    else:
        out[rng.integers(0, n)] = device
    return out


def anneal_placement(env: PlacementEnv, config: Optional[AnnealingConfig] = None) -> AnnealingResult:
    """Search for a placement by simulated annealing against ``env``.

    Every candidate is charged to the environment's measurement clock like
    an RL sample would be, so results are budget-comparable with the
    agents' search histories. A pending graceful-shutdown request
    (:func:`repro.core.runstate.halt_requested`) stops the schedule early
    and returns the best placement found so far.
    """
    # A literal `config=AnnealingConfig()` default would be evaluated once
    # at definition time and *shared by every call* — any caller mutating
    # it (e.g. tuning `seed` between restarts) would silently change the
    # default for the whole process. `tools/lint_defaults.py` rejects the
    # pattern tree-wide.
    config = config if config is not None else AnnealingConfig()
    rng = new_rng(config.seed)
    n, k = env.num_ops, env.num_devices
    wall_start = env.stats.wall_clock

    def energy(actions) -> float:
        res = env.evaluate(actions)
        return res.per_step_time if res.valid else env.protocol.invalid_penalty

    current = rng.integers(0, k, n)
    current_e = energy(current)
    best, best_e = current.copy(), current_e
    result = AnnealingResult(best_runtime=best_e, best_placement=best.copy())
    result.runtimes.append(current_e)

    temps = np.geomspace(
        config.initial_temperature, config.final_temperature, max(config.evaluations - 1, 1)
    )
    rejected = 0
    for temp in temps:
        if halt_requested():
            break  # graceful shutdown: keep the best found so far
        candidate = _propose(current, k, config, rng)
        fallbacks_before = env.stats.incremental_fallbacks
        cand_e = energy(candidate)
        result.runtimes.append(cand_e)
        # Relative energy difference keeps acceptance scale-free.
        delta = (cand_e - current_e) / max(current_e, 1e-9)
        if delta <= 0 or rng.random() < np.exp(-delta / temp):
            current, current_e = candidate, cand_e
            rejected = 0
            # Accepting a candidate whose measurement fell back to full
            # simulation means the walk left the incremental anchor's
            # neighbourhood — re-anchor (lazily) so the proposals around
            # the new incumbent take the fast path again.
            if env.stats.incremental_fallbacks > fallbacks_before:
                env.anchor_incremental(current)
        else:
            rejected += 1
        if cand_e < best_e:
            best, best_e = candidate.copy(), cand_e
        if config.restart_after is not None and rejected >= config.restart_after:
            current, current_e = best.copy(), best_e
            rejected = 0
            env.anchor_incremental(current)

    result.best_runtime = best_e
    result.best_placement = best
    result.evaluations = env.stats.evaluations
    result.wall_clock = env.stats.wall_clock - wall_start
    return result
