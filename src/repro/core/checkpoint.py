"""Saving and restoring trained agents.

Checkpoints are ``.npz`` parameter archives plus a JSON sidecar recording
the agent kind and workload, so a placement policy trained once can be
reloaded and queried (or fine-tuned on another workload) later.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Tuple

import numpy as np

from repro.config import MarsConfig
from repro.core.search import build_agent
from repro.graph import CompGraph, FeatureExtractor
from repro.rl.policy import PolicyAgent
from repro.sim.cluster import ClusterSpec
from repro.utils.serialization import load_state_dict, save_state_dict


def save_agent(path: str, agent: PolicyAgent, agent_kind: str, workload: str = "") -> None:
    """Write ``path.npz`` (parameters) and ``path.json`` (metadata)."""
    save_state_dict(path, agent.state_dict())
    meta = {
        "agent_kind": agent_kind,
        "workload": workload,
        "num_ops": agent.num_ops,
        "num_devices": agent.num_devices,
        "num_parameters": agent.num_parameters(),
    }
    with open(path + ".json", "w") as fh:
        json.dump(meta, fh, indent=2)


def load_agent(
    path: str,
    graph: CompGraph,
    cluster: ClusterSpec,
    config: MarsConfig,
    feature_extractor: Optional[FeatureExtractor] = None,
) -> Tuple[PolicyAgent, dict]:
    """Rebuild the agent recorded at ``path`` over ``graph``.

    The target graph may differ from the training graph (transfer); only
    the device count must match, since the placer's output head is sized
    by it.
    """
    with open(path + ".json") as fh:
        meta = json.load(fh)
    if meta["num_devices"] != cluster.num_devices:
        raise ValueError(
            f"checkpoint was trained for {meta['num_devices']} devices, "
            f"cluster has {cluster.num_devices}"
        )
    kind = meta["agent_kind"]
    # Pre-training is skipped on load: the checkpoint already carries the
    # (possibly pre-trained) encoder weights.
    load_kind = "mars_no_pretrain" if kind == "mars" else kind
    agent, _ = build_agent(load_kind, graph, cluster, config, feature_extractor)
    agent.load_state_dict(load_state_dict(path))
    return agent, meta


def greedy_placement(agent: PolicyAgent, env) -> np.ndarray:
    """The policy's argmax placement, resolved against the environment's
    constraints. Useful for deploying a trained agent without sampling."""
    rollout = agent.sample(1, np.random.default_rng(0), greedy=True)
    return env.resolve(rollout.placements[0]).devices
