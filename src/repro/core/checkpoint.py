"""Saving and restoring trained agents.

Checkpoints are ``.npz`` parameter archives plus a JSON sidecar recording
the agent kind and workload, so a placement policy trained once can be
reloaded and queried (or fine-tuned on another workload) later. The
sidecar also echoes the architecture slice of the training config
(encoder/placer/grouper dims, seed) and the feature dimension the agent
was built over, which is what lets the serving layer (``repro.serve``)
rebuild agents from a bare checkpoint directory.

Both files are written atomically (temp file + ``os.replace``): a crash
mid-save leaves the previous checkpoint intact, never a truncated one —
required by the hot-reloading :class:`repro.serve.PolicyRegistry`.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Tuple

import numpy as np

from repro.config import MarsConfig, config_from_echo, config_to_echo
from repro.core.search import build_agent
from repro.graph import CompGraph, FeatureExtractor
from repro.rl.policy import PolicyAgent
from repro.sim.cluster import ClusterSpec
from repro.utils.serialization import load_state_dict, save_state_dict


def _write_json_atomic(path: str, doc: dict) -> None:
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=2)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def save_agent(
    path: str,
    agent: PolicyAgent,
    agent_kind: str,
    workload: str = "",
    config: Optional[MarsConfig] = None,
) -> None:
    """Write ``path.npz`` (parameters) and ``path.json`` (metadata).

    Pass the ``config`` the agent was built with to echo its architecture
    fields into the sidecar — ``load_agent(..., config=None)`` and the
    serving registry then rebuild the agent without further information.
    Both writes are atomic; the sidecar is written last, so a sidecar on
    disk always describes a complete parameter archive.
    """
    save_state_dict(path, agent.state_dict())
    meta = {
        "agent_kind": agent_kind,
        "workload": workload,
        "num_ops": agent.num_ops,
        "num_devices": agent.num_devices,
        "num_parameters": agent.num_parameters(),
        "feature_dim": agent.feature_dim,
    }
    if config is not None:
        meta["config"] = config_to_echo(config)
    _write_json_atomic(path + ".json", meta)


def load_agent(
    path: str,
    graph: CompGraph,
    cluster: ClusterSpec,
    config: Optional[MarsConfig] = None,
    feature_extractor: Optional[FeatureExtractor] = None,
) -> Tuple[PolicyAgent, dict]:
    """Rebuild the agent recorded at ``path`` over ``graph``.

    The target graph may differ from the training graph (transfer); only
    the device count must match, since the placer's output head is sized
    by it, and the feature dimension must match the target extractor,
    since the encoder's input layer is sized by it.

    With ``config=None`` the architecture is rebuilt from the sidecar's
    config echo (checkpoints written before the echo existed require an
    explicit config).
    """
    with open(path + ".json") as fh:
        meta = json.load(fh)
    if meta["num_devices"] != cluster.num_devices:
        raise ValueError(
            f"checkpoint was trained for {meta['num_devices']} devices, "
            f"cluster has {cluster.num_devices}"
        )
    if config is None:
        echo = meta.get("config")
        if echo is None:
            raise ValueError(
                f"checkpoint {path!r} has no config echo in its sidecar; "
                "pass the MarsConfig it was trained with explicitly"
            )
        config = config_from_echo(echo)
    fx = feature_extractor or FeatureExtractor()
    saved_dim = meta.get("feature_dim")
    if saved_dim and saved_dim != fx.dim:
        raise ValueError(
            f"checkpoint {path!r} was built over {saved_dim}-dim node "
            f"features, but the target feature extractor produces "
            f"{fx.dim}-dim features — encoder input shapes would not "
            "match; load with the extractor used at training time"
        )
    kind = meta["agent_kind"]
    # Pre-training is skipped on load: the checkpoint already carries the
    # (possibly pre-trained) encoder weights.
    load_kind = "mars_no_pretrain" if kind == "mars" else kind
    if load_kind.startswith("study:"):
        from dataclasses import replace

        config = replace(config, pretrain=replace(config.pretrain, enabled=False))
    agent, _ = build_agent(load_kind, graph, cluster, config, fx)
    agent.load_state_dict(load_state_dict(path))
    return agent, meta


def greedy_placement(agent: PolicyAgent, env) -> np.ndarray:
    """The policy's argmax placement, resolved against the environment's
    constraints. Useful for deploying a trained agent without sampling."""
    rollout = agent.sample(1, np.random.default_rng(0), greedy=True)
    return env.resolve(rollout.placements[0]).devices
