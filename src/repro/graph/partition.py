"""Grouping utilities.

The grouper-placer baseline [20] learns its grouping, but several places in
the library need *deterministic* groupings: merging op features into group
embeddings, the human-expert layer placements, and the min-cut baseline.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.graph import CompGraph


def group_contiguous(n_items: int, n_groups: int) -> np.ndarray:
    """Assign ``n_items`` sequence positions to ``n_groups`` contiguous
    groups of near-equal size. Returns an int array of group ids."""
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    n_groups = min(n_groups, max(n_items, 1))
    bounds = np.linspace(0, n_items, n_groups + 1).astype(int)
    groups = np.zeros(n_items, dtype=np.int64)
    for g, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        groups[lo:hi] = g
    return groups


def topological_groups(graph: CompGraph, n_groups: int) -> np.ndarray:
    """Group ops by contiguous ranges of the topological order.

    Ops that are adjacent in topological order are usually adjacent in the
    data flow, so contiguous grouping yields low-communication partitions —
    the same intuition behind the paper's segment-level placement.
    """
    order = graph.topological_order()
    groups = np.zeros(graph.num_nodes, dtype=np.int64)
    by_position = group_contiguous(graph.num_nodes, n_groups)
    for position, node_idx in enumerate(order):
        groups[node_idx] = by_position[position]
    return groups


def group_feature_means(features: np.ndarray, groups: np.ndarray, n_groups: int) -> np.ndarray:
    """Mean feature vector per group (the grouper-placer's group embedding).

    Empty groups get zero vectors.
    """
    dim = features.shape[1]
    out = np.zeros((n_groups, dim))
    counts = np.bincount(groups, minlength=n_groups).astype(float)
    np.add.at(out, groups, features)
    nonzero = counts > 0
    out[nonzero] /= counts[nonzero, None]
    return out
