"""The computational-graph container (a DAG of :class:`OpNode`)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.node import OpNode


class CompGraph:
    """A directed acyclic graph of operations.

    Node indices are assigned in insertion order, which for all built-in
    workload generators is already a valid topological order — the paper's
    placers consume ops as a topologically ordered sequence.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self.nodes: List[OpNode] = []
        self._index: Dict[str, int] = {}
        self._succ: List[List[int]] = []
        self._pred: List[List[int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: OpNode, inputs: Sequence[str] = ()) -> int:
        """Add ``node``; ``inputs`` are names of already-added producers."""
        if node.name in self._index:
            raise ValueError(f"duplicate node name {node.name!r}")
        idx = len(self.nodes)
        self.nodes.append(node)
        self._index[node.name] = idx
        self._succ.append([])
        self._pred.append([])
        for producer in inputs:
            self.add_edge(producer, node.name)
        return idx

    def add_edge(self, src: str, dst: str) -> None:
        """Data-flow edge ``src -> dst``; both nodes must already exist."""
        try:
            u, v = self._index[src], self._index[dst]
        except KeyError as exc:
            raise KeyError(f"unknown node in edge {src!r} -> {dst!r}") from exc
        if u == v:
            raise ValueError(f"self-loop on {src!r}")
        if v not in self._succ[u]:
            self._succ[u].append(v)
            self._pred[v].append(u)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ)

    def __len__(self) -> int:
        return len(self.nodes)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def node(self, name: str) -> OpNode:
        return self.nodes[self._index[name]]

    def successors(self, idx: int) -> List[int]:
        return self._succ[idx]

    def predecessors(self, idx: int) -> List[int]:
        return self._pred[idx]

    def edges(self) -> Iterable[Tuple[int, int]]:
        for u, succ in enumerate(self._succ):
            for v in succ:
                yield (u, v)

    def in_degrees(self) -> np.ndarray:
        return np.array([len(p) for p in self._pred], dtype=np.int64)

    def out_degrees(self) -> np.ndarray:
        return np.array([len(s) for s in self._succ], dtype=np.int64)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Kahn's algorithm; raises if the graph has a cycle."""
        indeg = self.in_degrees().copy()
        frontier = [i for i in range(self.num_nodes) if indeg[i] == 0]
        order: List[int] = []
        while frontier:
            # Pop smallest index for determinism.
            frontier.sort(reverse=True)
            u = frontier.pop()
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    frontier.append(v)
        if len(order) != self.num_nodes:
            raise ValueError(f"graph {self.name!r} contains a cycle")
        return order

    def is_topologically_indexed(self) -> bool:
        """True if insertion order is already a topological order."""
        return all(u < v for u, v in self.edges())

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems (cycles, dangling)."""
        self.topological_order()  # raises on cycles
        for node in self.nodes:
            if node.output_shape and any(s <= 0 for s in node.output_shape):
                raise ValueError(f"non-positive dim in {node.name}: {node.output_shape}")

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return float(sum(n.flops for n in self.nodes))

    def total_param_bytes(self) -> float:
        return float(sum(n.param_bytes for n in self.nodes))

    def total_activation_bytes(self) -> float:
        return float(sum(n.activation_bytes for n in self.nodes))

    def colocation_groups(self) -> Dict[str, List[int]]:
        groups: Dict[str, List[int]] = {}
        for i, node in enumerate(self.nodes):
            if node.colocation_group is not None:
                groups.setdefault(node.colocation_group, []).append(i)
        return groups

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of the graph (hex sha256).

        Built from the canonical serialization (``graph_to_dict``) with
        nodes sorted by name and edges sorted by endpoint names, so the
        hash is independent of insertion order and of Python's per-process
        ``hash()`` salting: the same graph content always produces the
        same fingerprint, in any process, on any platform. Any change to
        the name, a node attribute, or the edge set changes the hash.

        This is the cache identity the serving layer keys results by
        (``repro.serve``, docs/serving.md): two requests carrying
        semantically identical graphs never re-run inference.
        """
        import hashlib
        import json

        from repro.graph.io import graph_to_dict

        doc = graph_to_dict(self)
        doc["nodes"] = sorted(doc["nodes"], key=lambda n: n["name"])
        doc["edges"] = sorted(doc["edges"])
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` for analysis/visualization."""
        import networkx as nx

        g = nx.DiGraph(name=self.name)
        for i, node in enumerate(self.nodes):
            g.add_node(i, name=node.name, op_type=node.op_type, flops=node.flops)
        g.add_edges_from(self.edges())
        return g

    def summary(self) -> str:
        gflops = self.total_flops() / 1e9
        params_mb = self.total_param_bytes() / 2**20
        act_mb = self.total_activation_bytes() / 2**20
        return (
            f"{self.name}: {self.num_nodes} ops, {self.num_edges} edges, "
            f"{gflops:.1f} GFLOPs/step, {params_mb:.0f} MB params, "
            f"{act_mb:.0f} MB activations"
        )

    def __repr__(self) -> str:
        return f"CompGraph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
