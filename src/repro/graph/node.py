"""Operation nodes of a computational graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class OpNode:
    """One operation in a workload's computational graph.

    Attributes
    ----------
    name:
        Unique name within the graph (e.g. ``"encoder/layer0/matmul"``).
    op_type:
        Operation kind (``"Conv2D"``, ``"MatMul"``, ``"LSTMCell"``, ...);
        one-hot encoded into the node features (paper Section 3.1).
    output_shape:
        Logical shape of the output tensor, used both as a feature and to
        compute communication volume (bytes) across devices.
    flops:
        Floating-point operations for one forward execution. The simulator
        multiplies by a backward factor for training steps.
    param_bytes:
        Bytes of trainable parameters resident wherever the op is placed.
    activation_bytes:
        Bytes of the output activation that must be kept for the backward
        pass (dominates memory for big-batch training).
    cpu_only:
        True for ops that cannot run on an accelerator (input pipeline,
        control flow) — mirrors "GPU-incompatible operations" in the paper.
    colocation_group:
        Ops sharing a group must be placed on the same device (TF uses this
        for variables and their updates). ``None`` means unconstrained.
    """

    name: str
    op_type: str
    output_shape: Tuple[int, ...] = ()
    flops: float = 0.0
    param_bytes: float = 0.0
    activation_bytes: float = 0.0
    cpu_only: bool = False
    colocation_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("OpNode requires a non-empty name")
        if self.flops < 0 or self.param_bytes < 0 or self.activation_bytes < 0:
            raise ValueError(f"negative cost attribute on {self.name}")
        self.output_shape = tuple(int(s) for s in self.output_shape)

    @property
    def output_elements(self) -> int:
        n = 1
        for s in self.output_shape:
            n *= s
        return n

    @property
    def output_bytes(self) -> float:
        """Bytes sent to a consumer on another device (float32 tensors)."""
        return 4.0 * self.output_elements
