"""Node feature extraction (paper Section 3.1).

Each operation is featurized as:

* a one-hot encoding of its op type,
* its output shape and (first) input shape, zero-padded to a fixed rank and
  normalized by the largest dimension size found in the graph,
* optionally, log-scaled cost attributes (FLOPs, parameter bytes,
  activation bytes) and normalized degrees — these are not in the paper's
  minimal description but are cheap, deterministic features that all
  encoder-placer systems (GDP, Placeto) include; they can be disabled.

A shared :class:`OpTypeVocabulary` makes feature spaces compatible across
workloads, which the generalization experiments (Table 3) require.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import CompGraph

#: Canonical op types emitted by the built-in workload generators. Keeping a
#: global list (instead of fitting per graph) keeps feature dims identical
#: across workloads so one agent can be fine-tuned on another workload.
CANONICAL_OP_TYPES: Tuple[str, ...] = (
    "Input",
    "Variable",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool",
    "AvgPool",
    "BatchNorm",
    "ReLU",
    "Concat",
    "MatMul",
    "BiasAdd",
    "Softmax",
    "Embedding",
    "LSTMCell",
    "Attention",
    "LayerNorm",
    "GeLU",
    "Tanh",
    "Add",
    "Mul",
    "Reshape",
    "Transpose",
    "Split",
    "Reduce",
    "Dropout",
    "CrossEntropy",
    "ApplyGradient",
    "Identity",
)

SHAPE_RANK = 4  # shapes are padded/truncated to this many dims


class OpTypeVocabulary:
    """Mapping op-type string -> one-hot index, with an <UNK> bucket."""

    def __init__(self, types: Sequence[str] = CANONICAL_OP_TYPES):
        self._types: List[str] = list(dict.fromkeys(types))
        self._index = {t: i for i, t in enumerate(self._types)}

    @classmethod
    def from_graphs(cls, graphs: Iterable[CompGraph]) -> "OpTypeVocabulary":
        seen: List[str] = []
        for g in graphs:
            for node in g.nodes:
                if node.op_type not in seen:
                    seen.append(node.op_type)
        return cls(seen)

    def __len__(self) -> int:
        return len(self._types) + 1  # +1 for <UNK>

    @property
    def unk_index(self) -> int:
        return len(self._types)

    def index(self, op_type: str) -> int:
        return self._index.get(op_type, self.unk_index)

    def one_hot(self, op_type: str) -> np.ndarray:
        vec = np.zeros(len(self))
        vec[self.index(op_type)] = 1.0
        return vec


def _pad_shape(shape: Tuple[int, ...], rank: int = SHAPE_RANK) -> np.ndarray:
    arr = np.zeros(rank)
    trimmed = shape[-rank:] if len(shape) > rank else shape
    arr[: len(trimmed)] = trimmed
    return arr


class FeatureExtractor:
    """Builds the node-feature matrix ``X`` for a :class:`CompGraph`."""

    def __init__(
        self,
        vocab: Optional[OpTypeVocabulary] = None,
        include_costs: bool = True,
        include_degrees: bool = True,
    ):
        self.vocab = vocab or OpTypeVocabulary()
        self.include_costs = include_costs
        self.include_degrees = include_degrees

    @property
    def dim(self) -> int:
        d = len(self.vocab) + 2 * SHAPE_RANK
        if self.include_costs:
            d += 3
        if self.include_degrees:
            d += 2
        return d

    def __call__(self, graph: CompGraph) -> np.ndarray:
        return self.features(graph)

    def features(self, graph: CompGraph) -> np.ndarray:
        """Feature matrix of shape ``(num_nodes, dim)``."""
        n = graph.num_nodes
        if n == 0:
            return np.zeros((0, self.dim))

        # Largest dimension across all op outputs — the paper's shape
        # normalizer — guarded to at least 1.
        max_dim = 1.0
        for node in graph.nodes:
            if node.output_shape:
                max_dim = max(max_dim, float(max(node.output_shape)))

        x = np.zeros((n, self.dim))
        type_width = len(self.vocab)
        for i, node in enumerate(graph.nodes):
            col = 0
            x[i, self.vocab.index(node.op_type)] = 1.0
            col += type_width
            x[i, col : col + SHAPE_RANK] = _pad_shape(node.output_shape) / max_dim
            col += SHAPE_RANK
            preds = graph.predecessors(i)
            if preds:
                in_shape = graph.nodes[preds[0]].output_shape
                x[i, col : col + SHAPE_RANK] = _pad_shape(in_shape) / max_dim
            col += SHAPE_RANK
            if self.include_costs:
                x[i, col] = np.log1p(node.flops) / 40.0
                x[i, col + 1] = np.log1p(node.param_bytes) / 40.0
                x[i, col + 2] = np.log1p(node.activation_bytes) / 40.0
                col += 3
            if self.include_degrees:
                x[i, col] = len(graph.predecessors(i)) / 8.0
                x[i, col + 1] = len(graph.successors(i)) / 8.0
        return x
