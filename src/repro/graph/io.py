"""Computational-graph (de)serialization.

Graphs round-trip through a simple JSON document so users can persist
custom workloads or import graphs produced by external tracers::

    {"name": ..., "nodes": [{"name", "op_type", "output_shape", "flops",
     "param_bytes", "activation_bytes", "cpu_only", "colocation_group"}...],
     "edges": [[src_name, dst_name], ...]}
"""

from __future__ import annotations

import json
from typing import Union

from repro.graph.graph import CompGraph
from repro.graph.node import OpNode


def graph_to_dict(graph: CompGraph) -> dict:
    return {
        "name": graph.name,
        "nodes": [
            {
                "name": n.name,
                "op_type": n.op_type,
                "output_shape": list(n.output_shape),
                "flops": n.flops,
                "param_bytes": n.param_bytes,
                "activation_bytes": n.activation_bytes,
                "cpu_only": n.cpu_only,
                "colocation_group": n.colocation_group,
            }
            for n in graph.nodes
        ],
        "edges": [[graph.nodes[u].name, graph.nodes[v].name] for u, v in graph.edges()],
    }


def graph_from_dict(doc: dict) -> CompGraph:
    graph = CompGraph(doc.get("name", "graph"))
    names = set()
    for i, spec in enumerate(doc["nodes"]):
        name = spec["name"]
        if name in names:
            raise ValueError(
                f"graph document {graph.name!r}: duplicate node name {name!r} "
                f"(nodes[{i}])"
            )
        names.add(name)
        graph.add_node(
            OpNode(
                name=name,
                op_type=spec["op_type"],
                output_shape=tuple(spec.get("output_shape", ())),
                flops=spec.get("flops", 0.0),
                param_bytes=spec.get("param_bytes", 0.0),
                activation_bytes=spec.get("activation_bytes", 0.0),
                cpu_only=spec.get("cpu_only", False),
                colocation_group=spec.get("colocation_group"),
            )
        )
    for i, edge in enumerate(doc.get("edges", ())):
        if len(edge) != 2:
            raise ValueError(
                f"graph document {graph.name!r}: edges[{i}] must be a "
                f"[src, dst] pair, got {list(edge)!r}"
            )
        src, dst = edge
        for endpoint in (src, dst):
            if endpoint not in names:
                raise ValueError(
                    f"graph document {graph.name!r}: edge "
                    f"[{src!r}, {dst!r}] references unknown node {endpoint!r}"
                )
        graph.add_edge(src, dst)
    graph.validate()
    return graph


def save_graph(graph: CompGraph, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(graph_to_dict(graph), fh)


def load_graph(source: Union[str, dict]) -> CompGraph:
    if isinstance(source, dict):
        return graph_from_dict(source)
    with open(source) as fh:
        return graph_from_dict(json.load(fh))
