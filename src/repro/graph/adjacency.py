"""Adjacency matrices for GCN layers (paper Eq. 1).

The GCN propagation uses the symmetric normalization
``D̂^{-1/2} (A + I) D̂^{-1/2}`` where ``A`` is treated as *undirected*: the
dependency direction matters to the scheduler but for representation
learning information should flow both ways along data-flow edges (this is
what DGI and GDP do as well).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import CompGraph


def adjacency_matrix(graph: CompGraph, undirected: bool = True) -> sp.csr_matrix:
    """Binary adjacency of ``graph`` as CSR (no self-loops)."""
    n = graph.num_nodes
    rows, cols = [], []
    for u, v in graph.edges():
        rows.append(u)
        cols.append(v)
        if undirected:
            rows.append(v)
            cols.append(u)
    data = np.ones(len(rows))
    mat = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    mat.data[:] = 1.0  # collapse duplicate entries from bidirectional pairs
    return mat


def normalized_adjacency(graph: CompGraph, undirected: bool = True) -> sp.csr_matrix:
    """``D̂^{-1/2} (A + I) D̂^{-1/2}`` as CSR, ready for ``spmm``."""
    a = adjacency_matrix(graph, undirected=undirected)
    a_hat = a + sp.identity(graph.num_nodes, format="csr")
    degrees = np.asarray(a_hat.sum(axis=1)).ravel()
    inv_sqrt = 1.0 / np.sqrt(degrees)
    d = sp.diags(inv_sqrt)
    return (d @ a_hat @ d).tocsr()
