"""Computational-graph intermediate representation.

A workload (Inception-V3, GNMT, BERT, ...) is represented as a DAG of
:class:`OpNode` operations carrying the attributes the paper's encoder
consumes (op type, shapes) plus the cost attributes the simulator needs
(FLOPs, parameter bytes, activation bytes).
"""

from repro.graph.node import OpNode
from repro.graph.graph import CompGraph
from repro.graph.features import FeatureExtractor, OpTypeVocabulary
from repro.graph.adjacency import normalized_adjacency, adjacency_matrix
from repro.graph.partition import topological_groups, group_contiguous
from repro.graph.io import save_graph, load_graph, graph_to_dict, graph_from_dict

__all__ = [
    "save_graph",
    "load_graph",
    "graph_to_dict",
    "graph_from_dict",
    "OpNode",
    "CompGraph",
    "FeatureExtractor",
    "OpTypeVocabulary",
    "normalized_adjacency",
    "adjacency_matrix",
    "topological_groups",
    "group_contiguous",
]
