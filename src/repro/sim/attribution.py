"""Placement attribution: where a placement's step time actually goes.

Given one traced schedule (``Scheduler.run_step(..., trace=True)``) this
module reconstructs, exactly and deterministically:

* per-device **busy/idle** accounting over the step,
* the **realized critical path** — the chain of op executions and tensor
  transfers whose lengths sum to the step's span, found by walking back
  from the last-finishing op through whichever constraint (input arrival,
  inter-device transfer, or device serialization) bound each start time,
* a cross-device **traffic matrix** (bytes shipped per device pair), and
* the **comm-bound fraction** — the share of the critical path spent on
  links rather than compute, the quantity Mirhoseini et al. and Placeto
  read off per-device timelines to diagnose comm-bound placements.

The walk is a pure function of the schedule: every op started either when
its last input arrived (same-device dependency or transfer arrival) or
when its device finished the previous op, so the binding constraint is
the candidate with the maximal release time. Segments therefore tile
``[0, span]`` contiguously — an invariant the property tests pin down.

``PlacementEnv.attribute`` / ``record_attribution`` wrap this for the RL
loop (best-placement ``attribution`` events + ``env.critical_path_*``
metrics); ``repro.analysis.attribution`` renders the result as a text
Gantt and top-k tables for ``python -m repro.telemetry.report``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.placement import Placement
from repro.sim.scheduler import ScheduleResult, TransferRecord

#: Release-time tolerance when matching a start time to its constraint.
_EPS = 1e-9

#: Default cap on per-device intervals serialized into an event payload.
MAX_EVENT_INTERVALS = 256


@dataclass(frozen=True)
class PathSegment:
    """One link of the realized critical path, source-first ordering.

    ``kind`` is ``"op"`` (execution of ``op`` on ``device``) or ``"comm"``
    (shipment of ``op``'s output from ``device`` to ``dst_device``,
    including any time the tensor waited for the link). ``reason`` records
    what released the segment's start: ``"source"`` (graph input),
    ``"dep"`` (same-device input), ``"comm"`` (transfer arrival) or
    ``"device"`` (device busy with the previous op).
    """

    kind: str
    op: int
    device: int
    start: float
    end: float
    reason: str
    dst_device: int = -1  # comm segments only

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PlacementAttribution:
    """Full diagnostic breakdown of one placed step."""

    makespan: float  # span + cluster step overhead (what the agent sees)
    span: float  # last op finish time; the critical path's length
    device_names: List[str]
    device_busy: np.ndarray  # seconds executing, per device
    device_idle: np.ndarray  # span - busy, per device
    device_op_counts: np.ndarray
    device_intervals: List[List[Tuple[int, float, float]]]  # (op, start, end)
    path: List[PathSegment] = field(default_factory=list)
    traffic_bytes: Optional[np.ndarray] = None  # (D, D), src x dst
    comm_time: float = 0.0  # total link seconds (all transfers)
    comm_bytes: float = 0.0

    @property
    def critical_path_time(self) -> float:
        return sum(s.duration for s in self.path)

    @property
    def comm_bound_fraction(self) -> float:
        """Share of the critical path spent shipping tensors."""
        total = self.critical_path_time
        if total <= 0:
            return 0.0
        comm = sum(s.duration for s in self.path if s.kind == "comm")
        return comm / total

    @property
    def utilization(self) -> float:
        """Mean busy fraction over the makespan — matches
        :class:`repro.sim.batch.PureEvaluator`'s definition."""
        if self.makespan <= 0:
            return 0.0
        return float(np.mean(self.device_busy) / self.makespan)

    def top_critical_ops(self, k: int = 10) -> List[PathSegment]:
        """The ``k`` longest op executions on the critical path."""
        ops = [s for s in self.path if s.kind == "op"]
        return sorted(ops, key=lambda s: s.duration, reverse=True)[:k]

    # ------------------------------------------------------------------
    def event_payload(
        self,
        graph=None,
        iteration: int = -1,
        top_k: int = 10,
        max_intervals: int = MAX_EVENT_INTERVALS,
    ) -> Dict:
        """JSON-safe dict for the schema-versioned ``attribution`` event.

        Per-device busy intervals are coalesced (and, past
        ``max_intervals``, coarsened by merging the smallest idle gaps) so
        the payload stays bounded on large graphs while still rendering a
        faithful Gantt.
        """

        def op_name(op: int) -> str:
            if graph is not None:
                return graph.nodes[op].name
            return f"op{op}"

        devices = []
        for d, name in enumerate(self.device_names):
            spans = coalesce_intervals(
                [(s, e) for _, s, e in self.device_intervals[d]],
                max_intervals=max_intervals,
            )
            devices.append(
                {
                    "name": name,
                    "busy": float(self.device_busy[d]),
                    "idle": float(self.device_idle[d]),
                    "ops": int(self.device_op_counts[d]),
                    "intervals": [[float(s), float(e)] for s, e in spans],
                }
            )
        top_ops = [
            {
                "op": int(s.op),
                "name": op_name(s.op),
                "device": self.device_names[s.device],
                "time": float(s.duration),
                "reason": s.reason,
            }
            for s in self.top_critical_ops(top_k)
        ]
        traffic = (
            [[float(b) for b in row] for row in self.traffic_bytes]
            if self.traffic_bytes is not None
            else []
        )
        return {
            "iteration": int(iteration),
            "makespan": float(self.makespan),
            "critical_path_time": float(self.critical_path_time),
            "comm_bound_fraction": float(self.comm_bound_fraction),
            "utilization": float(self.utilization),
            "comm_time": float(self.comm_time),
            "comm_bytes": float(self.comm_bytes),
            "path_ops": sum(1 for s in self.path if s.kind == "op"),
            "path_comms": sum(1 for s in self.path if s.kind == "comm"),
            "devices": devices,
            "top_ops": top_ops,
            "traffic_bytes": traffic,
        }


def coalesce_intervals(
    spans: List[Tuple[float, float]],
    eps: float = 1e-9,
    max_intervals: int = MAX_EVENT_INTERVALS,
) -> List[Tuple[float, float]]:
    """Merge touching/overlapping spans; coarsen to ``max_intervals``.

    Coarsening merges across the *smallest* idle gaps first, so the
    rendered Gantt loses only visually-invisible detail.
    """
    if not spans:
        return []
    spans = sorted(spans)
    merged: List[List[float]] = [list(spans[0])]
    for s, e in spans[1:]:
        if s <= merged[-1][1] + eps:
            merged[-1][1] = max(merged[-1][1], e)
        else:
            merged.append([s, e])
    while len(merged) > max(1, max_intervals):
        gaps = [merged[i + 1][0] - merged[i][1] for i in range(len(merged) - 1)]
        i = int(np.argmin(gaps))
        merged[i][1] = merged[i + 1][1]
        del merged[i + 1]
    return [(s, e) for s, e in merged]


def attribute_schedule(
    placement: Placement, schedule: ScheduleResult
) -> PlacementAttribution:
    """Derive a :class:`PlacementAttribution` from one traced schedule.

    ``schedule`` must come from ``Scheduler.run_step(..., trace=True)``
    (it needs ``start_times`` and ``transfers``).
    """
    if schedule.start_times is None or schedule.transfers is None:
        raise ValueError(
            "attribution needs a traced schedule: Scheduler.run_step(..., trace=True)"
        )
    graph, cluster = placement.graph, placement.cluster
    n = graph.num_nodes
    num_devices = cluster.num_devices
    devices = placement.devices
    starts = schedule.start_times
    finishes = schedule.finish_times
    names = [d.name for d in cluster.devices]

    span = float(finishes.max()) if n else 0.0

    # Per-device interval lists, sorted by start time.
    intervals: List[List[Tuple[int, float, float]]] = [[] for _ in range(num_devices)]
    for op in np.argsort(starts, kind="stable") if n else []:
        op = int(op)
        intervals[int(devices[op])].append((op, float(starts[op]), float(finishes[op])))
    op_counts = np.zeros(num_devices, dtype=int)
    for d in range(num_devices):
        op_counts[d] = len(intervals[d])
    idle = np.maximum(span - schedule.device_busy, 0.0)

    # Traffic matrix + transfer lookup keyed like the scheduler dedupes:
    # one shipment per (producer, dst_device).
    traffic = np.zeros((num_devices, num_devices))
    arrival: Dict[Tuple[int, int], TransferRecord] = {}
    for tr in schedule.transfers:
        traffic[tr.src, tr.dst] += tr.nbytes
        arrival[(tr.producer, tr.dst)] = tr

    # Previous-op-on-device lookup: for op v, the op that freed v's device.
    prev_on_device: Dict[int, int] = {}
    for d in range(num_devices):
        for i in range(1, len(intervals[d])):
            prev_on_device[intervals[d][i][0]] = intervals[d][i - 1][0]

    path: List[PathSegment] = []
    if n:
        op = int(np.argmax(finishes))
        while True:
            dev = int(devices[op])
            s_op = float(starts[op])
            # Candidates that could have released this op's start.
            best_time = -1.0
            best: Optional[Tuple[str, int]] = None  # (reason, predecessor op)
            for pred in graph.predecessors(op):
                pred = int(pred)
                if int(devices[pred]) == dev:
                    t = float(finishes[pred])
                    if t > best_time:
                        best_time, best = t, ("dep", pred)
                else:
                    tr = arrival.get((pred, dev))
                    if tr is not None and tr.end > best_time:
                        best_time, best = tr.end, ("comm", pred)
            prev = prev_on_device.get(op)
            if prev is not None and float(finishes[prev]) > best_time + _EPS:
                best_time, best = float(finishes[prev]), ("device", prev)

            reason = best[0] if best is not None and best_time > _EPS else "source"
            path.append(
                PathSegment(
                    kind="op",
                    op=op,
                    device=dev,
                    start=s_op,
                    end=float(finishes[op]),
                    reason=reason,
                )
            )
            if best is None or best_time <= _EPS:
                break
            kind, pred = best
            if kind == "comm":
                tr = arrival[(pred, dev)]
                # The comm segment starts when the tensor became ready on
                # its producer (so the path tiles contiguously); any link
                # queueing is inside the segment — it *is* comm cost.
                path.append(
                    PathSegment(
                        kind="comm",
                        op=pred,
                        device=tr.src,
                        start=float(finishes[pred]),
                        end=tr.end,
                        reason="comm",
                        dst_device=tr.dst,
                    )
                )
            op = pred
        path.reverse()

    return PlacementAttribution(
        makespan=schedule.makespan,
        span=span,
        device_names=names,
        device_busy=schedule.device_busy.copy(),
        device_idle=idle,
        device_op_counts=op_counts,
        device_intervals=intervals,
        path=path,
        traffic_bytes=traffic,
        comm_time=float(schedule.comm_time),
        comm_bytes=float(schedule.comm_bytes),
    )
