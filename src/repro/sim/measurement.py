"""The measurement protocol of the RL environment (paper Section 4.2/3.4).

During agent training each sampled placement is measured by actually
running the workload: the model is re-initialized (expensive), warmed up
for 5 steps (slower than steady state), then the per-step time is averaged
over the next 10 steps. Out-of-memory placements cannot run and receive a
100-second penalty time; placements slower than a cutoff are aborted early
and marked "bad" (the paper's example: >20 s/step for BERT).

All of this costs *environment wall-clock time*, which is what Fig. 8
reports — the simulator accounts for it explicitly and deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import hash_seed


@dataclass
class MeasurementResult:
    """What the agent observes after proposing one placement."""

    per_step_time: float  # averaged steady-state step time (or penalty)
    valid: bool  # False -> OOM, per_step_time is the penalty
    truncated: bool  # True -> aborted by the bad-placement cutoff
    steps_run: int
    wall_clock: float  # simulated seconds the measurement consumed

    @property
    def ok(self) -> bool:
        return self.valid and not self.truncated


@dataclass(frozen=True)
class MeasurementProtocol:
    """Deterministic simulation of the paper's measurement procedure."""

    warmup_steps: int = 5
    measure_steps: int = 10
    reinit_cost: float = 10.0  # graph rebuild + variable init + data pipeline
    oom_detect_cost: float = 5.0  # time wasted before the OOM error surfaces
    invalid_penalty: float = 100.0  # per-step time assigned to OOM placements
    bad_step_threshold: Optional[float] = None  # e.g. 20.0 for BERT
    warmup_slowdown: float = 1.8  # first steps are slower (autotune, caches)
    noise_std: float = 0.015  # run-to-run variance of a real machine
    seed: int = 0

    def measure(self, makespan: float, valid: bool, placement_key: int) -> MeasurementResult:
        """Simulate measuring a placement whose true step time is ``makespan``.

        ``placement_key`` makes the noise a deterministic function of the
        placement: measuring the same placement twice gives the same result,
        like caching measurements on a real machine would.
        """
        if not valid:
            return MeasurementResult(
                per_step_time=self.invalid_penalty,
                valid=False,
                truncated=False,
                steps_run=0,
                wall_clock=self.reinit_cost + self.oom_detect_cost,
            )

        rng = np.random.default_rng(hash_seed(self.seed, placement_key))
        wall = self.reinit_cost
        measured = []
        total_steps = self.warmup_steps + self.measure_steps
        truncated = False
        steps_run = 0
        for step in range(total_steps):
            noise = 1.0 + self.noise_std * rng.standard_normal()
            noise = max(noise, 0.5)
            t = makespan * noise
            if step < self.warmup_steps:
                # Warm-up slowdown decays linearly to 1x across the warmup.
                frac = 1.0 - step / max(self.warmup_steps, 1)
                t *= 1.0 + (self.warmup_slowdown - 1.0) * frac
            wall += t
            steps_run += 1
            if step >= self.warmup_steps:
                measured.append(t)
            if self.bad_step_threshold is not None and t > self.bad_step_threshold:
                truncated = True
                break
        if truncated and not measured:
            # Aborted during warm-up: report the cutoff threshold-crossing
            # step time so the reward still reflects "very slow".
            per_step = t
        else:
            per_step = float(np.mean(measured)) if measured else makespan
        return MeasurementResult(
            per_step_time=per_step,
            valid=True,
            truncated=truncated,
            steps_run=steps_run,
            wall_clock=wall,
        )

    def final_evaluation(self, makespan: float, placement_key: int, steps: int = 1000) -> float:
        """Average per-step time over a long final run (paper: 1000 steps)."""
        rng = np.random.default_rng(hash_seed(self.seed, placement_key, "final"))
        noise = 1.0 + self.noise_std * rng.standard_normal(steps) / np.sqrt(1.0)
        return float(makespan * np.mean(np.maximum(noise, 0.5)))
