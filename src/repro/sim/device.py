"""Device specifications.

Throughput numbers approximate the paper's hardware: NVIDIA P100 (9.3
TFLOP/s fp32 peak, 732 GB/s HBM2, 12 GB) and a Xeon E5-2650 v4 socket
(~0.4 TFLOP/s with AVX2, ~60 GB/s). Achieved efficiency varies wildly per
kernel type, so the cost model scales peak throughput by a per-op-type
efficiency table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

GB = 1024.0**3

#: Fraction of peak FLOP/s actually achieved per op type on a GPU. Large
#: dense convolutions run near cuDNN efficiency; unrolled LSTM cells and the
#: mid-sized matmuls of attention are launch- and bandwidth-limited.
GPU_EFFICIENCY: Dict[str, float] = {
    "Conv2D": 0.45,
    "DepthwiseConv2D": 0.15,
    "MatMul": 0.22,
    "LSTMCell": 0.32,
    "Attention": 0.12,
    "Embedding": 0.05,
    "ApplyGradient": 0.08,
    "__default__": 0.10,
}

#: CPUs are comparatively much better at small/bandwidth-bound ops than at
#: dense compute; the low default keeps heavy kernels off the CPU.
CPU_EFFICIENCY: Dict[str, float] = {
    "Conv2D": 0.30,
    "MatMul": 0.35,
    "LSTMCell": 0.25,
    "__default__": 0.30,
}


@dataclass(frozen=True)
class DeviceSpec:
    """A single computational device."""

    name: str
    kind: str  # "gpu" or "cpu"
    peak_flops: float
    mem_bandwidth: float
    memory: float
    launch_overhead: float
    efficiency: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"unknown device kind {self.kind!r}")
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0 or self.memory <= 0:
            raise ValueError(f"non-positive capability on {self.name}")

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"

    def efficiency_for(self, op_type: str) -> float:
        table = self.efficiency
        if op_type in table:
            return table[op_type]
        return table.get("__default__", 0.1)

    @classmethod
    def p100(cls, index: int, memory_gb: float = 12.0) -> "DeviceSpec":
        return cls(
            name=f"gpu:{index}",
            kind="gpu",
            peak_flops=9.3e12,
            mem_bandwidth=732.0 * GB,
            memory=memory_gb * GB,
            launch_overhead=1.2e-4,
            efficiency=dict(GPU_EFFICIENCY),
        )

    @classmethod
    def xeon(cls, index: int = 0, memory_gb: float = 125.0) -> "DeviceSpec":
        return cls(
            name=f"cpu:{index}",
            kind="cpu",
            peak_flops=0.4e12,
            mem_bandwidth=60.0 * GB,
            memory=memory_gb * GB,
            launch_overhead=2.0e-5,
            efficiency=dict(CPU_EFFICIENCY),
        )
