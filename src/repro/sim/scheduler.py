"""Deterministic event-driven scheduler producing the per-step makespan.

Ops execute on their assigned device once all inputs have *arrived* there
(the TF executor's dataflow firing rule); inputs produced on another
device pay a transfer on the serialized link between the two devices, and
a producer's output is shipped to each consuming device at most once.

The simulation is event-driven: a single event heap orders op completions
and tensor arrivals; each device runs one ready op at a time, picking the
ready op with the smallest topological index (deterministic
tie-breaking). This is what lets independent devices overlap — the
cell-level pipelining that makes model-parallel RNN placements pay off —
at O((V + E) log(V + E)) per simulated step.
"""

from __future__ import annotations

from dataclasses import dataclass
import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.placement import Placement


@dataclass(frozen=True)
class TransferRecord:
    """One inter-device tensor shipment (recorded when tracing)."""

    producer: int  # op whose output was shipped
    src: int  # device the tensor left
    dst: int  # device the tensor arrived on
    start: float  # link occupation start (after any queueing)
    end: float  # arrival time on dst
    nbytes: float


@dataclass
class ScheduleResult:
    """Outcome of simulating one training step."""

    makespan: float
    finish_times: np.ndarray
    device_busy: np.ndarray  # seconds of execution per device
    comm_time: float  # total seconds spent on links
    comm_bytes: float  # total bytes shipped between devices
    start_times: Optional[np.ndarray] = None  # per-op start (for timelines)
    transfers: Optional[List[TransferRecord]] = None  # only with trace=True

    @property
    def critical_path_bound(self) -> float:
        return float(self.finish_times.max()) if self.finish_times.size else 0.0


class Scheduler:
    """Simulates the execution of a placed graph."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()

    def run_step(
        self,
        placement: Placement,
        op_times: Optional[np.ndarray] = None,
        order: Optional[np.ndarray] = None,
        trace: bool = False,
    ) -> ScheduleResult:
        """Simulate one training step; returns the makespan and stats.

        Event-driven dataflow execution, like the TF executor: an op is
        *ready* once all its inputs have arrived on its device; each device
        runs one ready op at a time, picking the ready op with the smallest
        topological index (deterministic tie-breaking). This allows
        cell-level pipelining across devices — essential for modeling
        model-parallel RNN placements correctly.

        ``op_times`` may be a precomputed ``(num_ops, num_devices)`` table
        (see :meth:`CostModel.op_time_matrix`) to amortize cost-model work
        across the thousands of placements an RL run evaluates. ``order``
        is accepted for API compatibility but unused (execution order is
        dependency-driven).

        ``trace=True`` additionally records every inter-device shipment as
        a :class:`TransferRecord` on ``ScheduleResult.transfers`` — the
        input the attribution engine (``sim/attribution.py``) needs to
        reconstruct the realized critical path. The hot RL path leaves it
        off; the record list is the only extra work.
        """
        graph, cluster = placement.graph, placement.cluster
        n = graph.num_nodes
        if n == 0:
            return ScheduleResult(
                makespan=0.0,
                finish_times=np.zeros(0),
                device_busy=np.zeros(cluster.num_devices),
                comm_time=0.0,
                comm_bytes=0.0,
                start_times=np.zeros(0),
                transfers=[] if trace else None,
            )
        if op_times is None:
            op_times = self.cost_model.op_time_matrix(graph, cluster)

        devices = placement.devices
        finish = np.zeros(n)
        starts = np.zeros(n)
        device_free = np.zeros(cluster.num_devices)
        device_busy = np.zeros(cluster.num_devices)
        device_ready: List[List[int]] = [[] for _ in range(cluster.num_devices)]
        device_running = [False] * cluster.num_devices
        link_free: Dict[Tuple[int, int], float] = {}
        shipped: set = set()  # (producer, consumer_device) pairs already sent
        remaining = graph.in_degrees().copy()
        comm_time = 0.0
        comm_bytes = 0.0
        transfers: Optional[List[TransferRecord]] = [] if trace else None

        # Event heap entries: (time, seq, kind, payload). kind 0 = op done,
        # kind 1 = tensor arrival (payload = (producer, dst_device)).
        events: List[Tuple[float, int, int, Tuple[int, int]]] = []
        seq = 0

        def try_start(dev: int, now: float) -> None:
            nonlocal seq
            if device_running[dev] or not device_ready[dev]:
                return
            op = heapq.heappop(device_ready[dev])
            duration = op_times[op, dev]
            start = max(now, device_free[dev])
            end = start + duration
            starts[op] = start
            finish[op] = end
            device_free[dev] = end
            device_busy[dev] += duration
            device_running[dev] = True
            heapq.heappush(events, (end, seq, 0, (op, dev)))
            seq += 1

        def mark_ready(op: int, now: float) -> None:
            dev = int(devices[op])
            heapq.heappush(device_ready[dev], op)
            try_start(dev, now)

        for op in range(n):
            if remaining[op] == 0:
                mark_ready(op, 0.0)

        # remaining[v] counts inputs not yet arrived at v's device; an edge
        # u->v with u on another device completes only when the (u, dst)
        # transfer arrives, which satisfies every consumer of u on dst.
        consumers_waiting: Dict[Tuple[int, int], List[int]] = {}

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == 0:  # op completed
                op, dev = payload
                device_running[dev] = False
                for succ in graph.successors(op):
                    dst = int(devices[succ])
                    if dst == dev:
                        remaining[succ] -= 1
                        if remaining[succ] == 0:
                            mark_ready(succ, now)
                    else:
                        key = (op, dst)
                        if key in shipped:
                            consumers_waiting[key].append(succ)
                        else:
                            shipped.add(key)
                            consumers_waiting[key] = [succ]
                            nbytes = graph.nodes[op].output_bytes
                            link = (dev, dst) if dev < dst else (dst, dev)
                            duration = self.cost_model.transfer_time(
                                nbytes, cluster, dev, dst
                            )
                            start = max(now, link_free.get(link, 0.0))
                            link_free[link] = start + duration
                            comm_time += duration
                            comm_bytes += nbytes
                            if transfers is not None:
                                transfers.append(
                                    TransferRecord(
                                        producer=op,
                                        src=dev,
                                        dst=dst,
                                        start=start,
                                        end=start + duration,
                                        nbytes=nbytes,
                                    )
                                )
                            heapq.heappush(events, (start + duration, seq, 1, key))
                            seq += 1
                try_start(dev, now)
            else:  # tensor arrived on a device
                key = payload
                for succ in consumers_waiting.pop(key, ()):
                    remaining[succ] -= 1
                    if remaining[succ] == 0:
                        mark_ready(succ, now)

        if np.any(remaining > 0):  # pragma: no cover - defensive
            raise RuntimeError("scheduler deadlock: graph has a cycle?")

        makespan = float(finish.max()) + cluster.step_overhead
        return ScheduleResult(
            makespan=makespan,
            finish_times=finish,
            device_busy=device_busy,
            comm_time=comm_time,
            comm_bytes=comm_bytes,
            start_times=starts,
            transfers=transfers,
        )

    def lower_bound(self, graph: CompGraph, cluster: ClusterSpec) -> float:
        """A makespan lower bound: the best-device critical path, ignoring
        communication and contention. Useful for sanity checks and tests."""
        op_times = self.cost_model.op_time_matrix(graph, cluster)
        best = op_times.min(axis=1)
        order = (
            range(graph.num_nodes)
            if graph.is_topologically_indexed()
            else graph.topological_order()
        )
        longest = np.zeros(graph.num_nodes)
        for op in order:
            preds = graph.predecessors(op)
            longest[op] = best[op] + (max(longest[p] for p in preds) if preds else 0.0)
        return float(longest.max()) + cluster.step_overhead if graph.num_nodes else 0.0
