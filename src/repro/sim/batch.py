"""Batched placement evaluation — the RL loop's hottest path, parallelized.

Every policy iteration measures ``samples_per_policy`` (paper: 10)
sampled placements. Sequentially, each one pays a full event-driven
scheduler pass (`sim/scheduler.py`), which dominates a search's wall
time. This module supplies the pieces behind
:meth:`repro.sim.env.PlacementEnv.evaluate_batch`:

* :class:`PureEvaluator` — the measurement math of *one* placement
  (memory check → schedule → protocol), free of caching, statistics and
  telemetry. Because the measurement noise is a deterministic function
  of the placement, this function is pure: it can run in any process, in
  any order, and produce bit-identical results.
* :class:`BatchEvaluator` — fans unique placements out across a
  persistent ``concurrent.futures`` pool. Workers are initialized once
  with the precomputed graph invariants (op-time table, topological
  order, per-op memory, device capacities) so per-call traffic is one
  small device array in and one :class:`EvalOutcome` out.
* :class:`BatchEvalConfig` — lives on ``MarsConfig.eval_batch``; the
  default is ``os.cpu_count()``-aware with a deterministic serial
  fallback (single core, tiny graphs, small batches), so seeded runs
  stay reproducible everywhere.

Only the pure compute is parallelized: the environment dedupes the batch
against its result cache *before* any scheduling work and applies all
bookkeeping (cache inserts, stats, telemetry) in original batch order
afterwards — results, cache state and event streams are identical to a
sequential loop of ``evaluate`` calls, in every mode.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.measurement import MeasurementProtocol, MeasurementResult
from repro.sim.memory import MemoryModel
from repro.sim.placement import Placement
from repro.sim.scheduler import Scheduler
from repro.utils.logging import get_logger

logger = get_logger("repro.sim.batch")

#: Upper bound on the cpu-count-derived default pool size — batches are
#: ``samples_per_policy`` (≈10) placements, so more workers only add
#: fork/IPC overhead.
DEFAULT_MAX_POOL_WORKERS = 8


@dataclass
class BatchEvalConfig:
    """How :meth:`PlacementEnv.evaluate_batch` spreads its work.

    ``mode="auto"`` uses a process pool only when it can pay for itself
    (multiple cores, enough unique placements, a graph big enough that a
    scheduler pass dwarfs the IPC) and otherwise falls back to the exact
    sequential code path — results are identical either way, so the
    fallback preserves seeded-run reproducibility rather than changing it.
    """

    mode: str = "auto"  # "auto" | "serial" | "thread" | "process"
    max_workers: Optional[int] = None  # None -> os.cpu_count()-aware default
    min_parallel: int = 4  # fewer unique placements than this run serially
    min_ops_parallel: int = 128  # auto only: smaller graphs run serially
    cache_capacity: int = 8192  # PlacementEnv LRU result cache (<=0: unbounded)
    #: Pool rebuilds allowed after a BrokenProcessPool (a worker OOM-killed
    #: or SIGKILLed mid-batch) before degrading to serial for the rest of
    #: the run. Environment-level failures (fork refused) never rebuild.
    max_pool_rebuilds: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "thread", "process"):
            raise ValueError(
                f"mode must be auto|serial|thread|process, got {self.mode!r}"
            )

    def resolved_workers(self) -> int:
        """The pool size ``max_workers=None`` resolves to on this host."""
        if self.max_workers is not None:
            return max(1, int(self.max_workers))
        return max(1, min(DEFAULT_MAX_POOL_WORKERS, (os.cpu_count() or 1) - 1))


@dataclass
class EvalOutcome:
    """Everything one placement measurement produces.

    The :class:`MeasurementResult` is what the agent sees; the rest is
    the schedule/memory breakdown the environment's telemetry records
    (computed here so pool workers need not touch telemetry at all).
    """

    result: MeasurementResult
    makespan: float  # inf for OOM placements
    comm_time: float
    comm_bytes: float
    utilization: float  # mean device-busy fraction over the makespan
    worst_usage: float = 0.0  # bytes on the most-overcommitted device (OOM)
    worst_capacity: float = 0.0
    #: How the schedule was produced: None = incremental not attempted,
    #: True = incremental resume, False = attempted but fell back to full
    #: simulation. Purely observational — the numbers are identical either
    #: way (sim/incremental.py's bit-identical contract).
    incremental: Optional[bool] = None


class PureEvaluator:
    """Placement → :class:`EvalOutcome`, with no mutable run state.

    Holds the precomputed graph invariants so one evaluation is O(V+E).
    Pool workers each receive one instance via the pool initializer —
    the invariants cross the process boundary once per worker, not once
    per placement.
    """

    def __init__(
        self,
        graph: CompGraph,
        cluster: ClusterSpec,
        cost_model: CostModel,
        protocol: MeasurementProtocol,
        op_times: np.ndarray,
        order: np.ndarray,
        mem_per_op: np.ndarray,
        capacity: np.ndarray,
    ):
        self.graph = graph
        self.cluster = cluster
        self.protocol = protocol
        self.scheduler = Scheduler(cost_model)
        self.op_times = op_times
        self.order = order
        self.mem_per_op = mem_per_op
        self.capacity = capacity

    @classmethod
    def build(
        cls,
        graph: CompGraph,
        cluster: ClusterSpec,
        cost_model: CostModel,
        memory_model: MemoryModel,
        protocol: MeasurementProtocol,
    ) -> "PureEvaluator":
        op_times = cost_model.op_time_matrix(graph, cluster)
        order = (
            np.arange(graph.num_nodes)
            if graph.is_topologically_indexed()
            else np.asarray(graph.topological_order())
        )
        mem_per_op = memory_model.op_bytes_vector(graph)
        capacity = np.array([d.memory for d in cluster.devices])
        return cls(graph, cluster, cost_model, protocol, op_times, order, mem_per_op, capacity)

    def memory_usage(self, placement: Placement) -> Tuple[np.ndarray, np.ndarray]:
        usage = np.zeros(self.cluster.num_devices)
        np.add.at(usage, placement.devices, self.mem_per_op)
        return usage, usage > self.capacity

    def compute(
        self, devices: np.ndarray, placement_key: int, incremental=None
    ) -> EvalOutcome:
        """Measure one placement. ``placement_key`` seeds the protocol's
        deterministic noise; the caller computes it so the value is
        consistent across processes (``hash()`` is salted per process).

        ``incremental`` is an optional
        :class:`repro.sim.incremental.IncrementalEvaluator`: when given
        (local/serial paths only — pool workers never see one), the
        schedule is resumed from the anchored baseline when the delta is
        small, falling back to the full simulator otherwise. Results are
        bit-identical either way; ``EvalOutcome.incremental`` records
        which path ran.
        """
        placement = Placement(devices, self.graph, self.cluster)
        usage, oom = self.memory_usage(placement)
        valid = not bool(oom.any())
        used_incremental: Optional[bool] = None
        if valid:
            schedule = None
            if incremental is not None:
                schedule = incremental.reschedule(placement.devices)
                used_incremental = schedule is not None
            if schedule is None:
                schedule = self.scheduler.run_step(placement, self.op_times, self.order)
            makespan = schedule.makespan
            utilization = (
                float(np.mean(schedule.device_busy) / schedule.makespan)
                if schedule.makespan > 0
                else 0.0
            )
            comm_time = float(schedule.comm_time)
            comm_bytes = float(schedule.comm_bytes)
            worst_usage = worst_capacity = 0.0
        else:
            makespan = float("inf")
            utilization = comm_time = comm_bytes = 0.0
            worst = int(np.argmax(usage - self.capacity))
            worst_usage = float(usage[worst])
            worst_capacity = float(self.capacity[worst])
        result = self.protocol.measure(makespan, valid, placement_key)
        return EvalOutcome(
            result=result,
            makespan=float(makespan),
            comm_time=comm_time,
            comm_bytes=comm_bytes,
            utilization=utilization,
            worst_usage=worst_usage,
            worst_capacity=worst_capacity,
            incremental=used_incremental,
        )


# ----------------------------------------------------------------------
# Process-pool plumbing: each worker builds its evaluator exactly once.
# ----------------------------------------------------------------------
_WORKER_EVALUATOR: Optional[PureEvaluator] = None


def _init_worker(evaluator: PureEvaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _eval_job(job: Tuple[np.ndarray, int]) -> EvalOutcome:
    devices, placement_key = job
    return _WORKER_EVALUATOR.compute(devices, placement_key)


def _timed_compute(
    evaluator: PureEvaluator, job: Tuple[np.ndarray, int]
) -> Tuple[EvalOutcome, float, float]:
    """Compute one job and measure it where it ran: ``(outcome,
    start_unix, duration_s)``. Feeds the parent's ``env.eval_worker``
    spans (workers cannot emit into the parent's event log themselves)."""
    start_unix = time.time()
    start = time.perf_counter()
    outcome = evaluator.compute(*job)
    return outcome, start_unix, time.perf_counter() - start


def _eval_job_timed(
    job: Tuple[np.ndarray, int]
) -> Tuple[EvalOutcome, float, float]:
    return _timed_compute(_WORKER_EVALUATOR, job)


class BatchEvaluator:
    """Runs batches of unique placement jobs, serially or on a pool.

    The executor is created lazily and reused across batches (a search
    evaluates thousands of batches; per-batch pool startup would dwarf
    the scheduling work). Failures degrade, never crash, and always
    finish the current batch on the serial path (identical results):

    * ``BrokenProcessPool`` — a pool worker died mid-batch (OOM killer,
      stray SIGKILL). The pool is torn down and *rebuilt* for the next
      batch, up to ``max_pool_rebuilds`` times (counted in
      ``pool_failures``); past the budget the evaluator turns serial for
      the rest of the run.
    * ``OSError``/other ``RuntimeError`` — the environment refuses pools
      altogether (fork blocked in a sandbox). No rebuild attempts:
      serial for the rest of the run immediately.
    """

    def __init__(self, evaluator: PureEvaluator, config: Optional[BatchEvalConfig] = None):
        self.evaluator = evaluator
        self.config = config or BatchEvalConfig()
        self._executor = None
        self._executor_kind: Optional[str] = None
        self._pool_broken = False
        #: Cumulative BrokenProcessPool events (the environment diffs
        #: this into its ``env.eval_pool_failures`` counter).
        self.pool_failures = 0

    @property
    def workers(self) -> int:
        return self.config.resolved_workers()

    def _pick_mode(self, n_jobs: int) -> str:
        cfg = self.config
        if self._pool_broken or cfg.mode == "serial" or self.workers <= 1:
            return "serial"
        if cfg.mode in ("thread", "process"):
            return cfg.mode if n_jobs > 1 else "serial"
        # auto: pool only when the fan-out can amortize worker IPC.
        if (
            n_jobs >= cfg.min_parallel
            and self.evaluator.graph.num_nodes >= cfg.min_ops_parallel
        ):
            return "process"
        return "serial"

    def _ensure_executor(self, kind: str):
        if self._executor is not None and self._executor_kind != kind:
            self.shutdown()
        if self._executor is None:
            if kind == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.evaluator,),
                )
            else:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            self._executor_kind = kind
        return self._executor

    def _compute_serial(self, jobs, timed: bool):
        if timed:
            mapped = [_timed_compute(self.evaluator, job) for job in jobs]
            return [m[0] for m in mapped], 0, [(m[1], m[2]) for m in mapped]
        return [self.evaluator.compute(d, k) for d, k in jobs], 0

    def compute_many(
        self, jobs: Sequence[Tuple[np.ndarray, int]], timed: bool = False
    ):
        """Outcomes for ``jobs``, in input order.

        Returns ``(outcomes, pool_workers)`` where ``pool_workers`` is 0
        when the batch ran on the serial path. With ``timed=True`` the
        return is ``(outcomes, pool_workers, timings)`` where
        ``timings[i]`` is ``(start_unix, duration_s)`` measured where job
        ``i`` actually ran — the environment turns these into
        ``env.eval_worker`` spans. The outcomes themselves are identical
        in both forms (timing never touches the measurement).
        """
        if not jobs:
            return ([], 0, []) if timed else ([], 0)
        kind = self._pick_mode(len(jobs))
        if kind == "serial":
            return self._compute_serial(jobs, timed)
        try:
            executor = self._ensure_executor(kind)
            if kind == "process":
                chunksize = max(1, math.ceil(len(jobs) / (self.workers * 2)))
                fn = _eval_job_timed if timed else _eval_job
                mapped = list(executor.map(fn, jobs, chunksize=chunksize))
            elif timed:
                mapped = list(
                    executor.map(lambda job: _timed_compute(self.evaluator, job), jobs)
                )
            else:
                mapped = list(
                    executor.map(lambda job: self.evaluator.compute(*job), jobs)
                )
            if timed:
                outcomes = [m[0] for m in mapped]
                return outcomes, self.workers, [(m[1], m[2]) for m in mapped]
            return mapped, self.workers
        except BrokenProcessPool as exc:
            # A pool worker was killed mid-batch. Unlike the environment
            # failures below, this is usually transient (OOM killer,
            # operator SIGKILL), so the pool is rebuilt on the next batch
            # — up to the configured budget.
            self.pool_failures += 1
            self.shutdown()
            if self.pool_failures > self.config.max_pool_rebuilds:
                self._pool_broken = True
                logger.warning(
                    "evaluation pool broke mid-batch (%s) for the %d-th "
                    "time — over the rebuild budget (%d), serial for the "
                    "rest of this run",
                    exc,
                    self.pool_failures,
                    self.config.max_pool_rebuilds,
                )
            else:
                logger.warning(
                    "evaluation pool broke mid-batch (%s); finishing this "
                    "batch serially and rebuilding the pool (failure %d/%d)",
                    exc,
                    self.pool_failures,
                    self.config.max_pool_rebuilds + 1,
                )
            return self._compute_serial(jobs, timed)
        except (OSError, RuntimeError) as exc:
            logger.warning(
                "parallel placement evaluation failed (%s: %s); "
                "falling back to serial for the rest of this run",
                type(exc).__name__,
                exc,
            )
            self._pool_broken = True
            self.shutdown()
            return self._compute_serial(jobs, timed)

    def shutdown(self) -> None:
        """Tear down the pool; the next batch recreates it if needed."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._executor_kind = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.shutdown()
        except Exception:
            pass
