"""Incremental makespan re-evaluation for local placement mutations.

RL search, annealing and the serving layer's budget-bounded refinement
all evaluate thousands of candidate placements that differ from an
incumbent by a handful of op→device moves, yet each one pays a full
discrete-event re-simulation. This module removes that waste with a
*checkpoint-resume* scheme that is **bit-identical** to a full
:meth:`repro.sim.scheduler.Scheduler.run_step` pass by construction:

1. **Baseline.** When the environment anchors a placement (its current
   best, or an explicit anchor from a refinement loop), the schedule is
   simulated once by an instrumented event loop that records (a) the
   processed-event index of every op completion and (b) periodic full
   snapshots of the simulator state (device queues, link clocks, the
   pending event heap, partial finish times).
2. **Divergence bound.** The event trajectory of a mutated placement is
   *provably identical* to the baseline's up to the first processed event
   that reads a moved op's device assignment. The scheduler only reads
   ``devices[m]`` when a predecessor of ``m`` completes (output routing),
   when ``m`` itself becomes ready (queue choice — always after its last
   input, hence after a predecessor completion), or at ``t=0`` for source
   ops. The first divergent event is therefore the earliest baseline
   completion among the predecessors of all moved ops.
3. **Resume.** Restore the newest snapshot at or before that event,
   swap in the mutated device vector, and drain the remaining events.
   Identical state + identical deterministic transition rules ⇒ results
   bit-identical to simulating the mutated placement from scratch —
   makespan, per-op finish times, per-device busy time, and the comm
   accumulators all match to the last ulp.

When the resimulated suffix would exceed ``max_dirty_fraction`` of the
baseline's events (or a *source* op moved, making ``t=0`` dirty), the
caller falls back to the full simulator — correctness never depends on
the delta being small, only speed does.

The resume loop mirrors ``Scheduler.run_step`` statement for statement
but runs on pre-lowered Python-native tables (:class:`ScheduleTables`:
nested lists instead of per-element ndarray indexing, a precomputed
link-bandwidth matrix instead of per-transfer ``ClusterSpec`` lookups).
Same IEEE-754 operations in the same order — just without the per-event
ndarray scalar-boxing overhead. ``tests/property/test_incremental_properties.py``
holds the two loops equal over randomized (graph, delta, seed) cases;
``benchmarks/bench_incremental.py`` publishes the speedup curve
(``BENCH_incremental.json``) and ``docs/performance.md`` documents the
contract, the fallback semantics and how to profile the fast path.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.scheduler import ScheduleResult

__all__ = [
    "IncrementalEvalConfig",
    "ScheduleTables",
    "ScheduleBaseline",
    "IncrementalEvaluator",
    "build_baseline",
    "resume_schedule",
]


@dataclass
class IncrementalEvalConfig:
    """Knobs for the incremental fast path (``MarsConfig.incremental``).

    ``enabled=False`` turns the whole machinery off — every evaluation
    takes the full-simulation path, as before this module existed. The
    runner exposes that as ``--no-incremental`` for A/B runs
    (see EXPERIMENTS.md, "Evaluation speed").
    """

    enabled: bool = True
    #: Fall back to full simulation when the events that must be replayed
    #: exceed this fraction of the baseline's total (a resume that replays
    #: nearly everything pays snapshot-restore cost for no skip).
    max_dirty_fraction: float = 0.75
    #: Full simulator-state snapshots recorded per baseline. More snapshots
    #: = finer resume granularity at O(V) memory each.
    checkpoints: int = 16
    #: Graphs smaller than this always use the full simulator — a single
    #: event-loop pass over a tiny graph is cheaper than bookkeeping.
    min_ops: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.max_dirty_fraction <= 1.0:
            raise ValueError(
                f"max_dirty_fraction must be in (0, 1], got {self.max_dirty_fraction}"
            )
        if self.checkpoints < 1:
            raise ValueError("checkpoints must be >= 1")


class ScheduleTables:
    """Graph/cluster/cost invariants lowered to Python-native structures.

    Built once per (graph, cluster, op-time table) and shared by every
    baseline and resume on that environment. Nested lists beat per-element
    ndarray indexing by a large constant factor in the event loop, and the
    values are the *same* float64 objects ``.tolist()`` produces — the
    arithmetic is bit-identical to the ndarray path.
    """

    __slots__ = (
        "n",
        "num_devices",
        "op_times",
        "succ",
        "pred",
        "in_degree",
        "out_bytes",
        "link_latency",
        "bandwidth",
        "step_overhead",
        "stock_transfer_time",
    )

    def __init__(
        self,
        graph: CompGraph,
        cluster: ClusterSpec,
        cost_model: CostModel,
        op_times: np.ndarray,
    ):
        n = graph.num_nodes
        self.n = n
        self.num_devices = cluster.num_devices
        self.op_times: List[List[float]] = np.asarray(op_times, dtype=np.float64).tolist()
        self.succ: List[List[int]] = [list(graph.successors(i)) for i in range(n)]
        self.pred: List[List[int]] = [list(graph.predecessors(i)) for i in range(n)]
        self.in_degree: List[int] = [len(p) for p in self.pred]
        self.out_bytes: List[float] = [float(node.output_bytes) for node in graph.nodes]
        self.link_latency = cluster.link_latency
        # Symmetric effective-bandwidth matrix; resolving link overrides
        # here keeps per-transfer cost at two list lookups.
        d = cluster.num_devices
        self.bandwidth: List[List[float]] = [
            [cluster.bandwidth_between(a, b) if a != b else 0.0 for b in range(d)]
            for a in range(d)
        ]
        self.step_overhead = cluster.step_overhead
        #: ``transfer_time`` must match :meth:`CostModel.transfer_time`
        #: bit for bit; a subclass overriding it invalidates the tables.
        self.stock_transfer_time = (
            type(cost_model).transfer_time is CostModel.transfer_time
        )

    def transfer_time(self, nbytes: float, src: int, dst: int) -> float:
        # Exactly CostModel.transfer_time's expression (same operation
        # order, so the same IEEE-754 result).
        return self.link_latency + 2.0 * nbytes / self.bandwidth[src][dst]


@dataclass
class _Snapshot:
    """Full simulator state between two processed events (copy-on-resume)."""

    events_done: int
    finish: List[float]
    starts: List[float]
    device_free: List[float]
    device_busy: List[float]
    device_ready: List[List[int]]
    device_running: List[bool]
    link_free: Dict[Tuple[int, int], float]
    shipped: Set[Tuple[int, int]]
    remaining: List[int]
    comm_time: float
    comm_bytes: float
    heap: List[tuple]
    seq: int
    consumers_waiting: Dict[Tuple[int, int], List[int]]


@dataclass
class ScheduleBaseline:
    """One anchored placement's traced schedule + resume machinery."""

    devices: np.ndarray  # int64, defensive copy
    result: ScheduleResult  # what run_step would have returned
    completion_index: List[int]  # op -> processed-event index of completion
    total_events: int
    snapshots: List[_Snapshot]  # ascending events_done; [0] is initial state
    tables: ScheduleTables


def _drain(
    state: _Snapshot,
    tables: ScheduleTables,
    devices: List[int],
    snapshot_every: int = 0,
    completion_index: Optional[List[int]] = None,
    snapshots: Optional[List[_Snapshot]] = None,
) -> _Snapshot:
    """Run the event loop to exhaustion, mutating ``state`` in place.

    This mirrors ``Scheduler.run_step``'s loop statement for statement —
    same event ordering, same tie-breaking, same float operations in the
    same order — so a drained state is bit-identical to the full
    simulator's. With ``snapshot_every > 0`` it also records periodic
    state snapshots and per-op completion indices (baseline mode).
    """
    op_times = tables.op_times
    succ = tables.succ
    out_bytes = tables.out_bytes
    link_latency = tables.link_latency
    bandwidth = tables.bandwidth
    finish = state.finish
    starts = state.starts
    device_free = state.device_free
    device_busy = state.device_busy
    device_ready = state.device_ready
    device_running = state.device_running
    link_free = state.link_free
    shipped = state.shipped
    remaining = state.remaining
    events = state.heap
    seq = state.seq
    consumers_waiting = state.consumers_waiting
    comm_time = state.comm_time
    comm_bytes = state.comm_bytes
    events_done = state.events_done
    heappush, heappop = heapq.heappush, heapq.heappop

    while events:
        if (
            snapshot_every
            and events_done
            and events_done % snapshot_every == 0
            and snapshots is not None
        ):
            state.seq = seq
            state.comm_time = comm_time
            state.comm_bytes = comm_bytes
            state.events_done = events_done
            snapshots.append(_copy_snapshot(state))
        now, _, kind, payload = heappop(events)
        if kind == 0:  # op completed
            op, dev = payload
            if completion_index is not None:
                completion_index[op] = events_done
            device_running[dev] = False
            for s in succ[op]:
                dst = devices[s]
                if dst == dev:
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        # mark_ready + try_start (inlined)
                        heappush(device_ready[dst], s)
                        if not device_running[dst]:
                            ready_op = heappop(device_ready[dst])
                            duration = op_times[ready_op][dst]
                            start = now if now > device_free[dst] else device_free[dst]
                            end = start + duration
                            starts[ready_op] = start
                            finish[ready_op] = end
                            device_free[dst] = end
                            device_busy[dst] += duration
                            device_running[dst] = True
                            heappush(events, (end, seq, 0, (ready_op, dst)))
                            seq += 1
                else:
                    key = (op, dst)
                    if key in shipped:
                        consumers_waiting[key].append(s)
                    else:
                        shipped.add(key)
                        consumers_waiting[key] = [s]
                        nbytes = out_bytes[op]
                        link = (dev, dst) if dev < dst else (dst, dev)
                        duration = link_latency + 2.0 * nbytes / bandwidth[dev][dst]
                        queued = link_free.get(link, 0.0)
                        start = now if now > queued else queued
                        link_free[link] = start + duration
                        comm_time += duration
                        comm_bytes += nbytes
                        heappush(events, (start + duration, seq, 1, key))
                        seq += 1
            # try_start on the freed device (inlined). A same-device
            # successor may have restarted the device inside the loop
            # above, so the running check is load-bearing.
            if not device_running[dev] and device_ready[dev]:
                ready_op = heappop(device_ready[dev])
                duration = op_times[ready_op][dev]
                start = now if now > device_free[dev] else device_free[dev]
                end = start + duration
                starts[ready_op] = start
                finish[ready_op] = end
                device_free[dev] = end
                device_busy[dev] += duration
                device_running[dev] = True
                heappush(events, (end, seq, 0, (ready_op, dev)))
                seq += 1
        else:  # tensor arrived on a device
            for s in consumers_waiting.pop(payload, ()):
                remaining[s] -= 1
                if remaining[s] == 0:
                    dst = devices[s]
                    heappush(device_ready[dst], s)
                    if not device_running[dst]:
                        ready_op = heappop(device_ready[dst])
                        duration = op_times[ready_op][dst]
                        start = now if now > device_free[dst] else device_free[dst]
                        end = start + duration
                        starts[ready_op] = start
                        finish[ready_op] = end
                        device_free[dst] = end
                        device_busy[dst] += duration
                        device_running[dst] = True
                        heappush(events, (end, seq, 0, (ready_op, dst)))
                        seq += 1
        events_done += 1

    state.seq = seq
    state.comm_time = comm_time
    state.comm_bytes = comm_bytes
    state.events_done = events_done
    return state


def _initial_state(tables: ScheduleTables, devices: List[int]) -> _Snapshot:
    """Simulator state after marking source ops ready (pre-event-loop)."""
    n = tables.n
    state = _Snapshot(
        events_done=0,
        finish=[0.0] * n,
        starts=[0.0] * n,
        device_free=[0.0] * tables.num_devices,
        device_busy=[0.0] * tables.num_devices,
        device_ready=[[] for _ in range(tables.num_devices)],
        device_running=[False] * tables.num_devices,
        link_free={},
        shipped=set(),
        remaining=list(tables.in_degree),
        comm_time=0.0,
        comm_bytes=0.0,
        heap=[],
        seq=0,
        consumers_waiting={},
    )
    op_times = tables.op_times
    seq = 0
    for op in range(n):
        if state.remaining[op] == 0:
            dev = devices[op]
            heapq.heappush(state.device_ready[dev], op)
            if not state.device_running[dev]:
                ready_op = heapq.heappop(state.device_ready[dev])
                duration = op_times[ready_op][dev]
                start = state.device_free[dev]  # now == 0.0
                if start < 0.0:  # pragma: no cover - times are non-negative
                    start = 0.0
                end = start + duration
                state.starts[ready_op] = start
                state.finish[ready_op] = end
                state.device_free[dev] = end
                state.device_busy[dev] += duration
                state.device_running[dev] = True
                heapq.heappush(state.heap, (end, seq, 0, (ready_op, dev)))
                seq += 1
    state.seq = seq
    return state


def _copy_snapshot(state: _Snapshot) -> _Snapshot:
    return _Snapshot(
        events_done=state.events_done,
        finish=list(state.finish),
        starts=list(state.starts),
        device_free=list(state.device_free),
        device_busy=list(state.device_busy),
        device_ready=[list(q) for q in state.device_ready],
        device_running=list(state.device_running),
        link_free=dict(state.link_free),
        shipped=set(state.shipped),
        remaining=list(state.remaining),
        comm_time=state.comm_time,
        comm_bytes=state.comm_bytes,
        heap=list(state.heap),  # tuples are immutable; a shallow copy suffices
        seq=state.seq,
        consumers_waiting={k: list(v) for k, v in state.consumers_waiting.items()},
    )


def _result_from_state(state: _Snapshot, tables: ScheduleTables) -> ScheduleResult:
    finish = np.array(state.finish, dtype=np.float64)
    makespan = float(finish.max()) + tables.step_overhead if tables.n else 0.0
    return ScheduleResult(
        makespan=makespan,
        finish_times=finish,
        device_busy=np.array(state.device_busy, dtype=np.float64),
        comm_time=float(state.comm_time),
        comm_bytes=float(state.comm_bytes),
        start_times=np.array(state.starts, dtype=np.float64),
        transfers=None,
    )


def _expected_events(tables: ScheduleTables, devices: List[int]) -> int:
    """Exact processed-event count: one completion per op plus one arrival
    per unique (producer, consumer-device) cross-device shipment."""
    shipments = set()
    for op, successors in enumerate(tables.succ):
        dev = devices[op]
        for s in successors:
            dst = devices[s]
            if dst != dev:
                shipments.add((op, dst))
    return tables.n + len(shipments)


def build_baseline(
    tables: ScheduleTables,
    devices: np.ndarray,
    config: Optional[IncrementalEvalConfig] = None,
) -> ScheduleBaseline:
    """Simulate ``devices`` once, recording resume snapshots on the way."""
    config = config if config is not None else IncrementalEvalConfig()
    devices = np.ascontiguousarray(devices, dtype=np.int64).copy()
    devices_list = devices.tolist()
    total = _expected_events(tables, devices_list)
    snapshot_every = max(1, -(-total // config.checkpoints))  # ceil division
    completion_index = [0] * tables.n
    state = _initial_state(tables, devices_list)
    snapshots = [_copy_snapshot(state)]
    _drain(
        state,
        tables,
        devices_list,
        snapshot_every=snapshot_every,
        completion_index=completion_index,
        snapshots=snapshots,
    )
    return ScheduleBaseline(
        devices=devices,
        result=_result_from_state(state, tables),
        completion_index=completion_index,
        total_events=state.events_done,
        snapshots=snapshots,
        tables=tables,
    )


def first_divergent_event(
    baseline: ScheduleBaseline, new_devices: np.ndarray
) -> Optional[int]:
    """Index of the first baseline event whose processing can differ under
    ``new_devices``; ``None`` when a source op moved (dirty from t=0)."""
    moved = np.flatnonzero(baseline.devices != np.asarray(new_devices, dtype=np.int64))
    tables = baseline.tables
    completion = baseline.completion_index
    first = baseline.total_events
    for m in moved.tolist():
        preds = tables.pred[m]
        if not preds:
            return None  # t=0 routing depends on the moved op's device
        for p in preds:
            idx = completion[p]
            if idx < first:
                first = idx
    return first


def _resume_point(
    baseline: ScheduleBaseline,
    new_devices: np.ndarray,
    config: IncrementalEvalConfig,
) -> Optional[int]:
    """The divergence event index a resume would start from, or ``None``
    when the delta is not worth resuming (source move, dirty region above
    ``config.max_dirty_fraction``, degenerate baseline). This is the whole
    hit/fallback decision, separated out so callers holding an
    already-computed full result (the batch apply loop) can classify an
    evaluation without paying for the resume itself."""
    total = baseline.total_events
    if total <= 0:
        return None
    first_div = first_divergent_event(baseline, new_devices)
    if first_div is None:
        return None
    if (total - first_div) > config.max_dirty_fraction * total:
        return None
    return first_div


def resume_schedule(
    baseline: ScheduleBaseline,
    new_devices: np.ndarray,
    config: IncrementalEvalConfig,
) -> Optional[ScheduleResult]:
    """Re-evaluate a mutated placement from the baseline's snapshots.

    Returns ``None`` when the delta is not worth resuming (source move, or
    dirty region above ``config.max_dirty_fraction``) — the caller then
    runs the full simulator. An unchanged placement returns the baseline's
    own result object.
    """
    new_devices = np.ascontiguousarray(new_devices, dtype=np.int64)
    if np.array_equal(new_devices, baseline.devices):
        return baseline.result
    first_div = _resume_point(baseline, new_devices, config)
    if first_div is None:
        return None
    # Newest snapshot with events_done <= first_div (snapshot k is the
    # state *before* processing event index snapshots[k].events_done).
    positions = [s.events_done for s in baseline.snapshots]
    idx = bisect_right(positions, first_div) - 1
    state = _copy_snapshot(baseline.snapshots[idx])
    _drain(state, baseline.tables, new_devices.tolist())
    return _result_from_state(state, baseline.tables)


class IncrementalEvaluator:
    """Per-environment incremental-evaluation state (anchor + baseline).

    Owned by :class:`repro.sim.env.PlacementEnv`; the environment anchors
    it to the best valid placement seen so far (and refinement loops may
    re-anchor explicitly via ``PlacementEnv.anchor_incremental``). Not
    shared with pool workers — the whole point is avoiding work in the
    local process, and shipping snapshots over IPC would cost more than it
    saves.
    """

    def __init__(
        self,
        graph: CompGraph,
        cluster: ClusterSpec,
        cost_model: CostModel,
        op_times: np.ndarray,
        config: Optional[IncrementalEvalConfig] = None,
    ):
        self.config = config if config is not None else IncrementalEvalConfig()
        self.tables = ScheduleTables(graph, cluster, cost_model, op_times)
        self.baseline: Optional[ScheduleBaseline] = None
        self.anchor_makespan: float = float("inf")
        self._pending_anchor: Optional[np.ndarray] = None
        # Tables are only valid for the stock transfer-time formula; a
        # custom cost model silently disables the fast path (full
        # simulation remains correct for it).
        self._usable = (
            self.config.enabled
            and graph.num_nodes >= self.config.min_ops
            and self.tables.stock_transfer_time
        )

    @property
    def ready(self) -> bool:
        """True when an incremental attempt could succeed right now."""
        return self._usable and (
            self.baseline is not None or self._pending_anchor is not None
        )

    def anchor(self, devices: np.ndarray, makespan: Optional[float] = None) -> None:
        """Re-anchor the baseline to ``devices`` (built lazily on first use)."""
        if not self._usable:
            return
        devices = np.ascontiguousarray(devices, dtype=np.int64)
        if self.baseline is not None and np.array_equal(devices, self.baseline.devices):
            return
        self._pending_anchor = devices.copy()
        self.baseline = None
        self.anchor_makespan = float("nan") if makespan is None else float(makespan)

    def maybe_anchor(self, devices: np.ndarray, makespan: float) -> None:
        """Anchor when ``makespan`` improves on the current anchor's."""
        if makespan < self.anchor_makespan or (
            self.baseline is None and self._pending_anchor is None
        ):
            self.anchor(devices, makespan)

    def _ensure_baseline(self) -> Optional[ScheduleBaseline]:
        if self.baseline is None and self._pending_anchor is not None:
            self.baseline = build_baseline(
                self.tables, self._pending_anchor, self.config
            )
            self._pending_anchor = None
            # An explicit anchor (annealing's incumbent, serving's greedy
            # decode) arrives without a makespan; the baseline build just
            # computed the noise-free one, so improvement tracking works.
            self.anchor_makespan = self.baseline.result.makespan
        return self.baseline

    def reschedule(self, devices: np.ndarray) -> Optional[ScheduleResult]:
        """Incremental re-evaluation; ``None`` means "fall back to full"."""
        if not self._usable:
            return None
        baseline = self._ensure_baseline()
        if baseline is None:
            return None
        return resume_schedule(baseline, devices, self.config)

    def would_resume(self, devices: np.ndarray) -> bool:
        """The hit/fallback decision :meth:`reschedule` would make, without
        the resume work. The batch apply loop uses this to classify pool-
        computed outcomes exactly as a sequential ``evaluate`` loop would
        have (same lazy baseline build, same decision logic)."""
        if not self._usable:
            return False
        baseline = self._ensure_baseline()
        if baseline is None:
            return False
        devices = np.ascontiguousarray(devices, dtype=np.int64)
        if np.array_equal(devices, baseline.devices):
            return True
        return _resume_point(baseline, devices, self.config) is not None

    # -- run-state snapshots (core/runstate.py) ------------------------
    def state_dict(self) -> dict:
        anchor = (
            self.baseline.devices
            if self.baseline is not None
            else self._pending_anchor
        )
        return {
            "anchor": anchor if anchor is not None else np.empty(0, dtype=np.int64),
            "anchor_makespan": float(self.anchor_makespan),
        }

    def load_state_dict(self, state: dict) -> None:
        anchor = np.asarray(state["anchor"], dtype=np.int64)
        self.baseline = None
        if anchor.size:
            self._pending_anchor = anchor.copy()
        else:
            self._pending_anchor = None
        self.anchor_makespan = float(state["anchor_makespan"])
