"""Placement representation and constraint resolution."""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec


class Placement:
    """An assignment op-index -> device-index for a specific graph/cluster."""

    def __init__(self, devices: Sequence[int], graph: CompGraph, cluster: ClusterSpec):
        arr = np.asarray(devices, dtype=np.int64)
        if arr.shape != (graph.num_nodes,):
            raise ValueError(
                f"placement length {arr.shape} != num ops ({graph.num_nodes},)"
            )
        if arr.size and (arr.min() < 0 or arr.max() >= cluster.num_devices):
            raise ValueError("device index out of range")
        self.devices = arr
        self.graph = graph
        self.cluster = cluster
        self._hash: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Placement) and np.array_equal(self.devices, other.devices)

    def __hash__(self) -> int:
        # Stable across processes: the measurement protocol seeds its noise
        # from this hash, so Python's per-process salting of `hash(bytes)`
        # (PYTHONHASHSEED) would make seeded runs irreproducible between
        # processes — and would break crash-safe resume, which must replay
        # the exact noisy measurements of the interrupted run.
        if self._hash is None:
            digest = hashlib.blake2b(
                np.ascontiguousarray(self.devices).tobytes(), digest_size=8
            ).digest()
            self._hash = int.from_bytes(digest, "little") & ((1 << 63) - 1)
        return self._hash

    def device_of(self, op_index: int) -> int:
        return int(self.devices[op_index])

    def ops_on(self, device_index: int) -> np.ndarray:
        return np.flatnonzero(self.devices == device_index)

    def num_cut_edges(self) -> int:
        """Edges crossing devices — proxy for communication volume."""
        return sum(
            1 for u, v in self.graph.edges() if self.devices[u] != self.devices[v]
        )

    def describe(self) -> str:
        counts = np.bincount(self.devices, minlength=self.cluster.num_devices)
        parts = [
            f"{dev.name}={int(c)}"
            for dev, c in zip(self.cluster.devices, counts)
            if c > 0
        ]
        return f"Placement({', '.join(parts)}, cut={self.num_cut_edges()})"


def resolve_placement(
    actions: Sequence[int], graph: CompGraph, cluster: ClusterSpec
) -> Placement:
    """Turn raw agent actions into a *feasible* placement.

    Applies the environment-side constraints the real TF runtime enforces:

    * ``cpu_only`` ops run on the CPU regardless of the agent's action
      (mirrors "GPU incompatible operations run on CPU", Section 4.1), and
    * colocation groups land on the device chosen for their first member.
    """
    devices = np.asarray(actions, dtype=np.int64).copy()
    if devices.shape != (graph.num_nodes,):
        raise ValueError("actions length mismatch")
    cpu = cluster.cpu_index

    group_device: Dict[str, int] = {}
    for i, node in enumerate(graph.nodes):
        if node.colocation_group is not None:
            if node.colocation_group not in group_device:
                group_device[node.colocation_group] = int(devices[i])
            devices[i] = group_device[node.colocation_group]
    for i, node in enumerate(graph.nodes):
        if node.cpu_only:
            devices[i] = cpu
    return Placement(devices, graph, cluster)


def single_device_placement(
    graph: CompGraph, cluster: ClusterSpec, device_index: Optional[int] = None
) -> Placement:
    """All GPU-compatible ops on one device ("GPU Only" baseline)."""
    if device_index is None:
        device_index = cluster.gpu_indices[0]
    return resolve_placement(
        np.full(graph.num_nodes, device_index), graph, cluster
    )
