"""Cluster topology: devices plus interconnect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.sim.device import GB, DeviceSpec


@dataclass(frozen=True)
class ClusterSpec:
    """The machine the workload is placed on.

    The interconnect is modeled as dedicated full-duplex PCIe-class links
    between every device pair; each unordered pair is one serialized
    resource (transfers between the same two devices queue up, transfers on
    disjoint pairs proceed in parallel).
    """

    devices: Tuple[DeviceSpec, ...]
    # Effective inter-device throughput of TF 1.x tensor transfers is far
    # below PCIe line rate (serialization + grpc/send-recv overheads).
    link_bandwidth: float = 3.0 * GB
    link_latency: float = 5.0e-5
    step_overhead: float = 5.0e-3  # session/iterator overhead per train step
    #: Optional per-pair bandwidth overrides (NVLink-style topologies):
    #: ``((device_index_a, device_index_b, bytes_per_second), ...)``.
    link_overrides: Tuple[Tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("cluster needs at least one device")
        names = [d.name for d in self.devices]
        if len(set(names)) != len(names):
            raise ValueError("duplicate device names")
        if not any(d.kind == "cpu" for d in self.devices):
            raise ValueError("cluster needs a CPU for host-only ops")

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def gpu_indices(self) -> List[int]:
        return [i for i, d in enumerate(self.devices) if d.is_gpu]

    @property
    def cpu_index(self) -> int:
        for i, d in enumerate(self.devices):
            if d.kind == "cpu":
                return i
        raise RuntimeError("unreachable: validated in __post_init__")

    def signature(self) -> str:
        """Stable content hash of the cluster (hex sha256, truncated).

        Covers everything that affects a placement measurement: per-device
        capabilities, link bandwidth/latency, step overhead and link
        overrides. Used by the serving layer (``repro.serve``) to key
        result caches — the same graph on a different machine must not
        share cache entries.
        """
        import hashlib
        import json

        doc = {
            "devices": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "peak_flops": d.peak_flops,
                    "mem_bandwidth": d.mem_bandwidth,
                    "memory": d.memory,
                    "launch_overhead": d.launch_overhead,
                    "efficiency": dict(sorted(d.efficiency.items())),
                }
                for d in self.devices
            ],
            "link_bandwidth": self.link_bandwidth,
            "link_latency": self.link_latency,
            "step_overhead": self.step_overhead,
            "link_overrides": sorted(
                (min(a, b), max(a, b), bw) for a, b, bw in self.link_overrides
            ),
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def bandwidth_between(self, a: int, b: int) -> float:
        """Effective bandwidth of the ``a``-``b`` link (order-insensitive)."""
        for x, y, bw in self.link_overrides:
            if {x, y} == {a, b}:
                return bw
        return self.link_bandwidth

    def transfer_time(self, nbytes: float, src: int = None, dst: int = None) -> float:
        bw = (
            self.bandwidth_between(src, dst)
            if src is not None and dst is not None
            else self.link_bandwidth
        )
        return self.link_latency + nbytes / bw

    @classmethod
    def default(cls, num_gpus: int = 4, gpu_memory_gb: float = 12.0) -> "ClusterSpec":
        """The paper's machine: 4x P100 12GB + Xeon host."""
        gpus = tuple(DeviceSpec.p100(i, gpu_memory_gb) for i in range(num_gpus))
        return cls(devices=gpus + (DeviceSpec.xeon(0),))

    @classmethod
    def nvlink(
        cls,
        num_gpus: int = 4,
        gpu_memory_gb: float = 12.0,
        nvlink_bandwidth: float = 20.0 * GB,
    ) -> "ClusterSpec":
        """Like :meth:`default` but adjacent GPU pairs share an NVLink-class
        fast link (GPU 0-1, 2-3, ...), as on DGX-style boxes."""
        gpus = tuple(DeviceSpec.p100(i, gpu_memory_gb) for i in range(num_gpus))
        overrides = tuple(
            (i, i + 1, nvlink_bandwidth) for i in range(0, num_gpus - 1, 2)
        )
        return cls(devices=gpus + (DeviceSpec.xeon(0),), link_overrides=overrides)
