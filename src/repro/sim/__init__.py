"""Discrete-event simulator of a multi-device machine.

This package replaces the paper's physical reinforcement-learning
environment (a 4× P100 + 2× Xeon machine running TensorFlow): given a
computational graph and a placement it produces a per-step training time,
detects out-of-memory placements, and accounts for the *wall-clock cost of
measuring* each placement (re-initialization, warm-up steps, bad-placement
cutoff) so the agent-training-time results (Fig. 8) can be reproduced.
"""

from repro.sim.device import DeviceSpec
from repro.sim.cluster import ClusterSpec
from repro.sim.placement import Placement, resolve_placement
from repro.sim.costmodel import CostModel
from repro.sim.memory import MemoryModel, MemoryReport
from repro.sim.scheduler import Scheduler, ScheduleResult, TransferRecord
from repro.sim.attribution import (
    PathSegment,
    PlacementAttribution,
    attribute_schedule,
    coalesce_intervals,
)
from repro.sim.measurement import MeasurementProtocol, MeasurementResult
from repro.sim.batch import BatchEvalConfig, BatchEvaluator, EvalOutcome, PureEvaluator
from repro.sim.incremental import (
    IncrementalEvalConfig,
    IncrementalEvaluator,
    ScheduleBaseline,
    ScheduleTables,
    build_baseline,
    resume_schedule,
)
from repro.sim.env import PlacementEnv

__all__ = [
    "PathSegment",
    "PlacementAttribution",
    "attribute_schedule",
    "coalesce_intervals",
    "TransferRecord",
    "BatchEvalConfig",
    "BatchEvaluator",
    "EvalOutcome",
    "PureEvaluator",
    "IncrementalEvalConfig",
    "IncrementalEvaluator",
    "ScheduleBaseline",
    "ScheduleTables",
    "build_baseline",
    "resume_schedule",
    "DeviceSpec",
    "ClusterSpec",
    "Placement",
    "resolve_placement",
    "CostModel",
    "MemoryModel",
    "MemoryReport",
    "Scheduler",
    "ScheduleResult",
    "MeasurementProtocol",
    "MeasurementResult",
    "PlacementEnv",
]
