"""The placement environment the RL agent interacts with.

Ties together graph, cluster, cost model, memory model, scheduler and
measurement protocol behind the two calls an agent needs:

* :meth:`PlacementEnv.evaluate` — measure a proposed placement (with
  caching, OOM handling and wall-clock accounting), and
* :meth:`PlacementEnv.final_run` — the 1000-step evaluation of the best
  placement reported in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.measurement import MeasurementProtocol, MeasurementResult
from repro.sim.memory import MemoryModel
from repro.sim.placement import Placement, resolve_placement
from repro.sim.scheduler import Scheduler
from repro.telemetry import Telemetry, get_telemetry


@dataclass
class EnvStats:
    """Cumulative bookkeeping of environment usage."""

    evaluations: int = 0
    cache_hits: int = 0
    invalid: int = 0
    truncated: int = 0
    wall_clock: float = 0.0  # simulated seconds spent measuring placements


class PlacementEnv:
    """Measurement environment for one workload on one cluster."""

    def __init__(
        self,
        graph: CompGraph,
        cluster: Optional[ClusterSpec] = None,
        cost_model: Optional[CostModel] = None,
        memory_model: Optional[MemoryModel] = None,
        protocol: Optional[MeasurementProtocol] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.graph = graph
        self._telemetry = telemetry  # None -> ambient session per evaluate()
        self.cluster = cluster or ClusterSpec.default()
        self.cost_model = cost_model or CostModel()
        self.memory_model = memory_model or MemoryModel()
        self.protocol = protocol or MeasurementProtocol()
        self.scheduler = Scheduler(self.cost_model)
        self.stats = EnvStats()
        # Precompute invariants; evaluating a placement is then O(V + E).
        self._op_times = self.cost_model.op_time_matrix(self.graph, self.cluster)
        self._order = (
            np.arange(self.graph.num_nodes)
            if self.graph.is_topologically_indexed()
            else np.asarray(self.graph.topological_order())
        )
        self._mem_per_op = self.memory_model.op_bytes_vector(self.graph)
        self._capacity = np.array([d.memory for d in self.cluster.devices])
        self._cache: Dict[bytes, MeasurementResult] = {}

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.cluster.num_devices

    @property
    def num_ops(self) -> int:
        return self.graph.num_nodes

    def resolve(self, actions: Sequence[int]) -> Placement:
        return resolve_placement(actions, self.graph, self.cluster)

    def makespan(self, placement: Placement) -> float:
        """Noise-free step time of a placement (no wall-clock charge)."""
        return self.scheduler.run_step(placement, self._op_times, self._order).makespan

    def check_memory(self, placement: Placement):
        usage = np.zeros(self.num_devices)
        np.add.at(usage, placement.devices, self._mem_per_op)
        return usage, usage > self._capacity

    # ------------------------------------------------------------------
    def evaluate(self, actions: Sequence[int]) -> MeasurementResult:
        """Measure a placement proposed by the agent (cached)."""
        tel = self._telemetry or get_telemetry()
        placement = self.resolve(actions)
        key = placement.devices.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.evaluations += 1
            # Re-measuring a known placement is quick on a real setup too
            # (no exploration value) — charge only the re-init.
            self.stats.wall_clock += self.protocol.reinit_cost
            tel.counter("env.evaluations").inc()
            tel.counter("env.cache_hits").inc()
            if tel.sample_events:
                tel.emit(
                    "eval",
                    makespan=float("nan"),
                    per_step_time=float(cached.per_step_time),
                    valid=bool(cached.valid),
                    truncated=bool(cached.truncated),
                    cached=True,
                    wall_clock=float(self.protocol.reinit_cost),
                    sim_clock=float(self.stats.wall_clock),
                )
            return cached

        usage, oom = self.check_memory(placement)
        valid = not bool(oom.any())
        schedule = (
            self.scheduler.run_step(placement, self._op_times, self._order)
            if valid
            else None
        )
        makespan = schedule.makespan if valid else float("inf")
        result = self.protocol.measure(makespan, valid, hash(placement))
        self._cache[key] = result
        self.stats.evaluations += 1
        self.stats.wall_clock += result.wall_clock
        if not result.valid:
            self.stats.invalid += 1
        if result.truncated:
            self.stats.truncated += 1

        # Telemetry: makespan breakdown + OOM/cutoff accounting. The
        # schedule result is a by-product of the measurement, so the extra
        # cost here is a few scalar reductions per (uncached) evaluation.
        tel.counter("env.evaluations").inc()
        tel.histogram("env.measure_wall_s").observe(result.wall_clock)
        if schedule is not None:
            utilization = (
                float(np.mean(schedule.device_busy) / schedule.makespan)
                if schedule.makespan > 0
                else 0.0
            )
            tel.histogram("env.makespan").observe(schedule.makespan)
            tel.histogram("env.comm_time").observe(schedule.comm_time)
            tel.histogram("env.comm_bytes").observe(schedule.comm_bytes)
            tel.histogram("env.device_utilization").observe(utilization)
        else:
            utilization = 0.0
        if not result.valid:
            worst = int(np.argmax(usage - self._capacity))
            tel.counter("env.oom").inc()
            tel.emit(
                "oom",
                sim_clock=float(self.stats.wall_clock),
                usage_gb=float(usage[worst] / 2**30),
                capacity_gb=float(self._capacity[worst] / 2**30),
            )
        if result.truncated:
            tel.counter("env.cutoff").inc()
            tel.emit(
                "cutoff",
                sim_clock=float(self.stats.wall_clock),
                per_step_time=float(result.per_step_time),
                steps_run=int(result.steps_run),
            )
        if tel.sample_events:
            tel.emit(
                "eval",
                makespan=float(makespan),
                per_step_time=float(result.per_step_time),
                valid=bool(result.valid),
                truncated=bool(result.truncated),
                cached=False,
                wall_clock=float(result.wall_clock),
                sim_clock=float(self.stats.wall_clock),
                comm_time=float(schedule.comm_time) if schedule else 0.0,
                comm_bytes=float(schedule.comm_bytes) if schedule else 0.0,
                device_utilization=utilization,
            )
        return result

    def final_run(self, actions: Sequence[int], steps: int = 1000) -> float:
        """Per-step runtime of the final placement over a long run."""
        placement = self.resolve(actions)
        _, oom = self.check_memory(placement)
        if oom.any():
            return float("nan")
        makespan = self.makespan(placement)
        return self.protocol.final_evaluation(makespan, hash(placement), steps)
