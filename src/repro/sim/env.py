"""The placement environment the RL agent interacts with.

Ties together graph, cluster, cost model, memory model, scheduler and
measurement protocol behind the two calls an agent needs:

* :meth:`PlacementEnv.evaluate` — measure a proposed placement (with
  caching, OOM handling and wall-clock accounting), and
* :meth:`PlacementEnv.final_run` — the 1000-step evaluation of the best
  placement reported in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.measurement import MeasurementProtocol, MeasurementResult
from repro.sim.memory import MemoryModel
from repro.sim.placement import Placement, resolve_placement
from repro.sim.scheduler import Scheduler


@dataclass
class EnvStats:
    """Cumulative bookkeeping of environment usage."""

    evaluations: int = 0
    cache_hits: int = 0
    invalid: int = 0
    truncated: int = 0
    wall_clock: float = 0.0  # simulated seconds spent measuring placements


class PlacementEnv:
    """Measurement environment for one workload on one cluster."""

    def __init__(
        self,
        graph: CompGraph,
        cluster: Optional[ClusterSpec] = None,
        cost_model: Optional[CostModel] = None,
        memory_model: Optional[MemoryModel] = None,
        protocol: Optional[MeasurementProtocol] = None,
    ):
        self.graph = graph
        self.cluster = cluster or ClusterSpec.default()
        self.cost_model = cost_model or CostModel()
        self.memory_model = memory_model or MemoryModel()
        self.protocol = protocol or MeasurementProtocol()
        self.scheduler = Scheduler(self.cost_model)
        self.stats = EnvStats()
        # Precompute invariants; evaluating a placement is then O(V + E).
        self._op_times = self.cost_model.op_time_matrix(self.graph, self.cluster)
        self._order = (
            np.arange(self.graph.num_nodes)
            if self.graph.is_topologically_indexed()
            else np.asarray(self.graph.topological_order())
        )
        self._mem_per_op = self.memory_model.op_bytes_vector(self.graph)
        self._capacity = np.array([d.memory for d in self.cluster.devices])
        self._cache: Dict[bytes, MeasurementResult] = {}

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.cluster.num_devices

    @property
    def num_ops(self) -> int:
        return self.graph.num_nodes

    def resolve(self, actions: Sequence[int]) -> Placement:
        return resolve_placement(actions, self.graph, self.cluster)

    def makespan(self, placement: Placement) -> float:
        """Noise-free step time of a placement (no wall-clock charge)."""
        return self.scheduler.run_step(placement, self._op_times, self._order).makespan

    def check_memory(self, placement: Placement):
        usage = np.zeros(self.num_devices)
        np.add.at(usage, placement.devices, self._mem_per_op)
        return usage, usage > self._capacity

    # ------------------------------------------------------------------
    def evaluate(self, actions: Sequence[int]) -> MeasurementResult:
        """Measure a placement proposed by the agent (cached)."""
        placement = self.resolve(actions)
        key = placement.devices.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            self.stats.evaluations += 1
            # Re-measuring a known placement is quick on a real setup too
            # (no exploration value) — charge only the re-init.
            self.stats.wall_clock += self.protocol.reinit_cost
            return cached

        _, oom = self.check_memory(placement)
        valid = not bool(oom.any())
        makespan = self.makespan(placement) if valid else float("inf")
        result = self.protocol.measure(makespan, valid, hash(placement))
        self._cache[key] = result
        self.stats.evaluations += 1
        self.stats.wall_clock += result.wall_clock
        if not result.valid:
            self.stats.invalid += 1
        if result.truncated:
            self.stats.truncated += 1
        return result

    def final_run(self, actions: Sequence[int], steps: int = 1000) -> float:
        """Per-step runtime of the final placement over a long run."""
        placement = self.resolve(actions)
        _, oom = self.check_memory(placement)
        if oom.any():
            return float("nan")
        makespan = self.makespan(placement)
        return self.protocol.final_evaluation(makespan, hash(placement), steps)
