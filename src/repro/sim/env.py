"""The placement environment the RL agent interacts with.

Ties together graph, cluster, cost model, memory model, scheduler and
measurement protocol behind the calls an agent needs:

* :meth:`PlacementEnv.evaluate` — measure a proposed placement (with
  caching, OOM handling and wall-clock accounting),
* :meth:`PlacementEnv.evaluate_batch` — measure a whole rollout at once:
  the batch is deduped against the result cache first, and the remaining
  unique placements fan out across a worker pool (``sim/batch.py``) with
  a deterministic serial fallback — results are bit-identical to a
  sequential loop of ``evaluate`` calls in every mode, and
* :meth:`PlacementEnv.final_run` — the 1000-step evaluation of the best
  placement reported in the paper's tables.

The per-placement result cache is a bounded LRU (re-measuring an evicted
placement just costs one more simulated measurement, exactly as on a
real machine), so long searches hold a fixed amount of memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph import CompGraph
from repro.sim.attribution import PlacementAttribution, attribute_schedule
from repro.sim.batch import BatchEvalConfig, BatchEvaluator, EvalOutcome, PureEvaluator
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.incremental import IncrementalEvalConfig, IncrementalEvaluator
from repro.sim.measurement import MeasurementProtocol, MeasurementResult
from repro.sim.memory import MemoryModel
from repro.sim.placement import Placement, resolve_placement
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.tracing import record_span, span


@dataclass
class EnvStats:
    """Cumulative bookkeeping of environment usage."""

    evaluations: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    invalid: int = 0
    truncated: int = 0
    wall_clock: float = 0.0  # simulated seconds spent measuring placements
    #: Evaluations served by the incremental fast path (sim/incremental.py)
    #: vs. attempts that fell back to full simulation. Results are
    #: bit-identical either way — these only measure how often the fast
    #: path pays off.
    incremental_hits: int = 0
    incremental_fallbacks: int = 0
    #: Batches whose evaluation pool broke mid-compute (a worker died)
    #: and were finished on the serial path — results are identical, this
    #: only measures pool robustness events (sim/batch.py).
    eval_pool_failures: int = 0


class PlacementEnv:
    """Measurement environment for one workload on one cluster."""

    def __init__(
        self,
        graph: CompGraph,
        cluster: Optional[ClusterSpec] = None,
        cost_model: Optional[CostModel] = None,
        memory_model: Optional[MemoryModel] = None,
        protocol: Optional[MeasurementProtocol] = None,
        telemetry: Optional[Telemetry] = None,
        batch: Optional[BatchEvalConfig] = None,
        cache_capacity: Optional[int] = None,
        incremental: Optional[IncrementalEvalConfig] = None,
    ):
        self.graph = graph
        self._telemetry = telemetry  # None -> ambient session per evaluate()
        self.cluster = cluster or ClusterSpec.default()
        self.cost_model = cost_model or CostModel()
        self.memory_model = memory_model or MemoryModel()
        self.protocol = protocol or MeasurementProtocol()
        self.stats = EnvStats()
        self.batch_config = batch or BatchEvalConfig()
        # Precompute invariants; evaluating a placement is then O(V + E).
        # The pure evaluator owns them so pool workers share the same code
        # path (and the same precomputed arrays) as the serial one.
        self._evaluator = PureEvaluator.build(
            self.graph, self.cluster, self.cost_model, self.memory_model, self.protocol
        )
        self.scheduler = self._evaluator.scheduler
        self._op_times = self._evaluator.op_times
        self._order = self._evaluator.order
        self._mem_per_op = self._evaluator.mem_per_op
        self._capacity = self._evaluator.capacity
        self._batcher = BatchEvaluator(self._evaluator, self.batch_config)
        # Incremental re-evaluation state: anchored to the best valid
        # placement seen (or an explicit anchor from a refinement loop).
        # Strictly local — pool workers always run the full simulator.
        self.incremental_config = (
            incremental if incremental is not None else IncrementalEvalConfig()
        )
        self._incremental = IncrementalEvaluator(
            self.graph,
            self.cluster,
            self.cost_model,
            self._op_times,
            self.incremental_config,
        )
        # Bounded LRU result cache: one entry per unique placement, capped
        # so long searches hold constant memory (<=0 means unbounded).
        cap = (
            cache_capacity
            if cache_capacity is not None
            else self.batch_config.cache_capacity
        )
        self._cache_capacity = int(cap) if cap and cap > 0 else 0
        self._cache: "OrderedDict[bytes, MeasurementResult]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.cluster.num_devices

    @property
    def num_ops(self) -> int:
        return self.graph.num_nodes

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def resolve(self, actions: Sequence[int]) -> Placement:
        return resolve_placement(actions, self.graph, self.cluster)

    def makespan(self, placement: Placement) -> float:
        """Noise-free step time of a placement (no wall-clock charge)."""
        return self.scheduler.run_step(placement, self._op_times, self._order).makespan

    def check_memory(self, placement: Placement):
        return self._evaluator.memory_usage(placement)

    # ------------------------------------------------------------------
    # Attribution (docs/observability.md §"Placement attribution")
    # ------------------------------------------------------------------
    def attribute(self, actions: Sequence[int]) -> PlacementAttribution:
        """Full diagnostic breakdown of a placement's step time.

        Pure analysis — no measurement noise, no wall-clock charge, no
        cache interaction. Runs one traced scheduler pass.
        """
        placement = self.resolve(actions)
        schedule = self.scheduler.run_step(
            placement, self._op_times, self._order, trace=True
        )
        return attribute_schedule(placement, schedule)

    def record_attribution(
        self, actions: Sequence[int], iteration: int = -1
    ) -> PlacementAttribution:
        """Attribute a placement and record the result into telemetry.

        Sets the ``env.critical_path_time`` / ``env.critical_path_ops`` /
        ``env.comm_bound_fraction`` gauges and emits one schema-versioned
        ``attribution`` event (the report CLI's ``--attribution`` section
        renders the latest one). The trainer calls this for each
        significantly-improved best placement.
        """
        tel = self._telemetry or get_telemetry()
        attr = self.attribute(actions)
        tel.gauge("env.critical_path_time").set(attr.critical_path_time)
        tel.gauge("env.critical_path_ops").set(
            sum(1 for s in attr.path if s.kind == "op")
        )
        tel.gauge("env.comm_bound_fraction").set(attr.comm_bound_fraction)
        tel.emit("attribution", **attr.event_payload(self.graph, iteration=iteration))
        return attr

    def close_pool(self) -> None:
        """Shut down the evaluation worker pool (it restarts lazily)."""
        self._batcher.shutdown()

    # ------------------------------------------------------------------
    # Run-state snapshots (core/runstate.py)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Cumulative stats + the LRU result cache, for crash-safe resume.

        The cache is part of the *simulated clock's* semantics: a cache
        hit charges only ``protocol.reinit_cost`` while a miss charges a
        full measurement, so resuming with an empty cache would change
        ``sim_clock`` — and therefore the resumed ``SearchHistory`` — in
        a way the uninterrupted run never saw. Entries are stored in LRU
        order (least-recent first) so eviction behaviour replays exactly.
        """
        if self._cache:
            keys = np.stack(
                [np.frombuffer(k, dtype=np.int64) for k in self._cache]
            )
            results = list(self._cache.values())
        else:
            keys = np.empty((0, self.num_ops), dtype=np.int64)
            results = []
        return {
            "stats": {
                "evaluations": int(self.stats.evaluations),
                "cache_hits": int(self.stats.cache_hits),
                "cache_evictions": int(self.stats.cache_evictions),
                "invalid": int(self.stats.invalid),
                "truncated": int(self.stats.truncated),
                "wall_clock": float(self.stats.wall_clock),
                "incremental_hits": int(self.stats.incremental_hits),
                "incremental_fallbacks": int(self.stats.incremental_fallbacks),
                "eval_pool_failures": int(self.stats.eval_pool_failures),
            },
            "incremental": self._incremental.state_dict(),
            "cache": {
                "keys": keys,
                "per_step_time": np.array([r.per_step_time for r in results], dtype=np.float64),
                "valid": np.array([r.valid for r in results], dtype=bool),
                "truncated": np.array([r.truncated for r in results], dtype=bool),
                "steps_run": np.array([r.steps_run for r in results], dtype=np.int64),
                "wall_clock": np.array([r.wall_clock for r in results], dtype=np.float64),
            },
        }

    def load_state_dict(self, state: dict) -> None:
        stats = state["stats"]
        self.stats = EnvStats(
            evaluations=int(stats["evaluations"]),
            cache_hits=int(stats["cache_hits"]),
            cache_evictions=int(stats["cache_evictions"]),
            invalid=int(stats["invalid"]),
            truncated=int(stats["truncated"]),
            wall_clock=float(stats["wall_clock"]),
            # Absent in snapshots written before the incremental fast path
            # existed — they resume with zeroed counters and no anchor.
            incremental_hits=int(stats.get("incremental_hits", 0)),
            incremental_fallbacks=int(stats.get("incremental_fallbacks", 0)),
            eval_pool_failures=int(stats.get("eval_pool_failures", 0)),
        )
        if "incremental" in state:
            self._incremental.load_state_dict(state["incremental"])
        cache = state["cache"]
        keys = np.asarray(cache["keys"], dtype=np.int64)
        if keys.size and keys.shape[1] != self.num_ops:
            raise ValueError(
                f"cached placements have {keys.shape[1]} ops, graph has {self.num_ops}"
            )
        self._cache = OrderedDict()
        for i in range(keys.shape[0]):
            self._cache[np.ascontiguousarray(keys[i]).tobytes()] = MeasurementResult(
                per_step_time=float(cache["per_step_time"][i]),
                valid=bool(cache["valid"][i]),
                truncated=bool(cache["truncated"][i]),
                steps_run=int(cache["steps_run"][i]),
                wall_clock=float(cache["wall_clock"][i]),
            )

    # ------------------------------------------------------------------
    # Cache (bounded LRU)
    # ------------------------------------------------------------------
    def _cache_get(self, key: bytes) -> Optional[MeasurementResult]:
        result = self._cache.get(key)
        if result is not None:
            self._cache.move_to_end(key)
        return result

    def _cache_put(self, key: bytes, result: MeasurementResult, tel: Telemetry) -> None:
        self._cache[key] = result
        self._cache.move_to_end(key)
        if self._cache_capacity and len(self._cache) > self._cache_capacity:
            self._cache.popitem(last=False)
            self.stats.cache_evictions += 1
            tel.counter("env.cache_evictions").inc()
        tel.gauge("env.cache_size").set(len(self._cache))

    # ------------------------------------------------------------------
    # Bookkeeping shared by evaluate() and evaluate_batch()
    # ------------------------------------------------------------------
    def _record_cache_hit(self, cached: MeasurementResult, tel: Telemetry) -> None:
        self.stats.cache_hits += 1
        self.stats.evaluations += 1
        # Re-measuring a known placement is quick on a real setup too
        # (no exploration value) — charge only the re-init.
        self.stats.wall_clock += self.protocol.reinit_cost
        tel.counter("env.evaluations").inc()
        tel.counter("env.cache_hits").inc()
        if tel.sample_events:
            tel.emit(
                "eval",
                makespan=float("nan"),
                per_step_time=float(cached.per_step_time),
                valid=bool(cached.valid),
                truncated=bool(cached.truncated),
                cached=True,
                wall_clock=float(self.protocol.reinit_cost),
                sim_clock=float(self.stats.wall_clock),
            )

    def _record_outcome(self, key: bytes, outcome: EvalOutcome, tel: Telemetry) -> None:
        result = outcome.result
        self._cache_put(key, result, tel)
        self.stats.evaluations += 1
        self.stats.wall_clock += result.wall_clock
        if not result.valid:
            self.stats.invalid += 1
        if result.truncated:
            self.stats.truncated += 1

        # Telemetry: makespan breakdown + OOM/cutoff accounting. The
        # schedule breakdown is a by-product of the measurement, so the
        # extra cost here is a few scalar observations per (uncached)
        # evaluation.
        tel.counter("env.evaluations").inc()
        tel.histogram("env.measure_wall_s").observe(result.wall_clock)
        if result.valid:
            tel.histogram("env.makespan").observe(outcome.makespan)
            tel.histogram("env.comm_time").observe(outcome.comm_time)
            tel.histogram("env.comm_bytes").observe(outcome.comm_bytes)
            tel.histogram("env.device_utilization").observe(outcome.utilization)
        else:
            tel.counter("env.oom").inc()
            tel.emit(
                "oom",
                sim_clock=float(self.stats.wall_clock),
                usage_gb=float(outcome.worst_usage / 2**30),
                capacity_gb=float(outcome.worst_capacity / 2**30),
            )
        if result.truncated:
            tel.counter("env.cutoff").inc()
            tel.emit(
                "cutoff",
                sim_clock=float(self.stats.wall_clock),
                per_step_time=float(result.per_step_time),
                steps_run=int(result.steps_run),
            )
        if outcome.incremental is not None:
            if outcome.incremental:
                self.stats.incremental_hits += 1
                tel.counter("env.incremental_hits").inc()
            else:
                self.stats.incremental_fallbacks += 1
                tel.counter("env.incremental_fallbacks").inc()
        # Keep the incremental baseline anchored to the best valid
        # placement seen so far (cheap: the build itself is lazy).
        if result.valid and np.isfinite(outcome.makespan):
            self._incremental.maybe_anchor(
                np.frombuffer(key, dtype=np.int64), outcome.makespan
            )
        if tel.sample_events:
            tel.emit(
                "eval",
                makespan=float(outcome.makespan),
                per_step_time=float(result.per_step_time),
                valid=bool(result.valid),
                truncated=bool(result.truncated),
                cached=False,
                wall_clock=float(result.wall_clock),
                sim_clock=float(self.stats.wall_clock),
                comm_time=float(outcome.comm_time),
                comm_bytes=float(outcome.comm_bytes),
                device_utilization=float(outcome.utilization),
            )

    # ------------------------------------------------------------------
    def anchor_incremental(self, actions: Sequence[int]) -> None:
        """Re-anchor the incremental baseline to ``actions``.

        Refinement loops (annealing's incumbent, serving's greedy decode)
        call this so the placements they evaluate next — single-op
        neighbours of the anchor — take the incremental fast path. The
        baseline itself is built lazily on the next evaluation. A no-op
        when the fast path is disabled or the graph is below ``min_ops``.
        """
        placement = self.resolve(actions)
        self._incremental.anchor(placement.devices)

    def evaluate(self, actions: Sequence[int]) -> MeasurementResult:
        """Measure a placement proposed by the agent (cached)."""
        tel = self._telemetry or get_telemetry()
        # Traced only inside an active trace (a service.handle or
        # trainer.iteration span on this thread); otherwise span() returns
        # the shared no-op and this costs two attribute checks.
        with span("env.evaluate", telemetry=tel):
            placement = self.resolve(actions)
            key = placement.devices.tobytes()
            cached = self._cache_get(key)
            if cached is not None:
                self._record_cache_hit(cached, tel)
                return cached
            inc = self._incremental if self._incremental.ready else None
            outcome = self._evaluator.compute(
                placement.devices, hash(placement), incremental=inc
            )
            self._record_outcome(key, outcome, tel)
            return outcome.result

    def _apply_compute(
        self, placement: Placement, pool_outcome: Optional[EvalOutcome]
    ) -> EvalOutcome:
        """Outcome for one uncached batch entry, exactly as a sequential
        ``evaluate`` would have produced it at this point in the apply
        replay: same incremental hit/fallback decision against the
        *current* anchor (which earlier entries may have moved). A pool
        outcome, when available, supplies the numbers — they are
        bit-identical to the local paths — and only the ``incremental``
        classification is filled in."""
        inc = self._incremental if self._incremental.ready else None
        if pool_outcome is None:
            return self._evaluator.compute(
                placement.devices, hash(placement), incremental=inc
            )
        if inc is None or not pool_outcome.result.valid:
            return pool_outcome
        return replace(pool_outcome, incremental=inc.would_resume(placement.devices))

    def evaluate_batch(self, actions_batch: Sequence[Sequence[int]]) -> List[MeasurementResult]:
        """Measure a batch of placements; equivalent to — but faster than —
        ``[self.evaluate(a) for a in actions_batch]``.

        Three phases:

        1. **Dedupe.** Resolve every placement and drop batch entries whose
           key is already cached or duplicates an earlier entry, *before*
           any scheduling work. Entries predicted to take the incremental
           fast path stay local too — resuming them here is cheaper than
           shipping them to a worker that would resimulate from scratch.
        2. **Compute.** Fan the remaining unique placements out across the
           worker pool (or the serial fallback) — pure compute, no shared
           state.
        3. **Apply.** Replay the batch in its original order against the
           cache/stats/telemetry, mirroring what a sequential loop of
           ``evaluate`` calls would have done step by step — including the
           per-entry incremental hit/fallback decision, which is always
           made here against the anchor state earlier entries left behind
           (the phase-1 prediction is only a routing hint).
        """
        tel = self._telemetry or get_telemetry()
        batch_span = span("env.evaluate_batch", telemetry=tel, n=len(actions_batch))
        with batch_span:
            placements = [self.resolve(a) for a in actions_batch]
            keys = [p.devices.tobytes() for p in placements]

            inc = self._incremental
            jobs: List[Tuple[np.ndarray, int]] = []
            job_index = {}
            seen = set()
            for placement, key in zip(placements, keys):
                if key in self._cache or key in seen:
                    continue
                seen.add(key)
                if inc.ready and inc.would_resume(placement.devices):
                    continue  # predicted hit: computed locally in the apply loop
                job_index[key] = len(jobs)
                jobs.append((placement.devices, hash(placement)))

            pool_failures_before = self._batcher.pool_failures
            # When this batch is traced, have the pool measure each job
            # where it runs and record the workers' sections here — pool
            # workers cannot emit into this process's event log.
            if batch_span.context is not None:
                outcomes, pool_workers, timings = self._batcher.compute_many(
                    jobs, timed=True
                )
                for start_unix, duration_s in timings:
                    record_span(
                        "env.eval_worker",
                        duration_s,
                        telemetry=tel,
                        parent=batch_span.context,
                        start_unix=start_unix,
                        pool=bool(pool_workers),
                    )
            else:
                outcomes, pool_workers = self._batcher.compute_many(jobs)
            failed = self._batcher.pool_failures - pool_failures_before
            if failed:
                # Worker death mid-batch (sim/batch.py): the batch was
                # finished serially with identical results; count it.
                self.stats.eval_pool_failures += failed
                tel.counter("env.eval_pool_failures").inc(failed)

            results: List[MeasurementResult] = []
            for placement, key in zip(placements, keys):
                cached = self._cache_get(key)
                if cached is not None:
                    self._record_cache_hit(cached, tel)
                    results.append(cached)
                    continue
                # Uncached: either predicted-incremental (computed here), pool
                # computed (classified here), or cached-then-evicted during
                # this very apply loop (recomputed, exactly as the sequential
                # path would have after the same eviction).
                index = job_index.get(key)
                pool_outcome = outcomes[index] if index is not None else None
                outcome = self._apply_compute(placement, pool_outcome)
                self._record_outcome(key, outcome, tel)
                results.append(outcome.result)

            n = len(placements)
            if n:
                unique = len(seen)
                tel.counter("env.batches").inc()
                tel.histogram("env.batch_size").observe(n)
                tel.histogram("env.batch_dedupe_rate").observe(1.0 - unique / n)
                tel.gauge("env.eval_pool_workers").set(pool_workers)
                if pool_workers and jobs:
                    # Fraction of pool slots busy across the batch's waves.
                    waves = -(-len(jobs) // pool_workers)  # ceil division
                    tel.histogram("env.batch_pool_utilization").observe(
                        len(jobs) / (waves * pool_workers)
                    )
            return results

    def final_run(self, actions: Sequence[int], steps: int = 1000) -> float:
        """Per-step runtime of the final placement over a long run."""
        placement = self.resolve(actions)
        _, oom = self.check_memory(placement)
        if oom.any():
            return float("nan")
        makespan = self.makespan(placement)
        return self.protocol.final_evaluation(makespan, hash(placement), steps)
