"""Per-device memory accounting and OOM detection.

Training memory on a device is approximated as::

    params * param_multiplier + activations * activation_multiplier

``param_multiplier = 4`` covers parameter + gradient + two Adam slots;
``activation_multiplier`` covers the stored forward activations plus
framework workspace. These multipliers are the calibration knobs that make
the paper's feasibility structure hold: Inception-V3 (batch 1) fits on one
12 GB GPU, GNMT-4 (batch 256) and BERT-Base (batch 24, seq 384) do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.placement import Placement


@dataclass
class MemoryReport:
    """Result of checking a placement against device capacities."""

    usage: np.ndarray  # bytes per device
    capacity: np.ndarray  # bytes per device
    oom_devices: List[int]

    @property
    def fits(self) -> bool:
        return not self.oom_devices

    def utilization(self) -> np.ndarray:
        return self.usage / self.capacity

    def describe(self, cluster: ClusterSpec) -> str:
        parts = []
        for i, dev in enumerate(cluster.devices):
            flag = " OOM" if i in self.oom_devices else ""
            parts.append(f"{dev.name}: {self.usage[i] / 2**30:.1f}/{self.capacity[i] / 2**30:.0f} GB{flag}")
        return ", ".join(parts)


@dataclass(frozen=True)
class MemoryModel:
    param_multiplier: float = 4.0
    activation_multiplier: float = 1.4

    def op_bytes(self, node) -> float:
        return (
            self.param_multiplier * node.param_bytes
            + self.activation_multiplier * node.activation_bytes
        )

    def op_bytes_vector(self, graph: CompGraph) -> np.ndarray:
        return np.array([self.op_bytes(n) for n in graph.nodes])

    def check(self, placement: Placement) -> MemoryReport:
        graph, cluster = placement.graph, placement.cluster
        usage = np.zeros(cluster.num_devices)
        per_op = self.op_bytes_vector(graph)
        np.add.at(usage, placement.devices, per_op)
        capacity = np.array([d.memory for d in cluster.devices])
        oom = [int(i) for i in np.flatnonzero(usage > capacity)]
        return MemoryReport(usage=usage, capacity=capacity, oom_devices=oom)
