"""Per-op execution and transfer cost model (roofline style).

The time of a training-step execution of one op on one device is::

    launch_overhead + max(compute_time, memory_time)

with ``compute_time = backward_factor * flops / (peak * efficiency)`` and
``memory_time`` derived from the bytes the op touches. ``backward_factor``
accounts for the backward pass (~2x forward) executed in the same step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph import CompGraph
from repro.sim.cluster import ClusterSpec
from repro.sim.device import DeviceSpec


@dataclass(frozen=True)
class CostModel:
    """Maps (op, device) -> seconds and (tensor, link) -> seconds."""

    backward_factor: float = 3.0  # fwd + bwd ≈ 3x fwd FLOPs
    memory_traffic_factor: float = 3.0  # activations are read/written ~3x per step

    def op_time(self, node, device: DeviceSpec) -> float:
        eff = device.efficiency_for(node.op_type)
        compute = self.backward_factor * node.flops / (device.peak_flops * eff)
        touched = self.memory_traffic_factor * node.activation_bytes + 2.0 * node.param_bytes
        memory = touched / device.mem_bandwidth
        return device.launch_overhead + max(compute, memory)

    def op_time_matrix(self, graph: CompGraph, cluster: ClusterSpec) -> np.ndarray:
        """Precomputed ``(num_ops, num_devices)`` time table.

        Vectorized over ops per device — same IEEE-754 operations in the
        same per-element order as :meth:`op_time`, so the table is
        bit-identical to the scalar loop it replaced. A subclass that
        overrides ``op_time`` gets the scalar loop (the closed form below
        would silently disagree with it).
        """
        n, d = graph.num_nodes, cluster.num_devices
        out = np.empty((n, d))
        if type(self).op_time is not CostModel.op_time:
            for j, dev in enumerate(cluster.devices):
                for i, node in enumerate(graph.nodes):
                    out[i, j] = self.op_time(node, dev)
            return out
        nodes = graph.nodes
        scaled_flops = self.backward_factor * np.array(
            [node.flops for node in nodes], dtype=np.float64
        )
        touched = np.array(
            [
                self.memory_traffic_factor * node.activation_bytes
                + 2.0 * node.param_bytes
                for node in nodes
            ],
            dtype=np.float64,
        )
        # Efficiency lookups dedupe through op-type ids: one dict probe
        # per distinct op type per device instead of one per op.
        type_index: dict = {}
        type_ids = np.array(
            [type_index.setdefault(node.op_type, len(type_index)) for node in nodes],
            dtype=np.intp,
        )
        for j, dev in enumerate(cluster.devices):
            eff = np.array(
                [dev.efficiency_for(t) for t in type_index], dtype=np.float64
            )[type_ids]
            compute = scaled_flops / (dev.peak_flops * eff)
            memory = touched / dev.mem_bandwidth
            out[:, j] = dev.launch_overhead + np.maximum(compute, memory)
        return out

    def transfer_time(
        self, nbytes: float, cluster: ClusterSpec, src: int = None, dst: int = None
    ) -> float:
        # Gradient of the tensor flows back across the same edge during the
        # backward pass, so a cut edge pays the transfer twice per step.
        bw = (
            cluster.bandwidth_between(src, dst)
            if src is not None and dst is not None
            else cluster.link_bandwidth
        )
        return cluster.link_latency + 2.0 * nbytes / bw
