"""Deterministic random-number management.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``.  All randomness flows through
:func:`new_rng`/:func:`spawn_rng` so a single top-level seed makes an entire
experiment reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``Generator``.

    ``None`` gives fresh OS entropy, an ``int`` gives a seeded generator and
    an existing ``Generator`` is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def spawn_seeds(
    root_seed: int, n: int, key: "tuple[int, ...]" = ()
) -> "list[np.random.SeedSequence]":
    """``n`` independent :class:`numpy.random.SeedSequence` children of
    ``root_seed`` — the only sanctioned way to seed parallel workers.

    Ad-hoc ``seed + i`` arithmetic hands overlapping entropy to sibling
    generators (``SeedSequence(7)`` and ``SeedSequence(8)`` are fine, but
    arithmetic invites collisions between *derived* seeds across
    components, e.g. worker 1 of seed 7 vs worker 0 of seed 8). Spawning
    from one ``SeedSequence`` guarantees statistically independent
    streams for any ``(root_seed, n)``.

    ``key`` namespaces the children: a restarted distributed worker gets
    a *fresh* stream via ``key=(generation,)`` instead of replaying the
    one its dead predecessor half-consumed. Pass each child to
    ``numpy.random.default_rng`` (or :func:`new_rng`).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    root = np.random.SeedSequence(root_seed, spawn_key=tuple(int(k) for k in key))
    return root.spawn(n)


def hash_seed(*parts: object) -> int:
    """Stable 63-bit seed derived from arbitrary hashable parts.

    Used to make simulated measurement noise a deterministic function of the
    placement (same placement -> same noisy runtime within a protocol), which
    keeps experiments reproducible without a global mutable RNG.
    """
    import hashlib

    h = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=8)
    return int.from_bytes(h.digest(), "little") & ((1 << 63) - 1)


class RngMixin:
    """Mixin giving a class a lazily constructed private generator."""

    _rng: Optional[np.random.Generator] = None

    def init_rng(self, seed: SeedLike = None) -> None:
        self._rng = new_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = new_rng(None)
        return self._rng
