"""Parameter (de)serialization for :class:`repro.nn.Module` trees.

Parameters are stored as flat ``name -> ndarray`` dicts in ``.npz`` files so
that checkpoints are portable and dependency-free. Writes are atomic
(temp file + ``os.replace``), so a crash mid-save can never leave a
truncated archive where a loadable checkpoint used to be — the policy
registry in ``repro.serve`` hot-reloads checkpoint directories and relies
on every ``.npz`` it sees being complete.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict

import numpy as np


def save_state_dict(path: str, state: Dict[str, np.ndarray]) -> None:
    """Atomically write a flat state dict to ``path`` (``.npz`` appended
    if missing)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    final = path if path.endswith(".npz") else path + ".npz"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **state)
        os.replace(tmp, final)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a flat state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        return {k: data[k] for k in data.files}
