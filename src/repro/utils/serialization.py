"""Parameter (de)serialization for :class:`repro.nn.Module` trees.

Parameters are stored as flat ``name -> ndarray`` dicts in ``.npz`` files so
that checkpoints are portable and dependency-free.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np


def save_state_dict(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a flat state dict to ``path`` (``.npz`` appended if missing)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path if path.endswith(".npz") else path + ".npz", **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a flat state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as data:
        return {k: data[k] for k in data.files}
