"""Lightweight logging configuration for the library.

We piggyback on :mod:`logging` but provide a single entry point so that the
CLI runner and library users configure output consistently.
"""

from __future__ import annotations

import logging
import sys

_CONFIGURED = False


def get_logger(name: str = "repro") -> logging.Logger:
    """Return a logger under the ``repro`` namespace, configuring root once."""
    global _CONFIGURED
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root = logging.getLogger("repro")
        if not root.handlers:
            root.addHandler(handler)
        root.setLevel(logging.INFO)
        _CONFIGURED = True
    return logging.getLogger(name)


def set_verbosity(level: int) -> None:
    """Set the library-wide log level (e.g. ``logging.DEBUG``)."""
    get_logger().setLevel(level)
