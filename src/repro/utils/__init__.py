"""Shared utilities: RNG management, logging, timing, serialization."""

from repro.utils.rng import RngMixin, new_rng, spawn_rng, spawn_seeds
from repro.utils.timing import Timer
from repro.utils.logging import get_logger

__all__ = ["RngMixin", "new_rng", "spawn_rng", "spawn_seeds", "Timer", "get_logger"]
