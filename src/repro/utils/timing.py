"""Wall-clock timing helpers used by trainers and the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Timer:
    """Accumulating named stopwatch.

    >>> t = Timer()
    >>> with t.section("update"):
    ...     pass
    >>> t.total("update") >= 0.0
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)

    def section(self, name: str) -> "_Section":
        return _Section(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    def total(self, name: str) -> float:
        return self.totals.get(name, 0.0)

    def grand_total(self) -> float:
        return sum(self.totals.values())


class _Section:
    def __init__(self, timer: Timer, name: str):
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Section":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._timer.add(self._name, time.perf_counter() - self._start)
