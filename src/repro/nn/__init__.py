"""A from-scratch reverse-mode autodiff framework on NumPy.

Implements exactly the neural building blocks the Mars agent needs: dense,
LSTM, additive attention, Transformer-XL, GCN support (via sparse matmul in
:mod:`repro.nn.functional`), Adam, and gradient clipping.
"""

from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    stack,
    where,
    maximum,
    minimum,
    no_grad,
    is_grad_enabled,
)
from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear, MLP
from repro.nn.activations import PReLU, apply_activation
from repro.nn.rnn import LSTMCell, LSTM, BiLSTM
from repro.nn.attention import BahdanauAttention
from repro.nn.embedding import Embedding
from repro.nn.norm import LayerNorm
from repro.nn.transformer_xl import TransformerXL, TransformerXLLayer
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn import functional

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "PReLU",
    "apply_activation",
    "LSTMCell",
    "LSTM",
    "BiLSTM",
    "BahdanauAttention",
    "Embedding",
    "LayerNorm",
    "TransformerXL",
    "TransformerXLLayer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "functional",
]
