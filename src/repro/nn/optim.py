"""Optimizers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so the global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (as reported by torch's helper).
    The paper uses a 1.0-norm clip with Adam (Section 4.2).
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Internal moments/counters needed to resume training exactly.

        Hyper-parameters (lr, betas, ...) are *not* included — they come
        from the config the optimizer is rebuilt with.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(f"{type(self).__name__} has no state to load: {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum and self._velocity is None:
            self._velocity = [np.zeros_like(p.data) for p in self.params]
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self) -> dict:
        if self._velocity is None:
            return {}
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        velocity = state.get("velocity")
        if velocity is None:
            self._velocity = None
            return
        if len(velocity) != len(self.params):
            raise ValueError(
                f"velocity count {len(velocity)} != parameter count {len(self.params)}"
            )
        self._velocity = [np.asarray(v).copy() for v in velocity]


class Adam(Optimizer):
    """Adam (Kingma & Ba). Paper setting: lr=3e-4."""

    def __init__(
        self,
        params,
        lr: float = 3e-4,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "t": int(self.t),
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        m, v = state["m"], state["v"]
        if len(m) != len(self.params) or len(v) != len(self.params):
            raise ValueError(
                f"moment count ({len(m)}, {len(v)}) != parameter count {len(self.params)}"
            )
        for i, p in enumerate(self.params):
            if np.shape(m[i]) != p.data.shape or np.shape(v[i]) != p.data.shape:
                raise ValueError(f"moment shape mismatch at parameter {i}")
        self.t = int(state["t"])
        self._m = [np.asarray(x).copy() for x in m]
        self._v = [np.asarray(x).copy() for x in v]
