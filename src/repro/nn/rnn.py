"""LSTM layers (time-major), the workhorse of the seq2seq placers.

Sequences are time-major ``(T, B, D)`` so each step is one fused matmul over
the batch — the loop over time is irreducible but everything inside it is a
vectorized NumPy kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.rng import new_rng

State = Tuple[Tensor, Tensor]


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate order inside the fused matrices is ``[input, forget, cell, output]``.
    The forget-gate bias is initialized to 1.0 (standard trick for gradient
    flow on long sequences).
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.xavier_uniform(rng, input_size, 4 * hidden_size))
        self.w_hh = Parameter(init.orthogonal(rng, hidden_size, 4 * hidden_size))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def init_state(self, batch: int) -> State:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros), Tensor(zeros)

    def forward(self, x: Tensor, state: Optional[State] = None) -> State:
        if state is None:
            state = self.init_state(x.shape[0])
        return self.step(x @ self.w_ih + self.bias, state)

    def step(self, gates_x: Tensor, state: State) -> State:
        """Advance one step given the precomputed input projection.

        ``gates_x = x @ w_ih + bias`` can be computed for a whole sequence in
        one fused matmul (see :class:`LSTM`), which removes most of the
        per-timestep Python/NumPy dispatch overhead.
        """
        h, c = state
        gates = gates_x + h @ self.w_hh
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new


class LSTM(Module):
    """Unidirectional LSTM over a time-major sequence ``(T, B, D)``."""

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, state: Optional[State] = None) -> Tuple[Tensor, State]:
        """Return ``(outputs (T,B,H), final_state)``."""
        T = x.shape[0]
        if state is None:
            state = self.cell.init_state(x.shape[1])
        # One fused matmul for the input projections of every time step.
        gates_x = x @ self.cell.w_ih + self.cell.bias
        outputs = []
        for t in range(T):
            state = self.cell.step(gates_x[t], state)
            outputs.append(state[0])
        return stack(outputs, axis=0), state


class BiLSTM(Module):
    """Bidirectional LSTM; output is the concatenation of both directions.

    The final state returned is the *forward* direction's final state
    projected together with the backward direction's, so it can seed a
    unidirectional decoder of size ``hidden_size``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__()
        if hidden_size % 2 != 0:
            raise ValueError("BiLSTM hidden_size must be even (split across directions)")
        half = hidden_size // 2
        rng = new_rng(rng)
        self.fwd = LSTM(input_size, half, rng=rng)
        self.bwd = LSTM(input_size, half, rng=rng)
        self.hidden_size = hidden_size

    def forward(
        self,
        x: Tensor,
        state: Optional[Tuple[State, State]] = None,
    ) -> Tuple[Tensor, Tuple[State, State]]:
        """Return ``(outputs (T,B,H), (fwd_state, bwd_state))``."""
        fwd_state = bwd_state = None
        if state is not None:
            fwd_state, bwd_state = state
        out_f, fwd_final = self.fwd(x, fwd_state)
        # Reverse time for the backward pass, then un-reverse its outputs.
        rev = x[np.arange(x.shape[0] - 1, -1, -1)]
        out_b_rev, bwd_final = self.bwd(rev, bwd_state)
        out_b = out_b_rev[np.arange(out_b_rev.shape[0] - 1, -1, -1)]
        outputs = concat([out_f, out_b], axis=2)
        return outputs, (fwd_final, bwd_final)

    @staticmethod
    def merge_state(states: Tuple[State, State]) -> State:
        """Concatenate fwd/bwd final states into a full-width decoder state."""
        (hf, cf), (hb, cb) = states
        return concat([hf, hb], axis=1), concat([cf, cb], axis=1)
