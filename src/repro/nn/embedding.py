"""Embedding table (index lookup with gradient scatter)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class Embedding(Module):
    """Lookup table ``(num_embeddings, dim)``; input is an integer array."""

    def __init__(self, num_embeddings: int, dim: int, rng=None, scale: float = 0.1):
        super().__init__()
        rng = new_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.uniform(-scale, scale, size=(num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]
