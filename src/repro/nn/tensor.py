"""Reverse-mode automatic differentiation over NumPy arrays.

This is the computational core of the agent: a tape-based autodiff engine in
the style of micrograd/PyTorch, but vectorized — every node holds a full
``ndarray`` and gradients are propagated with NumPy kernels, so the Python
interpreter overhead is amortized over large array operations (see the
"vectorizing for loops" guidance in the scientific-Python optimization
notes).

Only the features required by the Mars agent are implemented, but they are
implemented completely: broadcasting-aware binary ops, matmul (2-D and
batched), reductions with axis/keepdims, indexing/slicing/gather, shape
manipulation, and the nonlinearities used by the encoder and placers.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor"]

_DEFAULT_DTYPE = np.float64

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling tape construction.

    Inside the context every op produces a detached tensor — used for
    action sampling in RL rollouts, where gradients are recomputed later by
    teacher-forcing the stored actions.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autodiff tape.

    Attributes
    ----------
    data:
        The value, always an ``ndarray`` of float64.
    grad:
        Accumulated gradient, allocated lazily during :meth:`backward`.
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(_parents)
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying value (a view, do not mutate in place)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autodiff machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=_DEFAULT_DTYPE, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the tape."""
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=_DEFAULT_DTYPE)
        if grad.shape != self.shape:
            raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        order = _toposort(self)
        self._accumulate(grad)
        for node in order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Construction of result nodes
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        live = tuple(p for p in parents if p.requires_grad or p._parents)
        return Tensor(data, requires_grad=True, _parents=live, _backward=backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.multiply.outer(g, other.data) if g.ndim else g * other.data
                else:
                    ga = g @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(ga), self.shape))
            if other.requires_grad:
                if other.data.ndim == 1:
                    # out = x @ v contracts the last axis of x; sum the
                    # gradient over every leading axis.
                    gb = (self.data * np.expand_dims(g, -1)).sum(
                        axis=tuple(range(self.data.ndim - 1))
                    )
                elif self.data.ndim == 1:
                    gb = np.multiply.outer(self.data, g)
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(_unbroadcast(np.asarray(gb), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        out_data = np.empty_like(self.data)
        pos = self.data >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-self.data[pos]))
        ex = np.exp(self.data[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                grad = np.expand_dims(grad, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(grad, self.shape))

        return Tensor._make(np.asarray(out_data), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            # Split gradient evenly over ties for symmetry.
            counts = mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                grad = np.expand_dims(grad, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)

        return Tensor._make(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._make(np.asarray(out_data), (self,), backward)

    def gather_rows(self, indices: np.ndarray) -> "Tensor":
        """Select rows (first axis) by integer index — embedding lookup."""
        return self[np.asarray(indices, dtype=np.intp)]

    def flatten(self) -> "Tensor":
        return self.reshape(self.size)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        """Broadcast to ``shape``; the gradient sums over broadcast axes."""
        shape = tuple(shape)
        out_data = np.broadcast_to(self.data, shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, in_shape))

        return Tensor._make(np.ascontiguousarray(out_data), (self,), backward)

    # Comparison helpers produce plain arrays (no gradients flow).
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _raw(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _raw(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _raw(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _raw(other)


def _raw(x: ArrayLike) -> np.ndarray:
    return x.data if isinstance(x, Tensor) else np.asarray(x)


def as_tensor(x: ArrayLike) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def _toposort(root: Tensor) -> List[Tensor]:
    """Tensors reachable from ``root`` in reverse topological order."""
    order: List[Tensor] = []
    visited = set()
    stack: List[Tuple[Tensor, int]] = [(root, 0)]
    while stack:
        node, child_idx = stack.pop()
        if child_idx == 0:
            if id(node) in visited:
                continue
            visited.add(id(node))
        if child_idx < len(node._parents):
            stack.append((node, child_idx + 1))
            child = node._parents[child_idx]
            if id(child) not in visited:
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()
    return order


# ----------------------------------------------------------------------
# Free functions over tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        slices = np.moveaxis(g, axis, 0)
        for t, gi in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(gi)

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(g * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(g * (~cond), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum with subgradient split evenly at ties."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def backward(g: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(g * (a_wins + 0.5 * tie), a.shape))
        if b.requires_grad:
            b_wins = (~a_wins) & (~tie)
            b._accumulate(_unbroadcast(g * (b_wins + 0.5 * tie), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum with subgradient split evenly at ties."""
    a, b = as_tensor(a), as_tensor(b)
    return -maximum(-a, -b)
