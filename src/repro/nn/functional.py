"""Composite differentiable operations built on :class:`repro.nn.Tensor`.

These are the numerically careful pieces: softmax family via the
log-sum-exp trick, sparse-dense matmul for GCN layers, dropout, and the
losses used by DGI pre-training and PPO.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.nn.tensor import Tensor, as_tensor


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    m = Tensor(x.data.max(axis=axis, keepdims=True))  # constant shift
    shifted = x - m
    out = shifted.exp().sum(axis=axis, keepdims=True).log() + m
    if not keepdims:
        out = Tensor.reshape(out, _squeeze_shape(out.shape, axis))
    return out


def _squeeze_shape(shape, axis):
    axis = axis % len(shape)
    return tuple(s for i, s in enumerate(shape) if i != axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (stable via max-shift)."""
    m = Tensor(x.data.max(axis=axis, keepdims=True))
    e = (x - m).exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis`` (stable via log-sum-exp)."""
    return x - logsumexp(x, axis=axis, keepdims=True)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is false or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def spmm(adj: sp.spmatrix, x: Tensor) -> Tensor:
    """Sparse ``adj`` (constant) times dense ``x`` with autodiff on ``x``.

    Used by GCN layers where the normalized adjacency is a fixed CSR matrix;
    the backward pass is ``adjᵀ @ grad``.
    """
    adj = adj.tocsr()
    out_data = adj @ x.data
    adj_t = adj.T.tocsr()

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(adj_t @ g)

    return Tensor._make(np.asarray(out_data), (x,), backward)


def bce_with_logits(logits: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean binary cross-entropy on raw scores.

    Stable formulation ``max(z,0) - z*y + log(1 + exp(-|z|))`` — this is the
    Jensen-Shannon style objective used by Deep Graph Infomax (Eq. 6).
    """
    y = targets.data if isinstance(targets, Tensor) else np.asarray(targets, dtype=float)
    z = logits
    relu_z = z.relu()
    abs_z = z.abs()
    loss = relu_z - z * Tensor(y) + ((-abs_z).exp() + 1.0).log()
    return loss.mean()


def gather_log_probs(log_probs: Tensor, actions: np.ndarray) -> Tensor:
    """Pick ``log_probs[..., actions]`` along the last axis.

    ``log_probs`` has shape ``(..., n_actions)`` and ``actions`` the matching
    leading shape; the result drops the action axis.
    """
    actions = np.asarray(actions, dtype=np.intp)
    if actions.shape != log_probs.shape[:-1]:
        raise ValueError(
            f"actions shape {actions.shape} incompatible with log_probs "
            f"shape {log_probs.shape}"
        )
    idx = tuple(np.indices(actions.shape)) + (actions,)
    return log_probs[idx]


def categorical_entropy(log_probs: Tensor, axis: int = -1) -> Tensor:
    """Entropy of categorical distributions given log-probabilities."""
    p = log_probs.exp()
    return -(p * log_probs).sum(axis=axis)


def mse(pred: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error against a constant target."""
    t = as_tensor(target).detach()
    diff = pred - t
    return (diff * diff).mean()
