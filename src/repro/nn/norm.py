"""Layer normalization (used by the Transformer-XL placer)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LayerNorm(Module):
    """Normalize over the last axis with learnable affine parameters."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        norm = centered / (var + self.eps).sqrt()
        return norm * self.gamma + self.beta
