"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def uniform(rng: np.random.Generator, shape, scale: float = 0.1) -> np.ndarray:
    """Uniform in ``[-scale, scale]`` — the classic seq2seq LSTM init."""
    return rng.uniform(-scale, scale, size=shape)


def orthogonal(rng: np.random.Generator, rows: int, cols: int, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for recurrent kernels)."""
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)
