"""Transformer-XL style layers for the encoder-placer baseline (GDP [33]).

The defining features of Transformer-XL (Dai et al., 2019) are (1)
segment-level recurrence — each segment attends over a cached memory of the
previous segments' hidden states — and (2) relative positional information.
We implement both. For the positional term we use a learnable relative
position *bias* added to the attention logits (the T5 parameterization)
instead of Dai et al.'s factored r/u/v form; it preserves the
relative-position inductive bias with fewer moving parts. This substitution
is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.norm import LayerNorm
from repro.nn.tensor import Tensor, concat
from repro.nn.functional import softmax
from repro.utils.rng import new_rng


class RelativeMultiHeadAttention(Module):
    """Multi-head attention over ``[memory; segment]`` with relative bias."""

    def __init__(self, dim: int, n_heads: int, max_rel_dist: int = 512, rng=None):
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError("dim must be divisible by n_heads")
        rng = new_rng(rng)
        self.dim = dim
        self.n_heads = n_heads
        self.d_head = dim // n_heads
        self.max_rel_dist = max_rel_dist
        self.w_q = Linear(dim, dim, bias=False, rng=rng)
        self.w_k = Linear(dim, dim, bias=False, rng=rng)
        self.w_v = Linear(dim, dim, bias=False, rng=rng)
        self.w_o = Linear(dim, dim, bias=False, rng=rng)
        # One learnable bias per (relative distance, head). Index 0 encodes
        # distance -max_rel_dist, the last index distance +max_rel_dist.
        self.rel_bias = Parameter(
            rng.uniform(-0.02, 0.02, size=(2 * max_rel_dist + 1, n_heads))
        )

    def _heads(self, x: Tensor) -> Tensor:
        """(L, B, D) -> (B, H, L, d_head)"""
        L, B, _ = x.shape
        return x.reshape(L, B, self.n_heads, self.d_head).transpose(1, 2, 0, 3)

    def forward(self, x: Tensor, memory: Optional[np.ndarray] = None) -> Tensor:
        """Attend ``x (T,B,D)`` over ``concat(memory, x)``; causal over x."""
        T, B, _ = x.shape
        if memory is not None and memory.shape[0] > 0:
            mem = Tensor(memory)  # detached cache, no gradient into the past
            full = concat([mem, x], axis=0)
            M = memory.shape[0]
        else:
            full = x
            M = 0
        K = M + T

        q = self._heads(self.w_q(x))  # (B, H, T, dh)
        k = self._heads(self.w_k(full))  # (B, H, K, dh)
        v = self._heads(self.w_v(full))  # (B, H, K, dh)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.d_head))

        # Relative position bias: query position t (absolute M+t) attends key
        # position j; distance = (M + t) - j, clipped to the learned range.
        t_pos = np.arange(T)[:, None] + M
        j_pos = np.arange(K)[None, :]
        dist = np.clip(t_pos - j_pos, -self.max_rel_dist, self.max_rel_dist)
        bias = self.rel_bias[dist + self.max_rel_dist]  # (T, K, H)
        scores = scores + bias.transpose(2, 0, 1)  # (H,T,K) broadcasts over B

        # Causal mask within the current segment (memory is fully visible).
        causal = np.zeros((T, K))
        future = (j_pos - M) > np.arange(T)[:, None]
        causal[future] = -1e9
        scores = scores + Tensor(causal)

        weights = softmax(scores, axis=-1)
        ctx = weights @ v  # (B, H, T, dh)
        out = ctx.transpose(2, 0, 1, 3).reshape(T, B, self.dim)
        return self.w_o(out)


class TransformerXLLayer(Module):
    """Post-LN transformer block with segment-recurrent attention."""

    def __init__(self, dim: int, n_heads: int, ff_dim: int, max_rel_dist: int = 512, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.attn = RelativeMultiHeadAttention(dim, n_heads, max_rel_dist, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.ff1 = Linear(dim, ff_dim, rng=rng)
        self.ff2 = Linear(ff_dim, dim, rng=rng)
        self.norm2 = LayerNorm(dim)

    def forward(self, x: Tensor, memory: Optional[np.ndarray] = None) -> Tensor:
        h = self.norm1(x + self.attn(x, memory))
        h = self.norm2(h + self.ff2(self.ff1(h).relu()))
        return h


class TransformerXL(Module):
    """A stack of Transformer-XL layers with per-layer segment memory.

    Call :meth:`reset_memory` at the start of each op sequence, then feed
    segments in order; each layer caches (detached) hidden states of the
    previous ``mem_len`` positions.
    """

    def __init__(
        self,
        dim: int,
        n_layers: int = 2,
        n_heads: int = 4,
        ff_dim: Optional[int] = None,
        mem_len: int = 128,
        max_rel_dist: int = 512,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        ff_dim = ff_dim or 2 * dim
        self.dim = dim
        self.mem_len = mem_len
        self.layers: List[TransformerXLLayer] = []
        for i in range(n_layers):
            layer = TransformerXLLayer(dim, n_heads, ff_dim, max_rel_dist, rng=rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)
        self._memory: List[Optional[np.ndarray]] = [None] * n_layers

    def reset_memory(self) -> None:
        self._memory = [None] * len(self.layers)

    def forward(self, x: Tensor) -> Tensor:
        """Process one segment ``(T, B, D)``, updating the memory cache."""
        h = x
        new_memory: List[np.ndarray] = []
        for layer, mem in zip(self.layers, self._memory):
            inputs = h.data
            h = layer(h, mem)
            cache = inputs if mem is None or mem.shape[0] == 0 else np.concatenate([mem, inputs], axis=0)
            new_memory.append(cache[-self.mem_len :])
        self._memory = new_memory
        return h
