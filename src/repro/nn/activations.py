"""Activation functions, including the learnable PReLU used by the encoder."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class PReLU(Module):
    """Parametric ReLU (He et al., 2015): ``max(0, x) + a * min(0, x)``.

    ``a`` is a learnable per-module scalar, initialized to 0.25 as in the
    original paper. Mars uses PReLU after each GCN layer (Eq. 1).
    """

    def __init__(self, init_slope: float = 0.25):
        super().__init__()
        self.slope = Parameter(np.asarray(init_slope))

    def forward(self, x: Tensor) -> Tensor:
        pos = x.relu()
        neg = (-((-x).relu())) * self.slope
        return pos + neg


def apply_activation(x: Tensor, name: str) -> Tensor:
    """Apply a (non-learnable) activation by name."""
    if name == "relu":
        return x.relu()
    if name == "tanh":
        return x.tanh()
    if name == "sigmoid":
        return x.sigmoid()
    if name == "identity":
        return x
    raise ValueError(f"unknown activation {name!r}")
