"""Dense layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import new_rng


class Linear(Module):
    """Affine map ``y = x W + b``.

    Accepts inputs of shape ``(..., in_features)``.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.has_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.has_bias:
            out = out + self.bias
        return out


class MLP(Module):
    """A stack of Linear layers with a configurable activation in between."""

    def __init__(self, sizes, activation: str = "relu", bias: bool = True, rng=None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and output size")
        rng = new_rng(rng)
        self.sizes = tuple(sizes)
        self.activation = activation
        self.layers = []
        for i, (a, b) in enumerate(zip(sizes[:-1], sizes[1:])):
            layer = Linear(a, b, bias=bias, rng=rng)
            self.register_module(f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn.activations import apply_activation

        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = apply_activation(x, self.activation)
        return x
