"""Module/Parameter abstractions, mirroring the familiar torch.nn API.

A :class:`Module` owns :class:`Parameter` leaves and child modules, exposes
``parameters()``/``named_parameters()`` for optimizers and
``state_dict``/``load_state_dict`` for checkpointing.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components."""

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------
    # Training state
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if name in state:
                arr = np.asarray(state[name], dtype=p.data.dtype)
                if arr.shape != p.data.shape:
                    raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
                p.data = arr.copy()

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
