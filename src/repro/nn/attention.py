"""Context-based input attention (Bahdanau et al., 2015).

This is the attention mechanism named in Section 4.2 of the paper: the
decoder state queries the encoder memory, producing a context vector that is
concatenated with the decoder input.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.nn.functional import softmax
from repro.utils.rng import new_rng


class BahdanauAttention(Module):
    """Additive attention: ``score = vᵀ tanh(W_m mem + W_q query)``."""

    def __init__(self, memory_size: int, query_size: int, attn_size: int, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.w_memory = Linear(memory_size, attn_size, bias=False, rng=rng)
        self.w_query = Linear(query_size, attn_size, bias=True, rng=rng)
        self.v = Parameter(rng.uniform(-0.1, 0.1, size=attn_size))

    def forward(self, memory: Tensor, query: Tensor) -> Tensor:
        """Attend over ``memory (T,B,M)`` with ``query (B,Q)`` -> ``(B,M)``."""
        keys = self.w_memory(memory)  # (T, B, A)
        q = self.w_query(query)  # (B, A)
        scores = ((keys + q).tanh() @ self.v)  # (T, B)
        weights = softmax(scores, axis=0)  # over time
        # context_b = sum_t weights[t,b] * memory[t,b,:]
        context = (memory * weights.reshape(weights.shape[0], weights.shape[1], 1)).sum(axis=0)
        return context
