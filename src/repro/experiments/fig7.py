"""Fig. 7 — per-step runtime of placements found during training.

Two panels: (a) Inception-V3 and (b) GNMT-4; three RL approaches each
(Mars, Grouper-Placer, Encoder-Placer). Each point averages the valid
placements sampled from one policy; placements slower than 20 s are
discarded, as in the paper's plotting procedure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.common import ExperimentContext, WORKLOAD_SPECS, format_table

FIG7_WORKLOADS = ("inception_v3", "gnmt4")
FIG7_AGENTS = [
    ("mars", "Mars"),
    ("grouper_placer", "Grouper-Placer"),
    ("encoder_placer", "Encoder-Placer"),
]

MAX_PLOTTED_RUNTIME = 20.0

Series = Tuple[List[int], List[float]]


def run_fig7(
    ctx: ExperimentContext,
    workloads: Sequence[str] = FIG7_WORKLOADS,
    seed: int = 0,
) -> Dict[str, Dict[str, Series]]:
    """Returns ``{workload: {agent_title: (sample_idx, runtime)}}``."""
    curves: Dict[str, Dict[str, Series]] = {}
    for wl in workloads:
        curves[wl] = {}
        for kind, title in FIG7_AGENTS:
            summary = ctx.run(wl, kind, seed=seed)
            xs = summary.curve_samples
            ys = [min(y, MAX_PLOTTED_RUNTIME) for y in summary.curve_runtimes]
            curves[wl][title] = (xs, ys)
    return curves


def render_fig7(curves: Dict[str, Dict[str, Series]], points: int = 12) -> str:
    """Render the curves as a downsampled text table (one per panel)."""
    blocks = []
    for wl, agents in curves.items():
        max_samples = max((xs[-1] for xs, _ in agents.values() if xs), default=0)
        grid = np.linspace(0, max_samples, points)[1:]
        headers = ["steps"] + list(agents)
        rows = []
        for g in grid:
            row = [str(int(g))]
            for title, (xs, ys) in agents.items():
                if not xs:
                    row.append("-")
                    continue
                idx = int(np.searchsorted(xs, g, side="right")) - 1
                row.append(f"{ys[max(idx, 0)]:.3f}" if idx >= 0 else "-")
            rows.append(row)
        blocks.append(
            format_table(
                headers,
                rows,
                title=f"Fig 7 ({WORKLOAD_SPECS[wl].title}): mean per-step runtime (s) of sampled placements",
            )
        )
    return "\n\n".join(blocks)


def convergence_summary(curves: Dict[str, Dict[str, Series]]) -> str:
    """The paper's headline reading of Fig. 7: who converges first."""
    lines = []
    for wl, agents in curves.items():
        for title, (xs, ys) in agents.items():
            if not ys:
                continue
            best = min(ys)
            threshold = best * 1.05
            conv = next(x for x, y in zip(xs, ys) if y <= threshold)
            lines.append(
                f"{WORKLOAD_SPECS[wl].title:14s} {title:16s} reaches within 5% of its best ({best:.3f}s) at step {conv}"
            )
    return "\n".join(lines)


def main(ctx: ExperimentContext = None) -> str:
    ctx = ctx or ExperimentContext()
    curves = run_fig7(ctx)
    text = render_fig7(curves) + "\n\n" + convergence_summary(curves)
    print(text)
    return text


if __name__ == "__main__":
    main()
