"""Shared experiment infrastructure.

Defines the evaluation workloads (scaled to run on a CPU-only laptop while
preserving the paper's feasibility structure — see DESIGN.md), a results
cache so figures/tables that share runs don't retrain agents, and plain
text table formatting.

The machine model per workload: the paper runs every workload on the same
4x P100 (12 GB) box. Our workload generators shrink the *repeated*
structure of big models (GNMT's unrolled length) to keep RL runs fast; to
preserve the original memory-pressure ratio (can it fit on one GPU? on
two?) the GNMT experiment scales GPU memory by the same factor. BERT and
Inception run at full structural scale against the default 12 GB machine.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MarsConfig, fast_profile, with_seed
from repro.core.search import OptimizationResult, optimize_placement
from repro.graph import CompGraph, FeatureExtractor
from repro.sim import ClusterSpec, MeasurementProtocol, PlacementEnv
from repro.telemetry import start_run, use_telemetry
from repro.utils.logging import get_logger
from repro.workloads import get_workload

logger = get_logger("repro.experiments")


class RunInterrupted(RuntimeError):
    """An agent run stopped on SIGTERM/SIGINT after snapshotting.

    Carries the partial :class:`RunSummary` (which is deliberately *not*
    cached — a resumed invocation must re-enter the same run and finish
    it, not read a half-length curve from the cache).
    """

    def __init__(self, summary: "RunSummary"):
        super().__init__(
            f"run {summary.workload}/{summary.agent_kind} interrupted by "
            f"signal after {summary.iterations} requested iterations; "
            "state snapshotted — rerun with --resume to continue"
        )
        self.summary = summary


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload and the machine/budgets it is evaluated on."""

    key: str
    title: str
    workload: str
    workload_kwargs: Dict = field(default_factory=dict)
    gpu_memory_gb: float = 12.0
    num_gpus: int = 4
    bad_step_threshold: Optional[float] = None
    iterations: int = 40  # max RL policy iterations in the fast profile
    # Stop when no >=1% improvement for this many samples — training time
    # (Fig. 8) then reflects convergence speed, as on the paper's testbed.
    # Generous by default: quality (Table 2) takes precedence over an early
    # exit.
    patience_samples: Optional[int] = 400

    def build_graph(self) -> CompGraph:
        return get_workload(self.workload, **self.workload_kwargs)

    def build_cluster(self) -> ClusterSpec:
        return ClusterSpec.default(num_gpus=self.num_gpus, gpu_memory_gb=self.gpu_memory_gb)

    def build_protocol(self) -> MeasurementProtocol:
        return MeasurementProtocol(bad_step_threshold=self.bad_step_threshold)


WORKLOAD_SPECS: Dict[str, WorkloadSpec] = {
    "inception_v3": WorkloadSpec(
        key="inception_v3",
        title="Inception-V3",
        workload="inception_v3",
        bad_step_threshold=2.0,
        iterations=70,
    ),
    "gnmt4": WorkloadSpec(
        key="gnmt4",
        title="GNMT-4",
        workload="gnmt4",
        workload_kwargs={"scale": 0.5},
        gpu_memory_gb=6.0,  # memory scaled with the halved unroll length
        bad_step_threshold=20.0,
        iterations=100,
    ),
    "bert": WorkloadSpec(
        key="bert",
        title="BERT",
        workload="bert",
        bad_step_threshold=30.0,
        iterations=140,
    ),
    # Training-only workloads for the generalization study (Table 3).
    "vgg16": WorkloadSpec(key="vgg16", title="VGG16", workload="vgg16", iterations=40),
    "seq2seq": WorkloadSpec(
        key="seq2seq", title="Seq2seq", workload="seq2seq", iterations=40
    ),
    "transformer": WorkloadSpec(
        key="transformer", title="Transformer", workload="transformer", iterations=40
    ),
}

#: The three workloads every table/figure evaluates on.
EVAL_WORKLOADS: Tuple[str, ...] = ("inception_v3", "gnmt4", "bert")


@dataclass
class RunSummary:
    """The serializable essence of one agent-training run."""

    workload: str
    agent_kind: str
    seed: int
    iterations: int
    best_runtime: float
    final_runtime: float
    sim_clock: float
    pretrain_clock: float
    curve_samples: List[int]
    curve_runtimes: List[float]
    best_curve: List[float]
    invalid_total: int

    @classmethod
    def from_result(cls, result: OptimizationResult, seed: int, iterations: int) -> "RunSummary":
        xs, ys = result.history.runtime_curve()
        return cls(
            workload=result.workload,
            agent_kind=result.agent_kind,
            seed=seed,
            iterations=iterations,
            best_runtime=result.history.best_runtime,
            final_runtime=result.final_runtime,
            sim_clock=result.history.sim_clock,
            pretrain_clock=result.history.pretrain_clock,
            curve_samples=[int(x) for x in xs],
            curve_runtimes=[float(y) for y in ys],
            best_curve=[r.best_runtime for r in result.history.records],
            invalid_total=sum(r.n_invalid for r in result.history.records),
        )


class ExperimentContext:
    """Runs agents against the benchmark workloads with caching.

    Results are cached in memory and, optionally, on disk, keyed by
    (workload, agent kind, seed, iterations) — Fig. 7, Fig. 8 and Table 2
    share the same underlying runs, exactly as in the paper.
    """

    def __init__(
        self,
        config: Optional[MarsConfig] = None,
        cache_dir: Optional[str] = None,
        specs: Optional[Dict[str, WorkloadSpec]] = None,
        telemetry_dir: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        resume: bool = False,
    ):
        self.config = config or fast_profile()
        self.specs = specs or WORKLOAD_SPECS
        self.cache_dir = cache_dir
        # When set, every uncached agent run opens a telemetry run
        # directory (JSONL events + manifest + metrics) under this base.
        self.telemetry_dir = telemetry_dir
        # When set, every uncached agent run writes crash-safe resumable
        # snapshots under ``<snapshot_dir>/<cache_key>/`` (see
        # docs/architecture.md §"Run state & resume"); ``resume=True``
        # restores the newest complete snapshot before training.
        self.snapshot_dir = snapshot_dir
        self.resume = resume
        self._memory_cache: Dict[str, RunSummary] = {}
        self._graphs: Dict[str, CompGraph] = {}
        self.feature_extractor = FeatureExtractor()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    def graph(self, workload_key: str) -> CompGraph:
        if workload_key not in self._graphs:
            self._graphs[workload_key] = self.specs[workload_key].build_graph()
        return self._graphs[workload_key]

    def static_runtime(self, workload_key: str, placement_fn) -> float:
        """Per-step runtime of a static baseline placement (NaN on OOM)."""
        spec = self.specs[workload_key]
        graph = self.graph(workload_key)
        cluster = spec.build_cluster()
        env = PlacementEnv(graph, cluster, protocol=spec.build_protocol())
        placement = placement_fn(graph, cluster)
        return env.final_run(placement.devices)

    # ------------------------------------------------------------------
    def memo(self, key: str, fn):
        """Memoize an arbitrary JSON-serializable result under ``key``.

        Used for expensive results that are not full agent runs (e.g. the
        generalization pipeline of Table 3).
        """
        mem_key = "memo__" + key
        if mem_key in self._memory_cache:
            return self._memory_cache[mem_key]
        path = self._disk_path(mem_key)
        if path and os.path.exists(path):
            with open(path) as fh:
                value = json.load(fh)
            self._memory_cache[mem_key] = value
            return value
        value = fn()
        self._memory_cache[mem_key] = value
        if path:
            with open(path, "w") as fh:
                json.dump(value, fh)
        return value

    def _cache_key(self, workload_key: str, agent_kind: str, seed: int, iterations: int) -> str:
        return f"{workload_key}__{agent_kind.replace(':', '-')}__s{seed}__i{iterations}"

    def _disk_path(self, key: str) -> Optional[str]:
        return os.path.join(self.cache_dir, key + ".json") if self.cache_dir else None

    def run(
        self,
        workload_key: str,
        agent_kind: str,
        seed: int = 0,
        iterations: Optional[int] = None,
    ) -> RunSummary:
        spec = self.specs[workload_key]
        iterations = iterations if iterations is not None else spec.iterations
        key = self._cache_key(workload_key, agent_kind, seed, iterations)
        if key in self._memory_cache:
            return self._memory_cache[key]
        path = self._disk_path(key)
        if path and os.path.exists(path):
            with open(path) as fh:
                summary = RunSummary(**json.load(fh))
            self._memory_cache[key] = summary
            return summary

        logger.info("running %s / %s (seed %d, %d iterations)", workload_key, agent_kind, seed, iterations)
        from dataclasses import replace

        config = with_seed(self.config, seed)
        config = replace(
            config,
            trainer=replace(
                config.trainer,
                iterations=iterations,
                patience_samples=spec.patience_samples,
            ),
        )
        tel = None
        if self.telemetry_dir:
            tel = start_run(
                key,
                self.telemetry_dir,
                manifest={
                    "workload": workload_key,
                    "agent_kind": agent_kind,
                    "seed": seed,
                    "iterations": iterations,
                    "cache_key": key,
                },
            )
        run_snapshot_dir = (
            os.path.join(self.snapshot_dir, key) if self.snapshot_dir else None
        )
        try:
            with use_telemetry(tel):
                result = optimize_placement(
                    self.graph(workload_key),
                    spec.build_cluster(),
                    agent_kind,
                    config,
                    protocol=spec.build_protocol(),
                    feature_extractor=self.feature_extractor,
                    snapshot_dir=run_snapshot_dir,
                    resume=self.resume,
                )
        finally:
            if tel is not None:
                tel.close()
        summary = RunSummary.from_result(result, seed, iterations)
        halt = result.history.halt_reason
        if halt is not None and halt.startswith("signal"):
            # Don't cache a partial run: resuming must re-enter it.
            raise RunInterrupted(summary)
        self._memory_cache[key] = summary
        if path:
            with open(path, "w") as fh:
                json.dump(asdict(summary), fh)
        return summary


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_runtime(value: float) -> str:
    return "OOM" if (value is None or np.isnan(value)) else f"{value:.3f}"
