"""Command-line entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner table1
    python -m repro.experiments.runner table2 --seed 1
    python -m repro.experiments.runner all --cache-dir .mars_cache
    mars-experiments fig7 --workloads inception_v3

Runs are cached per (workload, agent, seed, iterations); tables and
figures that share runs (Table 2, Fig. 7, Fig. 8) reuse them.
"""

from __future__ import annotations

import argparse
import logging
import sys
from dataclasses import replace

from repro.config import fast_profile, paper_profile
from repro.core.runstate import install_signal_handlers
from repro.experiments import fig7, fig8, table1, table2, table3
from repro.experiments.common import EVAL_WORKLOADS, ExperimentContext, RunInterrupted
from repro.utils.logging import set_verbosity

def _seeds(args):
    return list(range(args.seed, args.seed + args.seeds))


def _table2(ctx, args):
    text = table2.render_table2(table2.run_table2(ctx, seeds=_seeds(args)))
    print(text)
    return text


def _fig8(ctx, args):
    text = fig8.render_fig8(fig8.run_fig8(ctx, seeds=_seeds(args)))
    print(text)
    return text


EXPERIMENTS = {
    "table1": lambda ctx, args: table1.main(ctx),
    "table2": _table2,
    "table3": lambda ctx, args: table3.main(ctx),
    "fig7": lambda ctx, args: fig7.main(ctx),
    "fig8": _fig8,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mars-experiments",
        description="Regenerate the tables and figures of the Mars paper (ICPP 2021).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="average Table 2 / Fig 8 over this many consecutive seeds",
    )
    parser.add_argument(
        "--profile",
        choices=["fast", "paper"],
        default="fast",
        help="'paper' uses Section 4.2 hyper-parameters (very slow on CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for cached run results (shared across experiments)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="write a telemetry run directory (JSONL events, manifest, "
        "metrics) per uncached agent run under DIR; inspect with "
        "'python -m repro.telemetry.report <run>' (docs/observability.md)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable all telemetry hooks (in-memory metrics included)",
    )
    parser.add_argument(
        "--health",
        choices=["log", "warn", "halt"],
        default=None,
        metavar="ACTION",
        help="training-health watchdog action on alerts (log|warn|halt; "
        "default: warn — see docs/observability.md, 'Alert taxonomy')",
    )
    parser.add_argument(
        "--no-health",
        action="store_true",
        help="disable the training-health watchdog entirely",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="write crash-safe resumable run snapshots under DIR (one "
        "subdirectory per run); SIGTERM/Ctrl-C then finishes the current "
        "iteration, snapshots and exits (docs/architecture.md, "
        "'Run state & resume')",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot cadence in policy iterations (default: config's "
        "snapshot.snapshot_every; 0 = only on halt/finish)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_DIR",
        help="resume interrupted runs from their newest snapshots under "
        "RUN_DIR (implies --snapshot-dir RUN_DIR)",
    )
    parser.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        metavar="N",
        help="placement-evaluation pool size (default: cpu-count-aware; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--serial-eval",
        action="store_true",
        help="force the deterministic serial evaluation path (no pool)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="distributed actor-learner training: run N rollout-worker "
        "processes feeding the central learner (0 = single-process; see "
        "docs/architecture.md, 'Distributed training')",
    )
    parser.add_argument(
        "--no-distrib",
        action="store_true",
        help="force single-process training even if the config profile "
        "enables distributed workers",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental makespan re-evaluation (full simulation "
        "for every placement; results are bit-identical either way — "
        "see docs/performance.md and EXPERIMENTS.md, 'Evaluation speed')",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        set_verbosity(logging.DEBUG)
    config = paper_profile() if args.profile == "paper" else fast_profile(seed=args.seed)
    if args.no_telemetry:
        config = replace(config, telemetry=replace(config.telemetry, enabled=False))
    if args.no_health:
        config = replace(config, health=replace(config.health, enabled=False))
    elif args.health is not None:
        config = replace(config, health=replace(config.health, action=args.health))
    if args.no_incremental:
        config = replace(
            config, incremental=replace(config.incremental, enabled=False)
        )
    if args.no_distrib:
        config = replace(config, distrib=replace(config.distrib, workers=0))
    elif args.workers is not None:
        config = replace(config, distrib=replace(config.distrib, workers=args.workers))
    if args.serial_eval:
        config = replace(config, eval_batch=replace(config.eval_batch, mode="serial"))
    elif args.eval_workers is not None:
        config = replace(
            config,
            eval_batch=replace(
                config.eval_batch,
                max_workers=args.eval_workers,
                mode="process" if args.eval_workers > 1 else "serial",
            ),
        )
    snapshot_dir = args.resume or args.snapshot_dir
    if args.snapshot_every is not None:
        config = replace(
            config, snapshot=replace(config.snapshot, snapshot_every=args.snapshot_every)
        )
    if snapshot_dir:
        # Graceful shutdown: finish the iteration, snapshot, then stop.
        install_signal_handlers()
    ctx = ExperimentContext(
        config=config,
        cache_dir=args.cache_dir,
        telemetry_dir=None if args.no_telemetry else args.telemetry_dir,
        snapshot_dir=snapshot_dir,
        resume=args.resume is not None,
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n===== {name} =====")
        try:
            EXPERIMENTS[name](ctx, args)
        except RunInterrupted as exc:
            print(f"\ninterrupted: {exc}", file=sys.stderr)
            return 130  # conventional 128+SIGINT exit for "stopped by signal"
    return 0


if __name__ == "__main__":
    sys.exit(main())
