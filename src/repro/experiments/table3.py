"""Table 3 — generalizability of Mars (Section 4.3).

The agent trained on one workload is fine-tuned for 100 samples on an
unseen workload:

* similar type:   VGG16 -> Inception-V3, seq2seq -> GNMT-4, Transformer -> BERT
* different type: GNMT-4 -> Inception-V3, Inception-V3 -> GNMT-4, VGG16 -> BERT

Paper values (seconds), direct / similar / different:
    Inception-V3: 0.067 / 0.067 / 0.067
    GNMT-4:       1.379 / 1.422 / 1.472
    BERT:         9.214 / 10.127 / 12.426
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.config import with_seed
from repro.core.generalize import generalization_run
from repro.experiments.common import (
    EVAL_WORKLOADS,
    ExperimentContext,
    WORKLOAD_SPECS,
    fmt_runtime,
    format_table,
)

#: test workload -> (similar-type trainer, different-type trainer)
TRANSFER_PAIRS = {
    "inception_v3": ("vgg16", "gnmt4"),
    "gnmt4": ("seq2seq", "inception_v3"),
    "bert": ("transformer", "vgg16"),
}

PAPER_VALUES = {
    "inception_v3": [0.067, 0.067, 0.067],
    "gnmt4": [1.379, 1.422, 1.472],
    "bert": [9.214, 10.127, 12.426],
}


def run_table3(
    ctx: ExperimentContext,
    workloads: Sequence[str] = EVAL_WORKLOADS,
    seed: int = 0,
    finetune_samples: int = 100,
    train_patience: int = 100,
) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        spec = WORKLOAD_SPECS[wl]
        direct = ctx.run(wl, "mars", seed=seed).final_runtime
        row = {"Direct training": direct}
        for label, train_key in zip(
            ("Generalized from similar type", "Generalized from different type"),
            TRANSFER_PAIRS[wl],
        ):
            train_spec = WORKLOAD_SPECS[train_key]
            config = with_seed(ctx.config, seed)
            config = replace(
                config,
                trainer=replace(config.trainer, iterations=train_spec.iterations),
            )

            def run_transfer(train_key=train_key, config=config):
                gen = generalization_run(
                    ctx.graph(train_key),
                    ctx.graph(wl),
                    cluster=spec.build_cluster(),
                    config=config,
                    finetune_samples=finetune_samples,
                    train_patience=train_patience,
                    feature_extractor=ctx.feature_extractor,
                )
                return gen.final_runtime

            row[label] = ctx.memo(
                f"gen__{train_key}__{wl}__s{seed}__f{finetune_samples}", run_transfer
            )
        results[wl] = row
    return results


def render_table3(results: Dict[str, Dict[str, float]]) -> str:
    titles = [
        "Direct training",
        "Generalized from similar type",
        "Generalized from different type",
    ]
    headers = ["Unseen workloads"] + titles
    rows: List[List[str]] = []
    for wl, row in results.items():
        rows.append([WORKLOAD_SPECS[wl].title] + [fmt_runtime(row[t]) for t in titles])
    return format_table(
        headers,
        rows,
        title="Table 3: per-step time (s), direct training vs generalization",
    )


def main(ctx: ExperimentContext = None) -> str:
    ctx = ctx or ExperimentContext()
    text = render_table3(run_table3(ctx))
    print(text)
    return text


if __name__ == "__main__":
    main()
