"""Table 2 — per-step runtime of the best placements per approach.

Columns: Human Expert, GPU-Only, Grouper-Placer [20], Encoder-Placer [33],
Mars, Mars (no pre-training).

Paper values (seconds):
    Inception-V3: 0.071 / 0.071 / 0.067 / 0.067 / 0.067 / 0.067
    GNMT-4:       1.661 /  OOM  / 1.418 / 1.437 / 1.379 / 1.396
    BERT:          OOM  /  OOM  / 12.661 / 11.737 / 9.214 / 11.363
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.baselines import gpu_only_placement, human_expert_placement
from repro.experiments.common import (
    EVAL_WORKLOADS,
    ExperimentContext,
    WORKLOAD_SPECS,
    fmt_runtime,
    format_table,
)

RL_AGENTS = [
    ("grouper_placer", "Grouper-Placer"),
    ("encoder_placer", "Encoder-Placer"),
    ("mars", "Mars"),
    ("mars_no_pretrain", "Mars (no pre-training)"),
]

STATIC_BASELINES = [
    ("Human Experts", human_expert_placement),
    ("GPU Only", gpu_only_placement),
]

PAPER_VALUES = {
    "inception_v3": [0.071, 0.071, 0.067, 0.067, 0.067, 0.067],
    "gnmt4": [1.661, float("nan"), 1.418, 1.437, 1.379, 1.396],
    "bert": [float("nan"), float("nan"), 12.661, 11.737, 9.214, 11.363],
}


def run_table2(
    ctx: ExperimentContext,
    workloads: Sequence[str] = EVAL_WORKLOADS,
    seed: int = 0,
    seeds: Sequence[int] = None,
) -> Dict[str, Dict[str, float]]:
    """``seeds`` (when given) averages each RL entry over several runs."""
    seeds = list(seeds) if seeds is not None else [seed]
    results: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        row: Dict[str, float] = {}
        for title, fn in STATIC_BASELINES:
            row[title] = ctx.static_runtime(wl, fn)
        for kind, title in RL_AGENTS:
            values = [ctx.run(wl, kind, seed=s).final_runtime for s in seeds]
            row[title] = float(np.mean(values))
        results[wl] = row
    return results


def render_table2(results: Dict[str, Dict[str, float]]) -> str:
    titles = [t for t, _ in STATIC_BASELINES] + [t for _, t in RL_AGENTS]
    headers = ["Models"] + titles
    rows: List[List[str]] = []
    for wl, row in results.items():
        rows.append([WORKLOAD_SPECS[wl].title] + [fmt_runtime(row[t]) for t in titles])
    return format_table(
        headers,
        rows,
        title="Table 2: per-step runtime (s) of the best placements found",
    )


def main(ctx: ExperimentContext = None) -> str:
    ctx = ctx or ExperimentContext()
    text = render_table2(run_table2(ctx))
    print(text)
    return text


if __name__ == "__main__":
    main()
