"""Fig. 8 — training time of the agent per approach (in hours).

Bars: Mars, Mars without pre-training, Grouper-Placer, Encoder-Placer,
for each of the three workloads. Training time is the simulated wall
clock: environment measurements (re-init + warm-up + measured steps, with
OOM and cutoff placements costing what they cost) plus the agent's own
compute, plus contrastive pre-training for Mars.

The paper's headline: self-supervised pre-training reduces training time
by ~13.2% on average.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.common import (
    EVAL_WORKLOADS,
    ExperimentContext,
    WORKLOAD_SPECS,
    format_table,
)

FIG8_AGENTS = [
    ("mars", "Mars"),
    ("mars_no_pretrain", "Mars (no pre-training)"),
    ("grouper_placer", "Grouper-Placer"),
    ("encoder_placer", "Encoder-Placer"),
]


def run_fig8(
    ctx: ExperimentContext,
    workloads: Sequence[str] = EVAL_WORKLOADS,
    seed: int = 0,
    seeds: Sequence[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Returns ``{workload: {agent_title: training_hours}}``.

    ``seeds`` (when given) averages the training clock over several runs —
    recommended, since convergence time is the noisiest quantity here.
    """
    seeds = list(seeds) if seeds is not None else [seed]
    hours: Dict[str, Dict[str, float]] = {}
    for wl in workloads:
        hours[wl] = {}
        for kind, title in FIG8_AGENTS:
            clocks = [ctx.run(wl, kind, seed=s).sim_clock for s in seeds]
            hours[wl][title] = float(np.mean(clocks)) / 3600.0
    return hours


def render_fig8(hours: Dict[str, Dict[str, float]]) -> str:
    titles = [t for _, t in FIG8_AGENTS]
    headers = ["Models"] + titles
    rows: List[List[str]] = []
    for wl, row in hours.items():
        rows.append([WORKLOAD_SPECS[wl].title] + [f"{row[t]:.2f}" for t in titles])
    table = format_table(
        headers, rows, title="Fig 8: agent training time (hours) per approach"
    )
    savings = []
    for wl, row in hours.items():
        with_pt = row["Mars"]
        without = row["Mars (no pre-training)"]
        if without > 0:
            savings.append(100.0 * (without - with_pt) / without)
    if not savings:
        return table
    mean = float(np.mean(savings))
    if mean >= 0:
        note = (f"\nPre-training reduces Mars's training time by "
                f"{mean:.1f}% on average (paper: 13.2%).")
    else:
        note = (f"\nPre-training increases Mars's training time by "
                f"{-mean:.1f}% on average here (paper reports a 13.2% reduction).")
    return table + note


def main(ctx: ExperimentContext = None) -> str:
    ctx = ctx or ExperimentContext()
    text = render_fig8(run_fig8(ctx))
    print(text)
    return text


if __name__ == "__main__":
    main()
