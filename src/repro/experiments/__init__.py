"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — placer-design study (Table 1)
* :mod:`repro.experiments.table2` — final placement quality (Table 2)
* :mod:`repro.experiments.table3` — generalization (Table 3)
* :mod:`repro.experiments.fig7` — search curves (Fig. 7a/7b)
* :mod:`repro.experiments.fig8` — agent training time (Fig. 8)

Run everything from the command line::

    python -m repro.experiments.runner all
"""

from repro.experiments.common import (
    EVAL_WORKLOADS,
    WORKLOAD_SPECS,
    ExperimentContext,
    WorkloadSpec,
)

__all__ = [
    "EVAL_WORKLOADS",
    "WORKLOAD_SPECS",
    "ExperimentContext",
    "WorkloadSpec",
]
