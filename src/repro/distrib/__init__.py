"""Distributed actor–learner training (docs/architecture.md
§"Distributed training").

Topology: N rollout-worker processes (``worker.py``), each owning a
:class:`~repro.sim.env.PlacementEnv` shard and a policy replica, push
:class:`~repro.distrib.messages.SampleBatch` messages through bounded
per-worker queues to the central learner (``learner.py``), which applies
PPO/REINFORCE updates through the ordinary
:class:`~repro.rl.trainer.JointTrainer` update path and broadcasts fresh
weights through the versioned :class:`~repro.distrib.store.VariableStore`.

Configured by :class:`repro.config.DistribConfig` on
``MarsConfig.distrib`` (re-exported here for convenience);
``optimize_placement`` dispatches to :func:`train_distributed` whenever
``config.distrib.workers > 0``.
"""

from repro.config import DistribConfig
from repro.distrib.learner import Supervisor, train_distributed
from repro.distrib.messages import SampleBatch
from repro.distrib.store import VariableStore
from repro.distrib.worker import WorkerSpec, replica_build_args, worker_main

__all__ = [
    "DistribConfig",
    "SampleBatch",
    "Supervisor",
    "VariableStore",
    "WorkerSpec",
    "replica_build_args",
    "train_distributed",
    "worker_main",
]
