"""The central learner and worker supervisor of ``repro.distrib``.

:func:`train_distributed` is the distributed twin of
:meth:`repro.rl.trainer.JointTrainer.train`: the sample/measure half of
each policy iteration moves into N rollout-worker processes
(``worker.py``), while advantage computation, the rollout buffer, the
PPO/REINFORCE update (via the trainer's own :meth:`maybe_update`), best-
placement tracking, health watchdog, run-state snapshots and the
``SearchHistory`` all stay here, on the *same* trainer object — so a
distributed run snapshots with the ordinary
:class:`~repro.core.runstate.RunStateManager` and can even be resumed
single-process.

Budget parity: one consumed :class:`~repro.distrib.messages.SampleBatch`
is one policy iteration (workers sample ``samples_per_policy`` placements
per batch by default), so ``iterations=N`` costs the same sample budget
as a single-process run — the speedup comes from overlapping the
measurement latency of N rollouts, not from measuring more.

Simulated clock: on a real testbed the N workers measure concurrently,
so consumed measurement time advances the shared clock by
``env_wall_delta / active_workers`` (perfect overlap of the paper's
per-placement measurement latency), plus the learner's own update
compute — documented in docs/architecture.md §"Distributed training".

Failure model: the :class:`Supervisor` restarts workers that died (any
exit while running counts as a failure) or stopped heartbeating, up to
``max_worker_restarts`` per slot; a restarted slot gets a bumped
generation (fresh RNG stream, fresh queue — a SIGKILL can corrupt only
the dead worker's own pipe). Slots over the restart budget are *lost*;
the run degrades to the survivors and halts only when none remain.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import DistribConfig, MarsConfig
from repro.distrib.messages import SampleBatch
from repro.distrib.store import VariableStore
from repro.distrib.worker import WorkerSpec, worker_main
from repro.rl.trainer import JointTrainer, SearchHistory, SearchRecord
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.health import HealthWatchdog
from repro.telemetry.tracing import record_span, span
from repro.utils.logging import get_logger

logger = get_logger("repro.distrib.learner")

#: Cap on how long one queue poll blocks, so supervisor checks and
#: shutdown stay responsive even in ordered (head-of-line) mode.
_GET_TIMEOUT_S = 0.1


class _QueueDrainer(threading.Thread):
    """Moves messages from one worker's mp queue into a small in-process
    queue, so the learner's main thread never does a *blocking* read on a
    worker pipe.

    This is load-bearing for crash robustness, not a convenience: a
    worker SIGKILLed (or exiting) midway through writing a message larger
    than the pipe buffer leaves a partial frame, and any subsequent
    ``Queue.get`` — even ``get_nowait`` — blocks forever inside
    ``Connection._recv`` waiting for bytes that will never come. With a
    drainer, only this daemon thread can hang on a corrupt pipe; the
    supervisor abandons it together with the dead worker's queue and the
    learner never notices.

    The hand-off queue is bounded (1 slot) so the worker's end-to-end
    backpressure budget stays ``queue_capacity + 1`` batches.
    """

    def __init__(self, source, slot: int, generation: int):
        super().__init__(
            name=f"repro-drain-{slot}-g{generation}", daemon=True
        )
        self.source = source
        self.out: "queue_mod.Queue" = queue_mod.Queue(maxsize=1)

    def run(self) -> None:
        try:
            while True:
                self.out.put(self.source.get())
        except Exception:
            # EOFError/OSError when the queue is discarded — thread done.
            pass


@dataclass
class WorkerHandle:
    """One worker slot's live state, as the supervisor sees it."""

    slot: int
    process: "multiprocessing.process.BaseProcess"
    queue: "multiprocessing.queues.Queue"
    drainer: _QueueDrainer
    generation: int = 0
    restarts: int = 0
    lost: bool = False

    @property
    def alive(self) -> bool:
        return not self.lost and self.process.is_alive()


class Supervisor:
    """Spawns, watches and restarts the rollout workers.

    Liveness has two signals: the process itself (any death while the
    run is active is a failure — workers only exit on shutdown) and the
    shared heartbeat array (a worker stuck inside a rollout longer than
    ``heartbeat_timeout_s`` is declared hung and killed). Either way the
    slot restarts with ``generation + 1`` — fresh RNG stream, fresh
    private queue (the old queue dies with the worker: a SIGKILL mid-
    ``put`` can leave a corrupt pipe) — until its restart budget runs
    out and it is declared lost.
    """

    def __init__(
        self,
        ctx,
        cfg: DistribConfig,
        spec_factory: Callable[[int, int], WorkerSpec],
        store: VariableStore,
        shutdown,
        heartbeat,
        telemetry: Telemetry,
    ):
        self.ctx = ctx
        self.cfg = cfg
        self.spec_factory = spec_factory
        self.store = store
        self.shutdown = shutdown
        self.heartbeat = heartbeat
        self.tel = telemetry
        self.handles: List[WorkerHandle] = []

    # ------------------------------------------------------------------
    def _spawn(self, slot: int, generation: int) -> WorkerHandle:
        queue = self.ctx.Queue(maxsize=self.cfg.queue_capacity)
        spec = self.spec_factory(slot, generation)
        process = self.ctx.Process(
            target=worker_main,
            args=(spec, self.store, queue, self.shutdown, self.heartbeat),
            name=f"repro-rollout-{slot}-g{generation}",
            daemon=True,
        )
        self.heartbeat[slot] = time.monotonic()
        process.start()
        drainer = _QueueDrainer(queue, slot, generation)
        drainer.start()
        return WorkerHandle(
            slot=slot,
            process=process,
            queue=queue,
            drainer=drainer,
            generation=generation,
        )

    def start_all(self, workers: int) -> None:
        for slot in range(workers):
            handle = self._spawn(slot, 0)
            self.handles.append(handle)
            self.tel.emit(
                "distrib_worker",
                worker_id=slot,
                status="started",
                generation=0,
                restarts=0,
                pid=int(handle.process.pid or 0),
            )
        self.tel.gauge("distrib.workers").set(self.alive_count)

    # ------------------------------------------------------------------
    @property
    def alive_count(self) -> int:
        return sum(1 for h in self.handles if h.alive)

    def queue_depth(self) -> int:
        depth = 0
        for h in self.handles:
            if h.lost:
                continue
            depth += h.drainer.out.qsize()
            try:
                depth += h.queue.qsize()
            except NotImplementedError:  # pragma: no cover - macOS qsize
                pass
        return depth

    def _discard_queue(self, handle: WorkerHandle) -> None:
        # The drainer is abandoned with the queue (daemon thread): if the
        # dead worker left a partial frame in the pipe, the drainer is
        # the only thing hung on it, and closing the reader unblocks or
        # orphans it either way.
        try:
            handle.queue.close()
            handle.queue.cancel_join_thread()
        except Exception:  # pragma: no cover - queue already broken
            pass

    def _restart(self, handle: WorkerHandle, reason: str) -> None:
        if handle.process.is_alive():  # hung: heartbeat stale but running
            handle.process.terminate()
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=2.0)
        self._discard_queue(handle)
        handle.restarts += 1
        if handle.restarts > self.cfg.max_worker_restarts:
            handle.lost = True
            logger.error(
                "rollout worker %d %s and is over its restart budget "
                "(%d) — slot lost, degrading to %d worker(s)",
                handle.slot,
                reason,
                self.cfg.max_worker_restarts,
                self.alive_count,
            )
            self.tel.emit(
                "distrib_worker",
                worker_id=handle.slot,
                status="lost",
                generation=handle.generation,
                restarts=handle.restarts - 1,
                reason=reason,
            )
            return
        handle.generation += 1
        replacement = self._spawn(handle.slot, handle.generation)
        handle.process = replacement.process
        handle.queue = replacement.queue
        handle.drainer = replacement.drainer
        self.tel.counter("distrib.worker_restarts").inc()
        logger.warning(
            "rollout worker %d %s — restarted as generation %d (restart %d/%d)",
            handle.slot,
            reason,
            handle.generation,
            handle.restarts,
            self.cfg.max_worker_restarts,
        )
        self.tel.emit(
            "distrib_worker",
            worker_id=handle.slot,
            status="restarted",
            generation=handle.generation,
            restarts=handle.restarts,
            reason=reason,
            pid=int(handle.process.pid or 0),
        )

    def check(self) -> int:
        """Restart dead/hung workers; returns the live-worker count."""
        now = time.monotonic()
        for handle in self.handles:
            if handle.lost:
                continue
            if not handle.process.is_alive():
                self._restart(handle, "died")
            elif now - self.heartbeat[handle.slot] > self.cfg.heartbeat_timeout_s:
                self._restart(handle, "hung")
        alive = self.alive_count
        self.tel.gauge("distrib.workers").set(alive)
        return alive

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown: signal, wait, then escalate to terminate/kill.

        No queue draining here — the drainer threads keep the pipes
        moving, and workers discard their own unflushed buffers on exit
        (``cancel_join_thread``), so nothing in this method can block on
        worker data.
        """
        self.shutdown.set()
        deadline = time.monotonic() + self.cfg.shutdown_timeout_s
        for handle in self.handles:
            handle.process.join(timeout=max(0.1, deadline - time.monotonic()))
        for handle in self.handles:
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - last resort
                handle.process.kill()
                handle.process.join(timeout=2.0)
            self._discard_queue(handle)


class _BatchSource:
    """Pulls the next consumable batch from the worker queues.

    Arrival order by default; ``ordered=True`` consumes strictly
    round-robin across live slots (worker 0, 1, ..., 0, 1, ...), which
    removes consumption-order nondeterminism at the cost of head-of-line
    blocking. Either way, batches from a dead generation (the worker was
    restarted after shipping them) are still valid samples and are
    consumed normally — only staleness can drop them.
    """

    def __init__(self, supervisor: Supervisor, cfg: DistribConfig):
        self.supervisor = supervisor
        self.cfg = cfg
        self._next_slot = 0

    def _try_get(
        self, handle: WorkerHandle, timeout: Optional[float] = None
    ) -> Optional[SampleBatch]:
        try:
            if timeout is None:
                return handle.drainer.out.get_nowait()
            return handle.drainer.out.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def next_batch(self) -> Optional[SampleBatch]:
        """Block until a batch arrives; ``None`` once no worker remains."""
        while True:
            if self.supervisor.check() == 0:
                return None
            handles = self.supervisor.handles
            if self.cfg.ordered:
                # Find the next live slot at or after the round-robin cursor.
                for off in range(len(handles)):
                    slot = (self._next_slot + off) % len(handles)
                    if not handles[slot].lost:
                        batch = self._try_get(handles[slot], timeout=_GET_TIMEOUT_S)
                        if batch is not None:
                            self._next_slot = (slot + 1) % len(handles)
                            return batch
                        break  # head-of-line: wait for *this* slot
            else:
                for handle in handles:
                    if handle.lost:
                        continue
                    batch = self._try_get(handle)
                    if batch is not None:
                        return batch
                time.sleep(self.cfg.poll_interval_s)


def train_distributed(
    trainer: JointTrainer,
    config: MarsConfig,
    agent_kind: str,
    history: Optional[SearchHistory] = None,
    run_state=None,
    telemetry: Optional[Telemetry] = None,
    on_batch: Optional[Callable[[SampleBatch, Supervisor], None]] = None,
) -> SearchHistory:
    """Distributed actor–learner search over ``config.distrib.workers``
    rollout-worker processes.

    Mirrors :meth:`JointTrainer.train`'s contract: continues an existing
    ``history``, honours ``run_state`` snapshots/halts, feeds the health
    watchdog, and returns the same :class:`SearchHistory` shape.
    ``on_batch`` is a test hook called after each consumed batch with
    ``(batch, supervisor)`` — the SIGKILL restart test kills a worker pid
    from it. Falls back to single-process :meth:`~JointTrainer.train` if
    the workers cannot be spawned at all.
    """
    cfg = config.distrib
    tcfg = trainer.config
    tel = telemetry or trainer._telemetry or get_telemetry()
    history = history or SearchHistory()
    if not history.records and history.sim_clock < history.pretrain_clock:
        history.sim_clock = history.pretrain_clock
    samples = history.total_samples
    samples_per_batch = cfg.samples_per_batch or tcfg.samples_per_policy

    trainer.watchdog = watchdog = HealthWatchdog(trainer.health, telemetry=tel)
    if trainer._pending_watchdog_state is not None:
        watchdog.load_state_dict(trainer._pending_watchdog_state)
        trainer._pending_watchdog_state = None
    if trainer._pending_loop_state is not None:
        samples_since_best = int(trainer._pending_loop_state["samples_since_best"])
        attributed_best = bool(trainer._pending_loop_state["attributed_best"])
        trainer._pending_loop_state = None
    else:
        samples_since_best = 0
        attributed_best = False

    env = trainer.env
    ctx = multiprocessing.get_context()
    store_dir = tempfile.mkdtemp(prefix="repro-distrib-")
    store = VariableStore(store_dir, ctx=ctx)
    shutdown = ctx.Event()
    heartbeat = ctx.Array("d", max(1, cfg.workers), lock=False)
    run_dir = getattr(tel, "run_dir", None)

    def spec_factory(slot: int, generation: int) -> WorkerSpec:
        return WorkerSpec(
            worker_id=slot,
            generation=generation,
            num_workers=cfg.workers,
            root_seed=tcfg.seed,
            agent_kind=agent_kind,
            graph=env.graph,
            cluster=env.cluster,
            config=config,
            protocol=env.protocol,
            samples_per_batch=samples_per_batch,
            run_dir=run_dir,
        )

    supervisor = Supervisor(ctx, cfg, spec_factory, store, shutdown, heartbeat, tel)
    source = _BatchSource(supervisor, cfg)

    # Publish the (possibly pre-trained) initial weights *before* any
    # worker spawns: every replica bootstraps from version 1, bit-
    # identical to the learner's agent.
    store.publish(trainer.agent.state_dict())
    tel.counter("distrib.weight_broadcasts").inc()
    tel.gauge("distrib.policy_version").set(store.version)

    try:
        supervisor.start_all(cfg.workers)
    except OSError as exc:
        logger.warning(
            "cannot spawn rollout workers (%s: %s) — "
            "degrading to single-process training",
            type(exc).__name__,
            exc,
        )
        supervisor.stop()
        shutil.rmtree(store_dir, ignore_errors=True)
        return trainer.train(history, run_state=run_state)

    if run_state is not None:
        run_state.extra.update(workers=cfg.workers, distrib=True)

    updates_done = 0
    try:
        for it in range(tcfg.iterations):
            it_index = len(history.records)
            iter_wall_start = time.perf_counter()
            with span(
                "trainer.iteration", telemetry=tel, iteration=it_index, distrib=True
            ) as iter_span:
                # ---- pull the next fresh-enough batch --------------------
                wait_start = time.perf_counter()
                batch = None
                while batch is None:
                    batch = source.next_batch()
                    if batch is None:
                        break  # all workers lost
                    staleness = store.version - batch.policy_version
                    tel.histogram("distrib.staleness").observe(staleness)
                    if (
                        cfg.max_staleness is not None
                        and staleness > cfg.max_staleness
                    ):
                        tel.counter("distrib.stale_batches").inc()
                        if tel.sample_events:
                            logger.info(
                                "dropped stale batch from worker %d "
                                "(version %d, head %d)",
                                batch.worker_id,
                                batch.policy_version,
                                store.version,
                            )
                        batch = None  # dropped: no budget charge, keep polling
                if batch is None:
                    history.halt_reason = "distrib: all rollout workers lost"
                    tel.update_manifest(halted=True, halt_reason=history.halt_reason)
                    logger.error(
                        "[%s] %s — stopping at iteration %d",
                        env.graph.name,
                        history.halt_reason,
                        it_index,
                    )
                    if run_state is not None:
                        run_state.snapshot_if_new(trainer, history, tel, reason="halt")
                    break
                tel.histogram("distrib.batch_wait_s").observe(
                    time.perf_counter() - wait_start
                )
                tel.histogram("distrib.rollout_s").observe(batch.duration_s)
                tel.counter("distrib.batches").inc()
                tel.counter("distrib.samples").inc(batch.batch_size)
                tel.gauge("distrib.queue_depth").set(supervisor.queue_depth())
                if iter_span.context is not None:
                    # The worker can't write this process's event log;
                    # replay its rollout timing as a child span here.
                    record_span(
                        "distrib.rollout",
                        batch.duration_s,
                        telemetry=tel,
                        parent=iter_span.context,
                        start_unix=batch.start_unix,
                        worker=batch.worker_id,
                        generation=batch.generation,
                        policy_version=batch.policy_version,
                    )

                # ---- the learner half of a JointTrainer iteration --------
                rollout = batch.rollout()
                results = batch.results()
                runtimes = [res.per_step_time for res in results]
                _, advantages = trainer.tracker.compute(runtimes)
                trainer.buffer.add(rollout, advantages)
                samples += len(results)
                tel.counter("trainer.samples").inc(len(results))
                reward_hist = tel.histogram("trainer.sample_runtime")
                for res in results:
                    if res.ok:
                        reward_hist.observe(res.per_step_time)
                if tel.sample_events:
                    for i, res in enumerate(results):
                        tel.emit(
                            "sample",
                            iteration=it_index,
                            index=i,
                            runtime=float(res.per_step_time),
                            valid=bool(res.valid),
                            truncated=bool(res.truncated),
                            advantage=float(advantages[i]),
                            worker=int(batch.worker_id),
                        )

                improved = False
                patience_bar = history.best_runtime * (
                    1.0 - tcfg.patience_min_improvement
                )
                for res, placement in zip(results, rollout.placements):
                    if res.ok and res.per_step_time < history.best_runtime:
                        if res.per_step_time < patience_bar:
                            improved = True
                        history.best_runtime = res.per_step_time
                        history.best_placement = placement.copy()
                        attributed_best = False
                samples_since_best = (
                    0 if improved else samples_since_best + len(results)
                )
                if improved and history.best_placement is not None:
                    env.record_attribution(history.best_placement, iteration=it_index)
                    attributed_best = True

                agent_seconds = trainer.maybe_update(tel, it_index, watchdog)
                if agent_seconds > 0.0:
                    updates_done += 1
                    if updates_done % cfg.broadcast_every == 0:
                        store.publish(trainer.agent.state_dict())
                        tel.counter("distrib.weight_broadcasts").inc()
                        tel.gauge("distrib.policy_version").set(store.version)

                # Simulated clock: the paper's testbed measures the N
                # rollouts concurrently, so measurement latency overlaps
                # across live workers; only the learner's update compute
                # is serial.
                active = max(1, supervisor.alive_count)
                history.sim_clock += batch.env_wall_delta / active + agent_seconds
                sim_clock = history.sim_clock

                record = SearchRecord(
                    iteration=len(history.records),
                    samples_so_far=samples,
                    runtimes=list(runtimes),
                    valid_runtimes=[r.per_step_time for r in results if r.valid],
                    n_invalid=sum(not r.valid for r in results),
                    n_truncated=sum(r.truncated for r in results),
                    best_runtime=history.best_runtime,
                    baseline=trainer.tracker.baseline,
                    sim_clock=sim_clock,
                )
                history.records.append(record)

                iter_wall = time.perf_counter() - iter_wall_start
                tel.counter("trainer.iterations").inc()
                tel.histogram("trainer.iteration_wall_s").observe(iter_wall)
                tel.gauge("trainer.best_runtime").set(history.best_runtime)
                tel.gauge("trainer.baseline").set(record.baseline)
                tel.gauge("trainer.sim_clock").set(sim_clock)
                tel.emit(
                    "iteration",
                    iteration=it_index,
                    samples=int(samples),
                    best_runtime=float(history.best_runtime),
                    baseline=float(record.baseline),
                    n_invalid=int(record.n_invalid),
                    n_truncated=int(record.n_truncated),
                    sim_clock=float(sim_clock),
                    wall_seconds=float(iter_wall),
                    worker=int(batch.worker_id),
                    policy_version=int(batch.policy_version),
                )
                if tcfg.log_every and (it + 1) % tcfg.log_every == 0:
                    logger.info(
                        "[%s] distrib iter %d samples %d best %.4fs workers %d",
                        env.graph.name,
                        it + 1,
                        samples,
                        history.best_runtime,
                        supervisor.alive_count,
                    )
                watchdog.observe_iteration(
                    it_index,
                    best_runtime=history.best_runtime,
                    n_invalid=record.n_invalid,
                    n_samples=len(results),
                )
                if on_batch is not None:
                    on_batch(batch, supervisor)
                halt_signal = None
                if run_state is not None:
                    trainer._samples_since_best = samples_since_best
                    trainer._attributed_best = attributed_best
                    run_state.extra["policy_version"] = store.version
                    halt_signal = run_state.after_iteration(
                        trainer, history, tel, force=watchdog.halted
                    )
                if halt_signal:
                    history.halt_reason = f"signal: {halt_signal}"
                    tel.update_manifest(halted=True, halt_reason=history.halt_reason)
                    logger.warning(
                        "[%s] %s received — snapshotted after iteration %d "
                        "and stopping",
                        env.graph.name,
                        halt_signal,
                        it + 1,
                    )
                    break
                if watchdog.halted:
                    history.halt_reason = watchdog.halt_reason
                    tel.update_manifest(halted=True, halt_reason=watchdog.halt_reason)
                    logger.error(
                        "[%s] health watchdog halted the run at iteration %d: %s",
                        env.graph.name,
                        it + 1,
                        watchdog.halt_reason,
                    )
                    break
                if (
                    tcfg.early_stop_samples is not None
                    and samples >= tcfg.early_stop_samples
                ):
                    break
                if (
                    tcfg.patience_samples is not None
                    and samples_since_best >= tcfg.patience_samples
                ):
                    logger.info(
                        "early stop: no improvement in %d samples", samples_since_best
                    )
                    break
        if history.best_placement is not None and not attributed_best:
            env.record_attribution(
                history.best_placement,
                iteration=history.records[-1].iteration if history.records else -1,
            )
        if run_state is not None:
            trainer._samples_since_best = samples_since_best
            trainer._attributed_best = attributed_best
            run_state.snapshot_if_new(trainer, history, tel, reason="final")
    finally:
        supervisor.stop()
        shutil.rmtree(store_dir, ignore_errors=True)
    return history
