"""The rollout-worker process of the distributed actor–learner loop.

Each worker owns a full :class:`~repro.sim.env.PlacementEnv` shard and a
policy *replica* — the same architecture the learner trains, built
without pre-training (the learner publishes the pre-trained weights as
variable-store version 1 **before** any worker spawns, so every replica
starts bit-identical to the learner's agent). The loop is:

    pull fresh weights (if any) → sample a rollout → measure it in the
    local env shard → push one :class:`~repro.distrib.messages.SampleBatch`

Workers never touch shared learner state: weights arrive through the
read-only :class:`~repro.distrib.store.VariableStore`, samples leave
through a private bounded queue (backpressure: a full queue blocks the
worker instead of letting it race ahead of the learner), and liveness is
a single ``heartbeat[worker_id] = monotonic()`` write per loop step that
the supervisor watches. A SIGKILLed worker can therefore corrupt nothing
but its own queue, which the supervisor discards with it.

Sampling randomness comes from ``spawn_seeds(root_seed, workers,
key=(generation,))[worker_id]`` — statistically independent streams per
worker, and a *fresh* stream per restart generation instead of replaying
the one a dead predecessor half-consumed.
"""

from __future__ import annotations

import os
import queue as queue_mod
import signal
import time
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.config import MarsConfig
from repro.distrib.messages import SampleBatch
from repro.graph import CompGraph
from repro.sim.batch import BatchEvalConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.env import PlacementEnv
from repro.sim.measurement import MeasurementProtocol
from repro.telemetry import Telemetry, start_run, use_telemetry
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_seeds

logger = get_logger("repro.distrib.worker")

#: Seconds a blocked queue.put waits before re-checking shutdown and
#: re-beating the heartbeat (backpressure must not look like a hang).
_PUT_TIMEOUT_S = 0.2


def replica_build_args(agent_kind: str, config: MarsConfig) -> "tuple[str, MarsConfig]":
    """``(kind, config)`` that rebuilds ``agent_kind``'s architecture
    without re-running pre-training — the same mapping
    ``core/checkpoint.load_agent`` uses, because a replica's weights
    come from the variable store, never from its own pre-training."""
    kind = "mars_no_pretrain" if agent_kind == "mars" else agent_kind
    if kind.startswith("study:"):
        config = replace(config, pretrain=replace(config.pretrain, enabled=False))
    return kind, config


@dataclass
class WorkerSpec:
    """Everything a rollout worker needs, fixed at spawn time."""

    worker_id: int
    generation: int  # bumped per restart of this slot
    num_workers: int
    root_seed: int
    agent_kind: str
    graph: CompGraph
    cluster: ClusterSpec
    config: MarsConfig
    protocol: MeasurementProtocol
    samples_per_batch: int
    #: Learner run directory; when set, the worker opens its own
    #: file-backed telemetry session under ``<run_dir>/workers/``.
    run_dir: Optional[str] = None

    def worker_env_config(self) -> BatchEvalConfig:
        """The worker's env always evaluates serially: workers are
        daemonic (so they cannot fork a nested pool), and the
        parallelism budget already went to the workers themselves."""
        return replace(self.config.eval_batch, mode="serial")


def _build_worker(spec: WorkerSpec):
    """Build the worker's (agent, env, rng) triple."""
    # Lazy import: core.search imports repro.distrib for dispatch.
    from repro.core.search import build_agent

    kind, config = replica_build_args(spec.agent_kind, spec.config)
    agent, _ = build_agent(kind, spec.graph, spec.cluster, config)
    env = PlacementEnv(
        spec.graph,
        spec.cluster,
        protocol=spec.protocol,
        batch=spec.worker_env_config(),
        incremental=spec.config.incremental,
    )
    seed_seq = spawn_seeds(
        spec.root_seed, spec.num_workers, key=(spec.generation,)
    )[spec.worker_id]
    # default_rng accepts a SeedSequence directly, preserving the full
    # spawn-tree entropy path.
    return agent, env, np.random.default_rng(seed_seq)


def worker_main(spec: WorkerSpec, store, sample_queue, shutdown, heartbeat) -> None:
    """Process entry point for one rollout worker.

    ``store`` is the learner's :class:`~repro.distrib.store.VariableStore`,
    ``sample_queue`` this worker's private bounded queue, ``shutdown`` the
    shared stop event and ``heartbeat`` the shared monotonic-timestamp
    array the supervisor watches.
    """
    # The parent may have installed graceful SIGTERM/SIGINT handlers
    # (core/runstate.py) — inherited across fork, they would turn the
    # supervisor's terminate() into a no-op request the worker never
    # checks. Reset: SIGTERM kills us, SIGINT is the learner's problem.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    wid = spec.worker_id
    heartbeat[wid] = time.monotonic()

    tel: Telemetry
    owned = None
    if spec.run_dir:
        owned = tel = start_run(
            f"worker-{wid}-g{spec.generation}",
            base_dir=os.path.join(spec.run_dir, "workers"),
            manifest={
                "worker_id": wid,
                "generation": spec.generation,
                "agent_kind": spec.agent_kind,
                "workload": spec.graph.name,
            },
        )
    else:
        tel = Telemetry(name=f"worker-{wid}")

    try:
        with use_telemetry(tel):
            agent, env, rng = _build_worker(spec)
            version = 0
            fetched = store.fetch(newer_than=0)
            if fetched is not None:
                version, state = fetched
                agent.load_state_dict(state)
            heartbeat[wid] = time.monotonic()

            seq = 0
            while not shutdown.is_set():
                heartbeat[wid] = time.monotonic()
                fetched = store.fetch(newer_than=version)
                if fetched is not None:
                    version, state = fetched
                    agent.load_state_dict(state)
                    tel.counter("worker.weight_pulls").inc()

                start_unix = time.time()
                t0 = time.perf_counter()
                rollout = agent.sample(spec.samples_per_batch, rng)
                env_clock0 = env.stats.wall_clock
                # Placement by placement (identical results to
                # evaluate_batch on the serial path) so shutdown is
                # noticed within one measurement, not one rollout — on a
                # real testbed a rollout is minutes of measurement
                # latency, and stop() must not wait it out.
                results = []
                for devices in rollout.placements:
                    if shutdown.is_set():
                        break
                    heartbeat[wid] = time.monotonic()
                    results.append(env.evaluate(devices))
                if len(results) < rollout.batch_size:
                    break  # shutdown mid-rollout: abandon it
                duration_s = time.perf_counter() - t0

                msg = SampleBatch.build(
                    worker_id=wid,
                    generation=spec.generation,
                    seq=seq,
                    policy_version=version,
                    rollout=rollout,
                    results=results,
                    env_wall_delta=env.stats.wall_clock - env_clock0,
                    duration_s=duration_s,
                    start_unix=start_unix,
                )
                # Backpressure loop: keep heartbeating while the learner
                # drains the queue, bail promptly on shutdown.
                while not shutdown.is_set():
                    heartbeat[wid] = time.monotonic()
                    try:
                        sample_queue.put(msg, timeout=_PUT_TIMEOUT_S)
                        break
                    except queue_mod.Full:
                        continue
                else:
                    break
                seq += 1
                tel.counter("worker.batches").inc()
                tel.counter("worker.samples").inc(len(results))
    except KeyboardInterrupt:  # pragma: no cover - SIGINT ignored above
        pass
    except Exception:
        logger.exception("rollout worker %d (gen %d) crashed", wid, spec.generation)
        raise
    finally:
        # Let the learner's queue-feeder thread die with us instead of
        # blocking interpreter exit on unflushed buffers.
        try:
            sample_queue.cancel_join_thread()
        except Exception:  # pragma: no cover - queue already closed
            pass
        if owned is not None:
            owned.close()
