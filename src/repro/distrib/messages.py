"""Wire types crossing the worker → learner sample queues.

One :class:`SampleBatch` is one worker rollout: the sampled
:class:`~repro.rl.policy.AgentRollout` (flattened to plain arrays so the
message pickles without importing agent classes in the unpickler), the
measurement results the worker's environment shard produced for it, and
the provenance the learner needs for staleness accounting, ordered
consumption and telemetry. Everything is numpy/str/float — no live
objects, no file handles — so a message survives the queue's pickle
round-trip and a half-written message from a killed worker can only
break its *own* queue (each worker owns a private queue precisely so a
corrupt pipe is discarded with the worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.rl.policy import AgentRollout
from repro.sim.measurement import MeasurementResult


@dataclass
class SampleBatch:
    """One rollout's samples + measurements, shipped worker → learner."""

    # -- provenance ------------------------------------------------------
    worker_id: int  # slot index, stable across restarts
    generation: int  # bumped per restart of this slot
    seq: int  # per-(worker, generation) batch counter, from 0
    policy_version: int  # VariableStore version the rollout was sampled at

    # -- the rollout, flattened (see AgentRollout) -----------------------
    placements: np.ndarray  # (B, num_ops)
    internal: Dict[str, np.ndarray] = field(default_factory=dict)
    old_logp: np.ndarray = None  # type: ignore[assignment]  # (B, K)

    # -- per-sample measurement results (MeasurementResult, columnar) ----
    per_step_time: np.ndarray = None  # type: ignore[assignment]  # (B,)
    valid: np.ndarray = None  # type: ignore[assignment]  # (B,) bool
    truncated: np.ndarray = None  # type: ignore[assignment]  # (B,) bool
    steps_run: np.ndarray = None  # type: ignore[assignment]  # (B,)
    wall_clock: np.ndarray = None  # type: ignore[assignment]  # (B,)

    # -- accounting ------------------------------------------------------
    #: Simulated seconds this rollout added to the worker env's clock
    #: (cache hits charge reinit_cost, misses a full measurement — the
    #: learner folds this into the global sim clock).
    env_wall_delta: float = 0.0
    #: Real seconds the worker spent on sample + evaluate, and when it
    #: started — replayed into the learner's trace as a distrib.rollout
    #: span (workers cannot write the learner's event log directly).
    duration_s: float = 0.0
    start_unix: float = 0.0

    @property
    def batch_size(self) -> int:
        return int(self.placements.shape[0])

    def rollout(self) -> AgentRollout:
        """Reassemble the rollout for the learner's evaluate/update path."""
        return AgentRollout(
            placements=self.placements,
            internal=self.internal,
            old_logp=self.old_logp,
        )

    def results(self) -> "list[MeasurementResult]":
        """Reassemble the per-sample measurement results, in order."""
        return [
            MeasurementResult(
                per_step_time=float(self.per_step_time[i]),
                valid=bool(self.valid[i]),
                truncated=bool(self.truncated[i]),
                steps_run=int(self.steps_run[i]),
                wall_clock=float(self.wall_clock[i]),
            )
            for i in range(self.batch_size)
        ]

    @staticmethod
    def build(
        worker_id: int,
        generation: int,
        seq: int,
        policy_version: int,
        rollout: AgentRollout,
        results: "list[MeasurementResult]",
        env_wall_delta: float,
        duration_s: float,
        start_unix: float,
    ) -> "SampleBatch":
        if len(results) != rollout.batch_size:
            raise ValueError(
                f"rollout has {rollout.batch_size} samples, got {len(results)} results"
            )
        return SampleBatch(
            worker_id=worker_id,
            generation=generation,
            seq=seq,
            policy_version=policy_version,
            placements=rollout.placements,
            internal=dict(rollout.internal),
            old_logp=rollout.old_logp,
            per_step_time=np.array([r.per_step_time for r in results], dtype=np.float64),
            valid=np.array([r.valid for r in results], dtype=bool),
            truncated=np.array([r.truncated for r in results], dtype=bool),
            steps_run=np.array([r.steps_run for r in results], dtype=np.int64),
            wall_clock=np.array([r.wall_clock for r in results], dtype=np.float64),
            env_wall_delta=float(env_wall_delta),
            duration_s=float(duration_s),
            start_unix=float(start_unix),
        )
