"""Versioned variable store: how the learner broadcasts policy weights.

The learner is the only writer: :meth:`VariableStore.publish` writes the
agent's ``state_dict`` as a pickled snapshot file (temp + ``os.replace``,
the ``core/checkpoint.py`` atomicity recipe) and then bumps a shared
``multiprocessing.Value`` version counter. Workers are pure readers:
:meth:`VariableStore.fetch` is one lock-free integer read when nothing
changed, and one file read when it did — no locks are held across the
pickle, so a slow worker never stalls the learner or its siblings.

The version counter is advanced only *after* the snapshot file is fully
on disk, so a reader that observes version ``v`` can always load
``weights-v``. Old snapshots are pruned two versions behind the head:
a reader racing a publish may still be opening ``v-1`` while ``v`` lands,
and the retry loop in :meth:`fetch` covers the (pathological) case of a
reader sleeping through two publishes mid-open.

File-backed rather than shared-memory by design: a SIGKILLed worker
cannot corrupt it (readers never write), a restarted worker bootstraps
from it with no learner involvement, and the latest snapshot doubles as
a crash artifact for post-mortems.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("repro.distrib.store")

_SNAP_PREFIX = "weights-"
#: Snapshots kept behind the head version (see module docstring).
_KEEP_BEHIND = 2


class VariableStore:
    """One-writer/many-reader versioned weight snapshots on disk."""

    def __init__(self, directory: str, ctx=None):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        ctx = ctx or multiprocessing.get_context()
        # 'q' = signed 64-bit; the lock-free read below is a single
        # aligned load, safe without taking the Value's lock.
        self._version = ctx.Value("q", 0)

    # -- shared paths ----------------------------------------------------
    def _path(self, version: int) -> str:
        return os.path.join(self.directory, f"{_SNAP_PREFIX}{version:08d}.pkl")

    @property
    def version(self) -> int:
        """The newest published version (0 = nothing published yet)."""
        return int(self._version.value)

    # -- learner side ----------------------------------------------------
    def publish(self, state: Dict[str, np.ndarray]) -> int:
        """Write ``state`` as the next version; returns the new version."""
        version = self.version + 1
        path = self._path(version)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".pkl.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        # Commit point: the file is complete before readers can see `version`.
        with self._version.get_lock():
            self._version.value = version
        self._prune(version)
        return version

    def _prune(self, head: int) -> None:
        for name in os.listdir(self.directory):
            if not (name.startswith(_SNAP_PREFIX) and name.endswith(".pkl")):
                continue
            try:
                v = int(name[len(_SNAP_PREFIX) : -len(".pkl")])
            except ValueError:
                continue
            if v <= head - _KEEP_BEHIND:
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - already gone
                    pass

    # -- worker side -----------------------------------------------------
    def fetch(
        self, newer_than: int = 0
    ) -> Optional[Tuple[int, Dict[str, np.ndarray]]]:
        """``(version, state)`` if anything newer than ``newer_than`` is
        published, else ``None`` (one integer read, no file touch).

        If the file for the observed version was pruned between the
        version read and the open — the reader slept through multiple
        publishes — the read retries against the new head.
        """
        while True:
            version = self.version
            if version <= newer_than:
                return None
            try:
                with open(self._path(version), "rb") as fh:
                    return version, pickle.load(fh)
            except FileNotFoundError:
                # Pruned under us; the head has necessarily advanced.
                if self.version == version:  # pragma: no cover - defensive
                    raise
                continue
