"""Transformer-XL placer (the GDP [33] design used as a baseline).

Processes the op sequence segment by segment through a Transformer-XL
stack (segment-recurrent memory + relative positions) and predicts each
op's device from its contextual representation with a linear head. The
policy is factored per op (no feedback of sampled devices), as in GDP.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import Linear, Tensor, TransformerXL, concat
from repro.placers.base import Placer, PlacerOutput, logits_to_choice
from repro.utils.rng import new_rng


class TransformerXLPlacer(Placer):
    def __init__(
        self,
        input_dim: int,
        num_devices: int,
        model_dim: int = 128,
        n_layers: int = 2,
        n_heads: int = 4,
        segment_size: int = 128,
        mem_len: Optional[int] = None,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        if segment_size < 1:
            raise ValueError("segment_size must be positive")
        self.input_dim = input_dim
        self.num_devices = num_devices
        self.segment_size = segment_size
        self.in_proj = Linear(input_dim, model_dim, rng=rng)
        self.transformer = TransformerXL(
            dim=model_dim,
            n_layers=n_layers,
            n_heads=n_heads,
            mem_len=mem_len if mem_len is not None else segment_size,
            rng=rng,
        )
        self.head = Linear(model_dim, num_devices, rng=rng)

    def run(
        self,
        reps: Tensor,
        n_samples: int = 1,
        actions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ) -> PlacerOutput:
        n_ops = reps.shape[0]
        B = n_samples if actions is None else actions.shape[0]

        seq = self.in_proj(reps).reshape(n_ops, 1, -1)
        self.transformer.reset_memory()
        logits_parts: List[Tensor] = []
        for lo in range(0, n_ops, self.segment_size):
            segment = seq[lo : min(lo + self.segment_size, n_ops)]
            out = self.transformer(segment)  # (s, 1, dim)
            logits_parts.append(self.head(out))
        logits = concat(logits_parts, axis=0).reshape(n_ops, self.num_devices)
        # Factored policy: the same per-op categorical serves every sample.
        batched = logits.broadcast_to((B, n_ops, self.num_devices)) if B > 1 else logits.reshape(1, n_ops, self.num_devices)
        choices, logp, ent = logits_to_choice(batched, rng, actions, greedy)
        return PlacerOutput(actions=choices, log_probs=logp, entropy=ent)
