"""Placer networks: map node representations to per-op device choices.

Four designs from the paper's placer study (Section 3.3, Table 1):

* :class:`SegmentSeq2SeqPlacer` — Mars's segment-level seq2seq placer;
* plain seq2seq — the same class with ``segment_size=None``;
* :class:`TransformerXLPlacer` — the GDP-style attention placer;
* :class:`MLPPlacer` — the two-layer MLP strawman;

plus :class:`MLPGrouper`, the learned grouper of the grouper-placer
baseline [20].
"""

from repro.placers.base import Placer, PlacerOutput, sample_categorical
from repro.placers.segment_seq2seq import SegmentSeq2SeqPlacer
from repro.placers.transformer_placer import TransformerXLPlacer
from repro.placers.mlp_placer import MLPPlacer
from repro.placers.grouper import MLPGrouper

__all__ = [
    "Placer",
    "PlacerOutput",
    "sample_categorical",
    "SegmentSeq2SeqPlacer",
    "TransformerXLPlacer",
    "MLPPlacer",
    "MLPGrouper",
]
