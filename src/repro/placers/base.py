"""Shared placer interface and categorical sampling utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn import Module, Tensor
from repro.nn.functional import log_softmax


@dataclass
class PlacerOutput:
    """Result of running a placer over a node-representation sequence.

    ``log_probs``/``entropy`` are differentiable tensors of shape
    ``(batch, num_ops)`` — per-op log-likelihood of the chosen device and
    per-op policy entropy.
    """

    actions: np.ndarray
    log_probs: Tensor
    entropy: Tensor


def sample_categorical(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorized sampling from rows of a ``(..., K)`` probability array."""
    r = rng.random(probs.shape[:-1] + (1,))
    cdf = np.cumsum(probs, axis=-1)
    # Guard the final edge against floating-point undershoot.
    cdf[..., -1] = 1.0 + 1e-12
    return (r > cdf).sum(axis=-1).astype(np.int64)


def logits_to_choice(
    logits: Tensor,
    rng: Optional[np.random.Generator],
    actions: Optional[np.ndarray],
    greedy: bool = False,
) -> Tuple[np.ndarray, Tensor, Tensor]:
    """Sample (or teacher-force) device choices from ``logits (..., K)``.

    Returns ``(choices, log_prob, entropy)`` where the latter two are
    differentiable and have the leading shape of ``logits``.
    """
    logp = log_softmax(logits, axis=-1)
    if actions is None:
        if greedy:
            choices = np.argmax(logits.data, axis=-1).astype(np.int64)
        else:
            if rng is None:
                raise ValueError("sampling requires an rng")
            probs = np.exp(logp.data)
            probs /= probs.sum(axis=-1, keepdims=True)
            choices = sample_categorical(probs, rng)
    else:
        choices = np.asarray(actions, dtype=np.int64)
    idx = tuple(np.indices(choices.shape)) + (choices,)
    chosen_logp = logp[idx]
    p = logp.exp()
    entropy = -(p * logp).sum(axis=-1)
    return choices, chosen_logp, entropy


class Placer(Module):
    """Common interface: run over ``reps`` and produce a placement batch."""

    num_devices: int

    def run(
        self,
        reps: Tensor,
        n_samples: int = 1,
        actions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ) -> PlacerOutput:  # pragma: no cover - abstract
        """``reps`` is ``(num_ops, dim)``; ``actions`` (if given) is
        ``(n_samples, num_ops)`` and is scored instead of sampling."""
        raise NotImplementedError

    def forward(self, *args, **kwargs) -> PlacerOutput:
        return self.run(*args, **kwargs)
