"""The segment-level sequence-to-sequence placer (paper Section 3.3, Fig. 6).

The op sequence is split into segments of length ``segment_size``. Each
segment is encoded by a bidirectional LSTM; a unidirectional LSTM decoder
with context-based input attention (over the current segment's memory)
emits a device for every op, feeding back an embedding of the previous
device choice. When moving to the next segment, both the encoder's forward
state and the decoder state carry over — "the placer recalls previous
decisions when predicting the placement of the next segment".

With ``segment_size=None`` the whole sequence is one segment, which is
exactly the *plain* seq2seq placer of the comparison in Table 1.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import BahdanauAttention, BiLSTM, Embedding, LSTMCell, Linear, Tensor, concat, stack
from repro.placers.base import Placer, PlacerOutput, logits_to_choice, sample_categorical
from repro.utils.rng import new_rng


def _choose(logits: np.ndarray, rng: Optional[np.random.Generator], greedy: bool) -> np.ndarray:
    """Sample (or argmax) device indices from raw per-sample logits."""
    if greedy:
        return np.argmax(logits, axis=-1).astype(np.int64)
    if rng is None:
        raise ValueError("sampling requires an rng")
    shifted = logits - logits.max(axis=-1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=-1, keepdims=True)
    return sample_categorical(probs, rng)


class SegmentSeq2SeqPlacer(Placer):
    """Mars's placer: bi-LSTM encoder + attention LSTM decoder, per segment."""

    def __init__(
        self,
        input_dim: int,
        num_devices: int,
        hidden_size: int = 512,
        segment_size: Optional[int] = 128,
        attn_size: Optional[int] = None,
        action_embed_dim: int = 32,
        rng=None,
    ):
        super().__init__()
        rng = new_rng(rng)
        if segment_size is not None and segment_size < 1:
            raise ValueError("segment_size must be positive or None")
        self.input_dim = input_dim
        self.num_devices = num_devices
        self.hidden_size = hidden_size
        self.segment_size = segment_size
        attn_size = attn_size or hidden_size // 2

        self.encoder = BiLSTM(input_dim, hidden_size, rng=rng)
        self.decoder_cell = LSTMCell(hidden_size + action_embed_dim, hidden_size, rng=rng)
        self.attention = BahdanauAttention(hidden_size, hidden_size, attn_size, rng=rng)
        # <start> token is index ``num_devices``.
        self.action_embed = Embedding(num_devices + 1, action_embed_dim, rng=rng)
        self.head = Linear(2 * hidden_size, num_devices, rng=rng)

    # ------------------------------------------------------------------
    def _segments(self, n_ops: int) -> List[slice]:
        size = self.segment_size or n_ops
        return [slice(lo, min(lo + size, n_ops)) for lo in range(0, n_ops, size)]

    def run(
        self,
        reps: Tensor,
        n_samples: int = 1,
        actions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ) -> PlacerOutput:
        n_ops = reps.shape[0]
        B = n_samples if actions is None else actions.shape[0]
        if actions is not None and actions.shape != (B, n_ops):
            raise ValueError(f"actions shape {actions.shape} != ({B}, {n_ops})")

        # The representation sequence is shared across the sample batch;
        # keep it at batch 1 and let broadcasting against the batched
        # decoder state do the fan-out (gradients sum back correctly).
        seq = reps.reshape(n_ops, 1, self.input_dim)

        enc_fwd_state = None  # carried across segments
        dec_state = None
        prev_action = np.full(B, self.num_devices, dtype=np.int64)  # <start>

        all_actions: List[np.ndarray] = []
        all_logits: List[Tensor] = []

        for seg in self._segments(n_ops):
            mem, (enc_fwd_state, enc_bwd_state) = self.encoder(
                seq[seg], (enc_fwd_state, None)
            )
            if dec_state is None:
                h0, c0 = BiLSTM.merge_state((enc_fwd_state, enc_bwd_state))
                dec_state = (
                    h0.broadcast_to((B, self.hidden_size)),
                    c0.broadcast_to((B, self.hidden_size)),
                )
            # Precompute the (batch-independent) encoded-op part of the
            # decoder input projection: one fused matmul per segment.
            w = self.decoder_cell.w_ih
            enc_gates = mem @ w[: self.hidden_size] + self.decoder_cell.bias  # (s,1,4H)
            w_act = w[self.hidden_size :]

            for t in range(seg.stop - seg.start):
                act_emb = self.action_embed(prev_action)  # (B, a)
                gates_x = enc_gates[t] + act_emb @ w_act  # (B, 4H) via broadcast
                dec_state = self.decoder_cell.step(gates_x, dec_state)
                h = dec_state[0]
                ctx = self.attention(mem, h)  # (B, H)
                logits = self.head(concat([h, ctx], axis=1))  # (B, D)
                all_logits.append(logits)
                if actions is None:
                    choice = _choose(logits.data, rng, greedy)
                else:
                    choice = actions[:, seg.start + t]
                all_actions.append(choice)
                prev_action = choice

        chosen = np.stack(all_actions, axis=1)
        # Score every op in one stacked softmax (cheaper than per-step).
        logits_all = stack(all_logits, axis=1)  # (B, N, D)
        _, logp, ent = logits_to_choice(logits_all, None, actions=chosen)
        return PlacerOutput(actions=chosen, log_probs=logp, entropy=ent)
