"""Two-layer MLP placer — the simplest design considered in Section 3.3.

The paper observes it "easily overfits, gets stuck at a local optimum and
can never find a good placement"; it is included for the placer-design
ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import MLP, Tensor
from repro.placers.base import Placer, PlacerOutput, logits_to_choice
from repro.utils.rng import new_rng


class MLPPlacer(Placer):
    def __init__(self, input_dim: int, num_devices: int, hidden_size: int = 256, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.num_devices = num_devices
        self.net = MLP([input_dim, hidden_size, num_devices], activation="relu", rng=rng)

    def run(
        self,
        reps: Tensor,
        n_samples: int = 1,
        actions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ) -> PlacerOutput:
        n_ops = reps.shape[0]
        B = n_samples if actions is None else actions.shape[0]
        logits = self.net(reps)  # (N, D), factored per op
        batched = logits.broadcast_to((B, n_ops, self.num_devices)) if B > 1 else logits.reshape(1, n_ops, self.num_devices)
        choices, logp, ent = logits_to_choice(batched, rng, actions, greedy)
        return PlacerOutput(actions=choices, log_probs=logp, entropy=ent)
