"""The learned grouper of the grouper-placer baseline [20].

A feed-forward network maps each op's raw features to a categorical over
``num_groups``; ops sampled into the same group are merged by averaging
their features into a group embedding, which a seq2seq placer then places.
The grouper is trained jointly with the placer by policy gradient — the
log-probability of a full decision is the sum of per-op group
log-probabilities and per-group device log-probabilities.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import MLP, Module, Tensor
from repro.placers.base import logits_to_choice
from repro.utils.rng import new_rng


class MLPGrouper(Module):
    """Two-layer MLP producing a group distribution per op."""

    def __init__(self, input_dim: int, num_groups: int, hidden_size: int = 64, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.num_groups = num_groups
        self.net = MLP([input_dim, hidden_size, num_groups], activation="relu", rng=rng)

    def run(
        self,
        features: Tensor,
        n_samples: int = 1,
        actions: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ):
        """Sample (or score) group assignments; returns ``(groups, logp, ent)``
        with ``groups`` of shape ``(B, num_ops)``."""
        n_ops = features.shape[0]
        B = n_samples if actions is None else actions.shape[0]
        logits = self.net(features)  # (N, G)
        batched = logits.broadcast_to((B, n_ops, self.num_groups)) if B > 1 else logits.reshape(1, n_ops, self.num_groups)
        return logits_to_choice(batched, rng, actions, greedy)

    @staticmethod
    def group_embeddings(features: np.ndarray, groups: np.ndarray, num_groups: int) -> np.ndarray:
        """Mean op features per group, batched over samples.

        ``features`` is ``(N, F)``, ``groups`` is ``(B, N)``; the result is
        ``(B, num_groups, F)`` with zero vectors for empty groups (matching
        the hierarchical model, where group embeddings are feature averages
        and carry no gradient to the grouper — credit flows via REINFORCE).
        """
        B, n = groups.shape
        out = np.zeros((B, num_groups, features.shape[1]))
        counts = np.zeros((B, num_groups))
        for b in range(B):
            np.add.at(out[b], groups[b], features)
            counts[b] = np.bincount(groups[b], minlength=num_groups)
        nonzero = counts > 0
        out[nonzero] /= counts[nonzero][:, None]
        return out
