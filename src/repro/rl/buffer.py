"""Rollout buffer: the last ``capacity`` sampled placements with their
sampling-time log-probs and advantages.

The paper updates on the most recent 20 samples (two policies' worth),
shuffled into four mini-batches, for three epochs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.rl.policy import AgentRollout


class RolloutBuffer:
    def __init__(self, capacity: int = 20):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rollouts: List[AgentRollout] = []
        self._advantages: List[np.ndarray] = []

    def add(self, rollout: AgentRollout, advantages: np.ndarray) -> None:
        if len(advantages) != rollout.batch_size:
            raise ValueError("advantage/rollout size mismatch")
        self._rollouts.append(rollout)
        self._advantages.append(np.asarray(advantages, dtype=float))
        # Trim oldest entries beyond capacity (whole rollouts at a time).
        while self.size > self.capacity and len(self._rollouts) > 1:
            self._rollouts.pop(0)
            self._advantages.pop(0)

    @property
    def size(self) -> int:
        return sum(r.batch_size for r in self._rollouts)

    def is_ready(self, minimum: Optional[int] = None) -> bool:
        return self.size >= (minimum if minimum is not None else self.capacity)

    def merged(self) -> "tuple[AgentRollout, np.ndarray]":
        if not self._rollouts:
            raise ValueError("buffer is empty")
        rollout = AgentRollout.concatenate(self._rollouts)
        adv = np.concatenate(self._advantages)
        return rollout, adv

    def clear(self) -> None:
        self._rollouts.clear()
        self._advantages.clear()

    def state_dict(self) -> dict:
        """Buffered rollouts + advantages as plain arrays (npz-friendly)."""
        return {
            "rollouts": [
                {
                    "placements": r.placements.copy(),
                    "old_logp": r.old_logp.copy(),
                    "internal": {k: v.copy() for k, v in r.internal.items()},
                }
                for r in self._rollouts
            ],
            "advantages": [a.copy() for a in self._advantages],
        }

    def load_state_dict(self, state: dict) -> None:
        rollouts = state["rollouts"]
        advantages = state["advantages"]
        if len(rollouts) != len(advantages):
            raise ValueError("rollout/advantage list length mismatch")
        self._rollouts = [
            AgentRollout(
                placements=np.asarray(r["placements"]),
                internal={k: np.asarray(v) for k, v in r["internal"].items()},
                old_logp=np.asarray(r["old_logp"]),
            )
            for r in rollouts
        ]
        self._advantages = [np.asarray(a, dtype=float) for a in advantages]
