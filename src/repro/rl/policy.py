"""The policy-agent interface the RL machinery trains.

A policy agent owns whatever networks it needs (encoder + placer, or
grouper + placer) and exposes two operations:

* :meth:`PolicyAgent.sample` — draw ``n`` placements (gradient-free), and
* :meth:`PolicyAgent.evaluate` — re-score stored decisions differentiably.

Decisions are *factored*: a sample consists of K categorical decisions
(one per op for encoder-placer agents; one per op plus one per group for
the grouper-placer). PPO operates on per-decision ratios, which is far
more stable than a single joint ratio over hundreds of ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.nn import Module, Tensor


@dataclass
class AgentRollout:
    """A batch of sampled placements plus what is needed to re-score them."""

    placements: np.ndarray  # (B, num_ops) device index per op, for the env
    internal: Dict[str, np.ndarray]  # per-decision actions, agent-specific
    old_logp: np.ndarray  # (B, K) log-probs at sampling time (detached)

    @property
    def batch_size(self) -> int:
        return self.placements.shape[0]

    def subset(self, idx: np.ndarray) -> "AgentRollout":
        return AgentRollout(
            placements=self.placements[idx],
            internal={k: v[idx] for k, v in self.internal.items()},
            old_logp=self.old_logp[idx],
        )

    @staticmethod
    def concatenate(parts: list) -> "AgentRollout":
        keys = parts[0].internal.keys()
        return AgentRollout(
            placements=np.concatenate([p.placements for p in parts], axis=0),
            internal={k: np.concatenate([p.internal[k] for p in parts], axis=0) for k in keys},
            old_logp=np.concatenate([p.old_logp for p in parts], axis=0),
        )


class PolicyAgent(Module):
    """Base class for trainable placement policies."""

    num_ops: int
    num_devices: int

    @property
    def feature_dim(self) -> int:
        """Width of the node-feature matrix the agent was built over, or
        0 when the agent doesn't consume node features. Checkpoints record
        it so a load against a mismatched feature extractor fails with a
        clear error instead of a shape crash mid-forward."""
        features = getattr(self, "features", None)
        if features is None:
            return 0
        return int(features.shape[1])

    def sample(self, n_samples: int, rng, greedy: bool = False) -> AgentRollout:
        raise NotImplementedError  # pragma: no cover

    def evaluate(self, internal: Dict[str, np.ndarray]) -> Tuple[Tensor, Tensor]:
        """Return differentiable ``(log_probs (B,K), entropy (B,K))``."""
        raise NotImplementedError  # pragma: no cover

    def update_flops(self, batch_size: int) -> float:
        """Rough FLOPs of one evaluate+backward pass — used to model the
        agent's own compute time in the simulated training clock (Fig 8).

        A recurrent placer touches all its parameters once per op, and a
        backward pass costs about twice the forward pass.
        """
        return 6.0 * self.num_parameters() * batch_size * max(self.num_ops, 1)
