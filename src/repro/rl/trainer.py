"""Joint RL training loop with simulated training-clock accounting.

One iteration = one policy: sample ``samples_per_policy`` placements,
measure them in the environment, convert runtimes to advantages, and run
the updater once at least ``update_min_samples`` samples are buffered
(paper: 10 samples per policy, updates over the last 20).

The *simulated training clock* is the quantity Fig. 8 reports: the
environment charges re-initialization, warm-up and measurement steps for
every placement evaluation (OOM and cutoff placements cost what they cost
on a real machine), and the agent's own forward/backward compute is added
from a FLOP estimate. Pre-training time, when used, is added by the agent
wrapper before training starts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.rl.buffer import RolloutBuffer
from repro.rl.cem import CEMConfig, CEMUpdater
from repro.rl.policy import PolicyAgent
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.reinforce import ReinforceConfig, ReinforceUpdater
from repro.rl.reward import RewardConfig, RewardTracker
from repro.sim.env import PlacementEnv
from repro.telemetry import Telemetry, get_telemetry
from repro.telemetry.health import HealthConfig, HealthWatchdog
from repro.telemetry.tracing import span
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

logger = get_logger("repro.rl.trainer")

#: FLOP/s assumed for the device the *agent* trains on when converting the
#: agent's own compute into simulated seconds.
AGENT_DEVICE_FLOPS = 5.0e12
AGENT_PASS_OVERHEAD = 0.02  # seconds of framework overhead per pass


@dataclass
class SearchRecord:
    """One policy iteration's worth of telemetry."""

    iteration: int
    samples_so_far: int
    runtimes: List[float]
    valid_runtimes: List[float]
    n_invalid: int
    n_truncated: int
    best_runtime: float
    baseline: float
    sim_clock: float


@dataclass
class SearchHistory:
    """Full record of one agent-training run."""

    records: List[SearchRecord] = field(default_factory=list)
    best_runtime: float = float("inf")
    best_placement: Optional[np.ndarray] = None
    sim_clock: float = 0.0  # simulated seconds (environment + agent compute)
    pretrain_clock: float = 0.0
    #: Set when the health watchdog stopped the run ("<detector>: <why>").
    halt_reason: Optional[str] = None

    @property
    def total_samples(self) -> int:
        return self.records[-1].samples_so_far if self.records else 0

    def runtime_curve(self, max_runtime: Optional[float] = None) -> "tuple[np.ndarray, np.ndarray]":
        """(sample_index, mean_valid_runtime) series — the Fig. 7 curves.

        Invalid placements and, optionally, runtimes above ``max_runtime``
        are discarded, mirroring the paper's plotting procedure.
        """
        xs, ys = [], []
        for rec in self.records:
            vals = [
                r
                for r in rec.valid_runtimes
                if max_runtime is None or r <= max_runtime
            ]
            if vals:
                xs.append(rec.samples_so_far)
                ys.append(float(np.mean(vals)))
        return np.asarray(xs), np.asarray(ys)


@dataclass
class TrainerConfig:
    iterations: int = 50
    samples_per_policy: int = 10
    update_min_samples: int = 20
    buffer_capacity: int = 20
    algorithm: str = "ppo"  # "ppo" | "reinforce" | "cem"
    ppo: PPOConfig = field(default_factory=PPOConfig)
    reinforce: ReinforceConfig = field(default_factory=ReinforceConfig)
    cem: CEMConfig = field(default_factory=CEMConfig)
    reward: RewardConfig = field(default_factory=RewardConfig)
    early_stop_samples: Optional[int] = None  # stop after this many samples
    patience_samples: Optional[int] = None  # stop if no improvement for this many
    # Only improvements of at least this relative size reset the patience
    # counter (sub-threshold best-placement trickle should not keep an
    # essentially-converged run alive).
    patience_min_improvement: float = 0.01
    log_every: int = 10
    seed: int = 0


class JointTrainer:
    """Trains a :class:`PolicyAgent` against a :class:`PlacementEnv`."""

    def __init__(
        self,
        agent: PolicyAgent,
        env: PlacementEnv,
        config: Optional[TrainerConfig] = None,
        telemetry: Optional[Telemetry] = None,
        health: Optional[HealthConfig] = None,
    ):
        self.agent = agent
        self.env = env
        # Fresh default per trainer — a shared default instance would alias.
        self.config = config = config if config is not None else TrainerConfig()
        self._telemetry = telemetry  # None -> ambient session at train()
        # Fresh default per trainer, same aliasing rationale as config.
        self.health = health if health is not None else HealthConfig()
        self.watchdog: Optional[HealthWatchdog] = None  # built per train()
        self.rng = new_rng(config.seed)
        self.tracker = RewardTracker(config.reward)
        self.buffer = RolloutBuffer(config.buffer_capacity)
        if config.algorithm == "ppo":
            self.updater = PPOUpdater(agent, config.ppo, seed=self.rng)
        elif config.algorithm == "reinforce":
            self.updater = ReinforceUpdater(agent, config.reinforce)
        elif config.algorithm == "cem":
            self.updater = CEMUpdater(agent, config.cem)
        else:
            raise ValueError(f"unknown algorithm {config.algorithm!r}")
        # Loop state mirrored onto the trainer so run-state snapshots can
        # capture it mid-train; `_pending_*` is applied (once) by the next
        # train() call after load_state_dict().
        self._samples_since_best = 0
        self._attributed_best = False
        self._pending_loop_state: Optional[dict] = None
        self._pending_watchdog_state: Optional[dict] = None

    # ------------------------------------------------------------------
    # Run-state snapshots (core/runstate.py)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything (besides agent weights and the environment) needed
        to continue training bit-identically: rng, EMA baseline, rollout
        buffer, updater/optimizer moments, loop counters, and the health
        watchdog's sliding windows."""
        return {
            "algorithm": self.config.algorithm,
            "rng_state": self.rng.bit_generator.state,
            "tracker": self.tracker.state_dict(),
            "buffer": self.buffer.state_dict(),
            "updater": self.updater.state_dict(),
            "loop": {
                "samples_since_best": int(self._samples_since_best),
                "attributed_best": bool(self._attributed_best),
            },
            # After load_state_dict (before the next train() call) the
            # watchdog windows are still pending — report those, so
            # save -> load -> save round-trips exactly.
            "watchdog": (
                self.watchdog.state_dict()
                if self.watchdog is not None
                else self._pending_watchdog_state
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        algorithm = state.get("algorithm")
        if algorithm != self.config.algorithm:
            raise ValueError(
                f"snapshot was taken with algorithm {algorithm!r}, "
                f"trainer is configured for {self.config.algorithm!r}"
            )
        self.rng.bit_generator.state = state["rng_state"]
        self.tracker.load_state_dict(state["tracker"])
        self.buffer.load_state_dict(state["buffer"])
        self.updater.load_state_dict(state["updater"])
        self._pending_loop_state = dict(state["loop"])
        self._pending_watchdog_state = state["watchdog"]
        # Mirror the loop counters immediately so a snapshot taken before
        # the next train() call reports the restored values.
        self._samples_since_best = int(state["loop"]["samples_since_best"])
        self._attributed_best = bool(state["loop"]["attributed_best"])

    def maybe_update(self, tel: Telemetry, it_index: int, watchdog) -> float:
        """Run one updater pass if enough samples are buffered.

        The single update path shared by :meth:`train` and the
        distributed learner (``repro.distrib``): merge the rollout
        buffer, run the configured updater, record update telemetry and
        feed the health watchdog. Returns the *simulated* seconds of
        agent compute this update cost (0.0 when the buffer was not yet
        ready), derived from the agent's FLOP estimate exactly as Fig. 8
        accounts it.
        """
        cfg = self.config
        if not self.buffer.is_ready(cfg.update_min_samples):
            return 0.0
        merged, advs = self.buffer.merged()
        with tel.profile_section("train.update"):
            stats = self.updater.update(merged, advs)
        pass_batch = max(1, merged.batch_size // max(getattr(cfg.ppo, "minibatches", 1), 1))
        agent_seconds = stats.passes * (
            self.agent.update_flops(pass_batch) / AGENT_DEVICE_FLOPS
            + AGENT_PASS_OVERHEAD
        )
        tel.counter("trainer.updates").inc()
        tel.histogram("trainer.entropy").observe(stats.entropy)
        tel.histogram("trainer.clip_fraction").observe(stats.clip_fraction)
        tel.histogram("trainer.approx_kl").observe(stats.approx_kl)
        tel.histogram("trainer.policy_loss").observe(stats.policy_loss)
        tel.histogram("trainer.grad_norm").observe(stats.grad_norm)
        tel.emit(
            "update",
            iteration=it_index,
            policy_loss=float(stats.policy_loss),
            entropy=float(stats.entropy),
            clip_fraction=float(stats.clip_fraction),
            approx_kl=float(stats.approx_kl),
            grad_norm=float(stats.grad_norm),
            passes=int(stats.passes),
        )
        watchdog.observe_update(it_index, stats)
        return agent_seconds

    def train(
        self,
        history: Optional[SearchHistory] = None,
        run_state=None,
    ) -> SearchHistory:
        """Run the search; an existing ``history`` continues (fine-tuning).

        ``run_state`` is an optional :class:`repro.core.runstate.RunStateManager`:
        it snapshots the run every ``snapshot_every`` iterations and, when a
        SIGTERM/SIGINT halt was requested, after the current iteration —
        the loop then stops with ``history.halt_reason = "signal: ..."``.
        """
        cfg = self.config
        tel = self._telemetry or get_telemetry()
        history = history or SearchHistory()
        if not history.records and history.sim_clock < history.pretrain_clock:
            history.sim_clock = history.pretrain_clock
        env_clock_start = self.env.stats.wall_clock
        samples = history.total_samples
        self.watchdog = watchdog = HealthWatchdog(self.health, telemetry=tel)
        if self._pending_watchdog_state is not None:
            watchdog.load_state_dict(self._pending_watchdog_state)
            self._pending_watchdog_state = None
        if self._pending_loop_state is not None:
            samples_since_best = int(self._pending_loop_state["samples_since_best"])
            attributed_best = bool(self._pending_loop_state["attributed_best"])
            self._pending_loop_state = None
        else:
            samples_since_best = 0
            attributed_best = False  # best placement already attributed?

        for it in range(cfg.iterations):
            it_index = len(history.records)
            iter_wall_start = time.perf_counter()
            # One span per policy iteration: inside a traced run (the
            # search.optimize root), env.evaluate_batch and its worker spans
            # nest under it; otherwise this is the shared no-op.
            with span("trainer.iteration", telemetry=tel, iteration=it_index):
                with tel.profile_section("train.sample"):
                    rollout = self.agent.sample(cfg.samples_per_policy, self.rng)
                with tel.profile_section("train.evaluate"):
                    # Batched: dedupe against the result cache, then fan unique
                    # placements across the evaluation pool (sim/batch.py).
                    results = self.env.evaluate_batch(rollout.placements)
                runtimes = [res.per_step_time for res in results]
                _, advantages = self.tracker.compute(runtimes)
                self.buffer.add(rollout, advantages)
                samples += len(results)
                tel.counter("trainer.samples").inc(len(results))
                reward_hist = tel.histogram("trainer.sample_runtime")
                for res in results:
                    if res.ok:
                        reward_hist.observe(res.per_step_time)
                if tel.sample_events:
                    for i, res in enumerate(results):
                        tel.emit(
                            "sample",
                            iteration=it_index,
                            index=i,
                            runtime=float(res.per_step_time),
                            valid=bool(res.valid),
                            truncated=bool(res.truncated),
                            advantage=float(advantages[i]),
                        )

                improved = False
                patience_bar = history.best_runtime * (1.0 - cfg.patience_min_improvement)
                for res, placement in zip(results, rollout.placements):
                    if res.ok and res.per_step_time < history.best_runtime:
                        if res.per_step_time < patience_bar:
                            improved = True
                        history.best_runtime = res.per_step_time
                        history.best_placement = placement.copy()
                        attributed_best = False
                samples_since_best = 0 if improved else samples_since_best + len(results)
                if improved and history.best_placement is not None:
                    # Explain each significantly-improved best placement:
                    # one traced scheduler pass -> `attribution` event +
                    # env.critical_path_* gauges (docs/observability.md).
                    self.env.record_attribution(history.best_placement, iteration=it_index)
                    attributed_best = True

                agent_seconds = self.maybe_update(tel, it_index, watchdog)

                # The env clock is cumulative; fold in this iteration's delta.
                delta_env = self.env.stats.wall_clock - env_clock_start
                env_clock_start = self.env.stats.wall_clock
                history.sim_clock += delta_env + agent_seconds
                sim_clock = history.sim_clock

                record = SearchRecord(
                    iteration=len(history.records),
                    samples_so_far=samples,
                    runtimes=list(runtimes),
                    valid_runtimes=[r.per_step_time for r in results if r.valid],
                    n_invalid=sum(not r.valid for r in results),
                    n_truncated=sum(r.truncated for r in results),
                    best_runtime=history.best_runtime,
                    baseline=self.tracker.baseline,
                    sim_clock=sim_clock,
                )
                history.records.append(record)
                history.sim_clock = sim_clock

                # Wall vs simulated clock: `wall_seconds` is real time this
                # iteration cost us; `sim_clock` is what it would have cost on
                # the paper's testbed (the Fig. 8 quantity).
                iter_wall = time.perf_counter() - iter_wall_start
                tel.counter("trainer.iterations").inc()
                tel.histogram("trainer.iteration_wall_s").observe(iter_wall)
                tel.gauge("trainer.best_runtime").set(history.best_runtime)
                tel.gauge("trainer.baseline").set(record.baseline)
                tel.gauge("trainer.sim_clock").set(sim_clock)
                tel.emit(
                    "iteration",
                    iteration=it_index,
                    samples=int(samples),
                    best_runtime=float(history.best_runtime),
                    baseline=float(record.baseline),
                    n_invalid=int(record.n_invalid),
                    n_truncated=int(record.n_truncated),
                    sim_clock=float(sim_clock),
                    wall_seconds=float(iter_wall),
                )

                if cfg.log_every and (it + 1) % cfg.log_every == 0:
                    logger.info(
                        "[%s] iter %d samples %d best %.4fs baseline %.3f invalid %d",
                        self.env.graph.name,
                        it + 1,
                        samples,
                        history.best_runtime,
                        record.baseline,
                        record.n_invalid,
                    )
                watchdog.observe_iteration(
                    it_index,
                    best_runtime=history.best_runtime,
                    n_invalid=record.n_invalid,
                    n_samples=len(results),
                )
                halt_signal = None
                if run_state is not None:
                    self._samples_since_best = samples_since_best
                    self._attributed_best = attributed_best
                    # Snapshot when due (and always before a halt, so neither a
                    # signal nor the watchdog ever throws away finished work).
                    halt_signal = run_state.after_iteration(
                        self, history, tel, force=watchdog.halted
                    )
                if halt_signal:
                    history.halt_reason = f"signal: {halt_signal}"
                    tel.update_manifest(halted=True, halt_reason=history.halt_reason)
                    logger.warning(
                        "[%s] %s received — snapshotted after iteration %d and stopping",
                        self.env.graph.name,
                        halt_signal,
                        it + 1,
                    )
                    break
                if watchdog.halted:
                    history.halt_reason = watchdog.halt_reason
                    tel.update_manifest(halted=True, halt_reason=watchdog.halt_reason)
                    logger.error(
                        "[%s] health watchdog halted the run at iteration %d: %s",
                        self.env.graph.name,
                        it + 1,
                        watchdog.halt_reason,
                    )
                    break
                if cfg.early_stop_samples is not None and samples >= cfg.early_stop_samples:
                    break
                if cfg.patience_samples is not None and samples_since_best >= cfg.patience_samples:
                    logger.info("early stop: no improvement in %d samples", samples_since_best)
                    break
        if history.best_placement is not None and not attributed_best:
            # The run ended on a best found before this train() call (or on
            # a sub-threshold trickle improvement): still leave one final
            # best-placement attribution event for the report CLI.
            self.env.record_attribution(
                history.best_placement,
                iteration=history.records[-1].iteration if history.records else -1,
            )
        if run_state is not None:
            # Terminal snapshot (skipped if one was just written for this
            # iteration count): a completed run resumes as a no-op, and an
            # early-stopped run resumes from exactly where it stopped.
            self._samples_since_best = samples_since_best
            self._attributed_best = attributed_best
            run_state.snapshot_if_new(self, history, tel, reason="final")
        return history
