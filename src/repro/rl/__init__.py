"""Reinforcement-learning machinery (paper Section 3.4).

PPO with the paper's hyper-parameters, the reward transform
``R = -sqrt(per_step_time)`` with an exponential-moving-average baseline,
rollout buffers over factored placement policies, and the joint training
loop that also accounts for the simulated wall-clock cost of training the
agent (Fig. 8).
"""

from repro.rl.policy import PolicyAgent, AgentRollout
from repro.rl.reward import RewardConfig, RewardTracker
from repro.rl.buffer import RolloutBuffer
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.reinforce import ReinforceUpdater
from repro.rl.cem import CEMConfig, CEMUpdater
from repro.rl.trainer import TrainerConfig, JointTrainer, SearchHistory, SearchRecord

__all__ = [
    "PolicyAgent",
    "AgentRollout",
    "RewardConfig",
    "RewardTracker",
    "RolloutBuffer",
    "PPOConfig",
    "PPOUpdater",
    "ReinforceUpdater",
    "CEMConfig",
    "CEMUpdater",
    "TrainerConfig",
    "JointTrainer",
    "SearchHistory",
    "SearchRecord",
]
