"""REINFORCE updater — the algorithm of the original device-placement work
(Mirhoseini et al., 2017). Included as an RL-algorithm ablation against PPO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import Adam, clip_grad_norm
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.rl.ppo import UpdateStats


@dataclass
class ReinforceConfig:
    entropy_coef: float = 1e-3
    learning_rate: float = 3e-4
    grad_clip_norm: float = 1.0


class ReinforceUpdater:
    """Single on-policy gradient step per batch of fresh samples."""

    def __init__(self, agent: PolicyAgent, config: Optional[ReinforceConfig] = None, seed=None):
        self.agent = agent
        # Fresh default per updater — a shared default instance would alias.
        self.config = config if config is not None else ReinforceConfig()
        self.optimizer = Adam(agent.parameters(), lr=self.config.learning_rate)

    def state_dict(self) -> dict:
        return {"optimizer": self.optimizer.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.optimizer.load_state_dict(state["optimizer"])

    def update(self, rollout: AgentRollout, advantages: np.ndarray) -> UpdateStats:
        cfg = self.config
        adv = advantages[:, None]
        logp, entropy = self.agent.evaluate(rollout.internal)
        policy_loss = -((logp * adv).mean())
        loss = policy_loss - cfg.entropy_coef * entropy.mean()
        self.optimizer.zero_grad()
        loss.backward()
        norm = clip_grad_norm(self.agent.parameters(), cfg.grad_clip_norm)
        self.optimizer.step()
        # Unified health fields (consumed by the telemetry watchdog):
        # policy_loss excludes the entropy bonus, matching PPO, and
        # approx_kl measures how far the policy has drifted since the
        # buffered samples were drawn (0 for a purely fresh batch).
        return UpdateStats(
            policy_loss=float(policy_loss.item()),
            entropy=float(entropy.data.mean()),
            clip_fraction=0.0,  # no clipping in vanilla REINFORCE
            approx_kl=float(np.mean(rollout.old_logp - logp.data)),
            grad_norm=norm,
            passes=1,
        )
