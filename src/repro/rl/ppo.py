"""Proximal policy optimization (Schulman et al., 2017) — paper §3.4/§4.2.

Hyper-parameters follow Section 4.2: clip ratio 0.2, entropy coefficient
0.001, Adam with lr 3e-4, gradient clipping at norm 1.0; 10 placements
sampled per policy, updates over the last 20 samples in 4 mini-batches for
3 epochs.

The surrogate is computed per decision (per op, and per group for the
grouper-placer) with the sample's advantage broadcast over its decisions —
the standard factored-action PPO formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.nn import Adam, Tensor, clip_grad_norm, minimum
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.utils.rng import new_rng


@dataclass
class PPOConfig:
    clip_ratio: float = 0.2
    entropy_coef: float = 1e-3
    learning_rate: float = 3e-4
    epochs: int = 3
    minibatches: int = 4
    grad_clip_norm: float = 1.0


@dataclass
class UpdateStats:
    policy_loss: float = 0.0
    entropy: float = 0.0
    clip_fraction: float = 0.0
    approx_kl: float = 0.0  # mean(logp_old - logp_new) over decisions
    grad_norm: float = 0.0
    passes: int = 0


class PPOUpdater:
    """Owns the optimizer and performs the clipped-surrogate updates."""

    def __init__(self, agent: PolicyAgent, config: Optional[PPOConfig] = None, seed=None):
        self.agent = agent
        # A fresh default per updater: a shared `config=PPOConfig()` default
        # would alias one instance across every updater in the process.
        self.config = config if config is not None else PPOConfig()
        self.optimizer = Adam(agent.parameters(), lr=self.config.learning_rate)
        self.rng = new_rng(seed)

    def state_dict(self) -> dict:
        """Optimizer moments + shuffle-rng state, for crash-safe resume.

        When the trainer shares its Generator with the updater (the usual
        wiring), restoring both is idempotent — they are the same object.
        """
        return {
            "optimizer": self.optimizer.state_dict(),
            "rng_state": self.rng.bit_generator.state,
        }

    def load_state_dict(self, state: dict) -> None:
        self.optimizer.load_state_dict(state["optimizer"])
        self.rng.bit_generator.state = state["rng_state"]

    def update(self, rollout: AgentRollout, advantages: np.ndarray) -> UpdateStats:
        cfg = self.config
        n = rollout.batch_size
        stats = UpdateStats()
        for _ in range(cfg.epochs):
            perm = self.rng.permutation(n)
            for chunk in np.array_split(perm, min(cfg.minibatches, n)):
                if len(chunk) == 0:
                    continue
                sub = rollout.subset(chunk)
                adv = advantages[chunk][:, None]  # broadcast over decisions
                logp, entropy = self.agent.evaluate(sub.internal)
                ratio = (logp - Tensor(sub.old_logp)).exp()
                clipped = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio)
                surrogate = minimum(ratio * adv, clipped * adv)
                loss = -(surrogate.mean()) - cfg.entropy_coef * entropy.mean()

                self.optimizer.zero_grad()
                loss.backward()
                norm = clip_grad_norm(self.agent.parameters(), cfg.grad_clip_norm)
                self.optimizer.step()

                stats.policy_loss += float(-surrogate.mean().item())
                stats.entropy += float(entropy.data.mean())
                stats.clip_fraction += float(
                    np.mean(np.abs(ratio.data - 1.0) > cfg.clip_ratio)
                )
                stats.approx_kl += float(np.mean(sub.old_logp - logp.data))
                stats.grad_norm += norm
                stats.passes += 1
        if stats.passes:
            stats.policy_loss /= stats.passes
            stats.entropy /= stats.passes
            stats.clip_fraction /= stats.passes
            stats.approx_kl /= stats.passes
            stats.grad_norm /= stats.passes
        return stats
