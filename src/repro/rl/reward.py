"""Reward shaping (paper Eq. 7).

``R_t = -sqrt(r_t)`` where ``r_t`` is the measured per-step time;
the baseline is an exponential moving average of rewards
(``mu = 0.99``) and the advantage is ``R_t - B_t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


def transform_runtime(runtime: float, kind: str = "neg_sqrt") -> float:
    """Map a per-step time to a reward. ``neg_sqrt`` is the paper's choice;
    ``neg`` and ``neg_log`` are provided for the reward-shaping ablation."""
    if runtime <= 0:
        raise ValueError(f"runtime must be positive, got {runtime}")
    if kind == "neg_sqrt":
        return -float(np.sqrt(runtime))
    if kind == "neg":
        return -float(runtime)
    if kind == "neg_log":
        return -float(np.log(runtime))
    raise ValueError(f"unknown reward transform {kind!r}")


@dataclass
class RewardConfig:
    transform: str = "neg_sqrt"
    ema_mu: float = 0.99
    advantage_normalization: bool = False


class RewardTracker:
    """Stateful reward/advantage computation across a training run."""

    def __init__(self, config: Optional[RewardConfig] = None):
        # Fresh default per tracker — a shared default instance would alias.
        self.config = config if config is not None else RewardConfig()
        self._baseline: float = 0.0
        self._initialized = False

    @property
    def baseline(self) -> float:
        return self._baseline

    def state_dict(self) -> dict:
        return {"baseline": float(self._baseline), "initialized": bool(self._initialized)}

    def load_state_dict(self, state: dict) -> None:
        self._baseline = float(state["baseline"])
        self._initialized = bool(state["initialized"])

    def compute(self, runtimes: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """Rewards and advantages for a batch of measured runtimes.

        The EMA baseline is updated sample by sample, in order; ``B_1 = R_1``
        (Eq. 7: there is no ``B_0``).
        """
        mu = self.config.ema_mu
        rewards = np.array(
            [transform_runtime(r, self.config.transform) for r in runtimes]
        )
        advantages = np.empty_like(rewards)
        for i, r in enumerate(rewards):
            if not self._initialized:
                self._baseline = r
                self._initialized = True
            else:
                self._baseline = (1.0 - mu) * r + mu * self._baseline
            advantages[i] = r - self._baseline
        if self.config.advantage_normalization and len(advantages) > 1:
            std = advantages.std()
            if std > 1e-8:
                advantages = (advantages - advantages.mean()) / std
        return rewards, advantages
