"""Cross-entropy-method updater (the core idea of Post, Gao et al. 2018).

Post combines PPO with the cross-entropy method: instead of weighting all
samples by advantage, only the *elite* fraction (best measured runtimes)
contributes, and the policy is fit to reproduce the elite placements by
maximum likelihood. Included as the RL-algorithm extension discussed in
the paper's related work (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn import Adam, clip_grad_norm
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.rl.ppo import UpdateStats


@dataclass
class CEMConfig:
    elite_fraction: float = 0.25
    entropy_coef: float = 1e-3
    learning_rate: float = 3e-4
    grad_clip_norm: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.elite_fraction <= 1.0:
            raise ValueError(f"elite_fraction must be in (0, 1], got {self.elite_fraction}")


class CEMUpdater:
    """Fit the policy to the elite samples by maximum likelihood."""

    def __init__(self, agent: PolicyAgent, config: Optional[CEMConfig] = None, seed=None):
        self.agent = agent
        # Fresh default per updater — a shared default instance would alias.
        self.config = config if config is not None else CEMConfig()
        self.optimizer = Adam(agent.parameters(), lr=self.config.learning_rate)

    def state_dict(self) -> dict:
        return {"optimizer": self.optimizer.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.optimizer.load_state_dict(state["optimizer"])

    def update(self, rollout: AgentRollout, advantages: np.ndarray) -> UpdateStats:
        cfg = self.config
        n = rollout.batch_size
        n_elite = max(1, int(round(n * cfg.elite_fraction)))
        elite_idx = np.argsort(advantages)[::-1][:n_elite]
        elite = rollout.subset(elite_idx)

        logp, entropy = self.agent.evaluate(elite.internal)
        policy_loss = -(logp.mean())
        loss = policy_loss - cfg.entropy_coef * entropy.mean()
        self.optimizer.zero_grad()
        loss.backward()
        norm = clip_grad_norm(self.agent.parameters(), cfg.grad_clip_norm)
        self.optimizer.step()
        # Unified health fields (see ReinforceUpdater.update): policy_loss
        # excludes the entropy bonus; approx_kl is the drift on the elite
        # decisions since they were sampled.
        return UpdateStats(
            policy_loss=float(policy_loss.item()),
            entropy=float(entropy.data.mean()),
            clip_fraction=0.0,  # CEM fits by maximum likelihood, no clipping
            approx_kl=float(np.mean(elite.old_logp - logp.data)),
            grad_norm=norm,
            passes=1,
        )
