"""Critical-path analysis of a placed (or unplaced) graph."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph import CompGraph
from repro.sim import ClusterSpec, CostModel, Placement


def critical_path(
    graph: CompGraph,
    cluster: ClusterSpec,
    placement: Optional[Placement] = None,
    cost_model: Optional[CostModel] = None,
) -> Tuple[float, np.ndarray]:
    """Longest dependency chain length and per-op longest-path-to value.

    With a ``placement``, op times are taken on the assigned devices and
    cut edges add transfer time; without one, each op takes its best-device
    time and communication is ignored (a placement-independent lower
    bound).
    """
    cm = cost_model or CostModel()
    times_matrix = cm.op_time_matrix(graph, cluster)
    if placement is not None:
        op_times = times_matrix[np.arange(graph.num_nodes), placement.devices]
    else:
        op_times = times_matrix.min(axis=1)

    order = (
        range(graph.num_nodes)
        if graph.is_topologically_indexed()
        else graph.topological_order()
    )
    longest = np.zeros(graph.num_nodes)
    for op in order:
        best_pred = 0.0
        for pred in graph.predecessors(op):
            t = longest[pred]
            if placement is not None and placement.devices[pred] != placement.devices[op]:
                t += cm.transfer_time(graph.nodes[pred].output_bytes, cluster)
            best_pred = max(best_pred, t)
        longest[op] = best_pred + op_times[op]
    total = float(longest.max()) if graph.num_nodes else 0.0
    return total, longest


def critical_path_ops(
    graph: CompGraph,
    cluster: ClusterSpec,
    placement: Optional[Placement] = None,
    cost_model: Optional[CostModel] = None,
) -> List[int]:
    """The op indices along one longest chain (sink to source order
    reversed, i.e. returned source-first)."""
    total, longest = critical_path(graph, cluster, placement, cost_model)
    if graph.num_nodes == 0:
        return []
    cm = cost_model or CostModel()
    path = [int(np.argmax(longest))]
    while True:
        op = path[-1]
        preds = graph.predecessors(op)
        if not preds:
            break
        # The predecessor whose chain (plus any transfer) feeds this op.
        best, best_val = None, -1.0
        for pred in preds:
            t = longest[pred]
            if placement is not None and placement.devices[pred] != placement.devices[op]:
                t += cm.transfer_time(graph.nodes[pred].output_bytes, cluster)
            if t > best_val:
                best, best_val = pred, t
        path.append(int(best))
    return list(reversed(path))
