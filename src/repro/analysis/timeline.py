"""Per-device execution timelines (Gantt-style) from the simulator.

:func:`build_timeline` replays one simulated training step and collects
``(op, start, end)`` intervals per device; :func:`render_timeline` turns
them into an ASCII Gantt chart — the quickest way to *see* whether a
placement actually pipelines across devices or serializes on one.

Usage::

    from repro.analysis import build_timeline, render_timeline
    from repro.sim import ClusterSpec
    from repro.sim.placement import resolve_placement
    from repro.workloads import build_inception_v3

    graph = build_inception_v3(scale=0.2)
    cluster = ClusterSpec.default()
    placement = resolve_placement([0] * graph.num_nodes, graph, cluster)
    timelines = build_timeline(placement)
    print(render_timeline(timelines, width=72))
    busiest = max(timelines, key=lambda tl: tl.busy_time)

For an interactive, zoomable version of the same data, export a Chrome
trace instead (:func:`repro.analysis.trace.placement_to_chrome_trace`)
and open it in Perfetto — see ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sim import CostModel, Placement, Scheduler


@dataclass
class DeviceTimeline:
    """Execution intervals on one device: ``(op_index, start, end)``."""

    device: str
    intervals: List[Tuple[int, float, float]]

    @property
    def busy_time(self) -> float:
        return sum(end - start for _, start, end in self.intervals)


def build_timeline(
    placement: Placement, cost_model: Optional[CostModel] = None
) -> List[DeviceTimeline]:
    """Simulate the placement and collect intervals per device."""
    result = Scheduler(cost_model).run_step(placement)
    cluster = placement.cluster
    timelines = [DeviceTimeline(d.name, []) for d in cluster.devices]
    for op in np.argsort(result.start_times):
        dev = placement.device_of(int(op))
        timelines[dev].intervals.append(
            (int(op), float(result.start_times[op]), float(result.finish_times[op]))
        )
    return timelines


def render_timeline(
    timelines: List[DeviceTimeline], width: int = 80, makespan: Optional[float] = None
) -> str:
    """ASCII Gantt chart: one row per device, '#' where the device is busy."""
    if makespan is None:
        makespan = max(
            (iv[2] for tl in timelines for iv in tl.intervals), default=0.0
        )
    if makespan <= 0:
        return "(empty timeline)"
    name_w = max(len(tl.device) for tl in timelines)
    lines = []
    for tl in timelines:
        row = [" "] * width
        for _, start, end in tl.intervals:
            lo = int(start / makespan * (width - 1))
            hi = max(lo, int(end / makespan * (width - 1)))
            for i in range(lo, hi + 1):
                row[i] = "#"
        lines.append(f"{tl.device.rjust(name_w)} |{''.join(row)}|")
    lines.append(f"{' ' * name_w}  0{' ' * (width - 8)}{makespan * 1e3:6.1f}ms")
    return "\n".join(lines)
