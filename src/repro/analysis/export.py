"""Export search histories and figure data to CSV."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Sequence, Tuple

from repro.rl.trainer import SearchHistory


def history_to_rows(history: SearchHistory) -> List[Dict[str, float]]:
    """Flatten a :class:`SearchHistory` into per-iteration dict rows."""
    rows = []
    for rec in history.records:
        valid = rec.valid_runtimes
        rows.append(
            {
                "iteration": rec.iteration,
                "samples": rec.samples_so_far,
                "mean_valid_runtime": sum(valid) / len(valid) if valid else float("nan"),
                "best_runtime": rec.best_runtime,
                "n_invalid": rec.n_invalid,
                "n_truncated": rec.n_truncated,
                "baseline": rec.baseline,
                "sim_clock_hours": rec.sim_clock / 3600.0,
            }
        )
    return rows


def curves_to_csv(
    curves: Dict[str, Tuple[Sequence[int], Sequence[float]]], path: str = None
) -> str:
    """Write ``{series_name: (xs, ys)}`` as long-format CSV; returns text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["series", "samples", "runtime"])
    for name, (xs, ys) in curves.items():
        for x, y in zip(xs, ys):
            writer.writerow([name, x, y])
    text = buffer.getvalue()
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text
