"""Aggregate placement diagnostics and run-level telemetry reports.

:func:`analyze_placement` simulates one placement and compiles a
:class:`PlacementReport` (per-device busy time/utilization/memory,
communication breakdown, cut edges, OOM check).
:func:`run_directory_report` renders the summary of a whole telemetry
run directory — the same text the
``python -m repro.telemetry.report <run_dir>`` CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim import CostModel, MemoryModel, Placement, Scheduler


@dataclass
class PlacementReport:
    """Everything measurable about one placement on one cluster."""

    makespan: float
    device_busy: Dict[str, float]
    device_utilization: Dict[str, float]
    device_memory_gb: Dict[str, float]
    device_op_counts: Dict[str, int]
    comm_time: float
    comm_bytes: float
    cut_edges: int
    fits_memory: bool

    def summary(self) -> str:
        lines = [f"step time {self.makespan * 1e3:.2f} ms, "
                 f"{self.cut_edges} cut edges, "
                 f"{self.comm_bytes / 2**20:.1f} MB shipped "
                 f"({self.comm_time * 1e3:.2f} ms on links)"]
        if not self.fits_memory:
            lines.append("WARNING: placement exceeds device memory (OOM)")
        for name in self.device_busy:
            lines.append(
                f"  {name}: {self.device_op_counts[name]} ops, "
                f"busy {self.device_busy[name] * 1e3:.2f} ms "
                f"({self.device_utilization[name]:.0%} of step), "
                f"{self.device_memory_gb[name]:.2f} GB"
            )
        return "\n".join(lines)


def analyze_placement(
    placement: Placement,
    cost_model: Optional[CostModel] = None,
    memory_model: Optional[MemoryModel] = None,
) -> PlacementReport:
    """Run the simulator once and compile a :class:`PlacementReport`."""
    cluster = placement.cluster
    scheduler = Scheduler(cost_model)
    result = scheduler.run_step(placement)
    memory = (memory_model or MemoryModel()).check(placement)

    names = [d.name for d in cluster.devices]
    counts = np.bincount(placement.devices, minlength=cluster.num_devices)
    busy = {n: float(result.device_busy[i]) for i, n in enumerate(names)}
    util = {
        n: float(result.device_busy[i] / result.makespan) if result.makespan else 0.0
        for i, n in enumerate(names)
    }
    mem = {n: float(memory.usage[i] / 2**30) for i, n in enumerate(names)}
    ops = {n: int(counts[i]) for i, n in enumerate(names)}
    return PlacementReport(
        makespan=result.makespan,
        device_busy=busy,
        device_utilization=util,
        device_memory_gb=mem,
        device_op_counts=ops,
        comm_time=result.comm_time,
        comm_bytes=result.comm_bytes,
        cut_edges=placement.num_cut_edges(),
        fits_memory=memory.fits,
    )


def run_directory_report(run_dir: str) -> str:
    """Text summary of a telemetry run directory (manifest, event counts,
    search progress, metric quantiles). Equivalent to the
    ``python -m repro.telemetry.report`` CLI; see ``docs/observability.md``
    for the event schema and metric glossary."""
    # Imported lazily: placement analysis should not require the
    # telemetry reporting machinery (and vice versa).
    from repro.telemetry.report import render_report

    return render_report(run_dir)
