"""Render placement attributions as text (Gantt, top-k ops, traffic).

Two entry points over the same renderer:

* :func:`render_attribution` — library use, straight from a
  :class:`repro.sim.attribution.PlacementAttribution`::

      from repro.analysis import render_attribution
      attr = env.attribute(best_placement)
      print(render_attribution(attr, graph=env.graph))

* :func:`render_attribution_event` — report-CLI use, from the JSON
  payload of an ``attribution`` telemetry event
  (``python -m repro.telemetry.report <run> --attribution`` renders the
  run's latest one).

The Gantt marks each device's busy spans with ``#`` over the step's
span; the tables below it answer "which ops is the step time actually
made of" (top-k realized-critical-path ops) and "who talks to whom"
(cross-device traffic matrix).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.attribution import PlacementAttribution

__all__ = ["render_attribution", "render_attribution_event"]


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    out = [" | ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _gantt(devices: List[Dict], span: float, width: int) -> str:
    """One ``#``-bar row per device over ``[0, span]``."""
    if span <= 0 or not devices:
        return "(empty timeline)"
    name_w = max(len(d["name"]) for d in devices)
    lines = []
    for dev in devices:
        row = [" "] * width
        for start, end in dev.get("intervals", []):
            lo = int(start / span * (width - 1))
            hi = max(lo, int(end / span * (width - 1)))
            for i in range(lo, min(hi, width - 1) + 1):
                row[i] = "#"
        lines.append(f"{dev['name'].rjust(name_w)} |{''.join(row)}|")
    lines.append(f"{' ' * name_w}  0{' ' * (width - 8)}{span * 1e3:6.1f}ms")
    return "\n".join(lines)


def render_attribution_event(event: Dict, width: int = 64, top_k: int = 10) -> str:
    """Text attribution section from one ``attribution`` event payload."""
    lines: List[str] = []
    span = float(event.get("critical_path_time", 0.0))
    makespan = float(event.get("makespan", 0.0))
    iteration = event.get("iteration", -1)
    header = (
        f"step time {makespan * 1e3:.2f} ms, critical path {span * 1e3:.2f} ms "
        f"({event.get('path_ops', 0)} ops + {event.get('path_comms', 0)} transfers), "
        f"{float(event.get('comm_bound_fraction', 0.0)):.0%} comm-bound, "
        f"utilization {float(event.get('utilization', 0.0)):.0%}"
    )
    if isinstance(iteration, int) and iteration >= 0:
        header += f"  [iteration {iteration}]"
    lines.append(header)

    devices = event.get("devices") or []
    if devices:
        lines.append("")
        lines.append(_gantt(devices, span if span > 0 else makespan, width))
        lines.append("")
        lines.append(
            _table(
                ["device", "ops", "busy ms", "idle ms", "busy %"],
                [
                    [
                        d["name"],
                        d.get("ops", 0),
                        f"{float(d.get('busy', 0.0)) * 1e3:.2f}",
                        f"{float(d.get('idle', 0.0)) * 1e3:.2f}",
                        f"{float(d.get('busy', 0.0)) / span:.0%}" if span > 0 else "-",
                    ]
                    for d in devices
                ],
            )
        )

    top_ops = (event.get("top_ops") or [])[:top_k]
    if top_ops:
        lines.append("")
        lines.append(f"top {len(top_ops)} critical-path ops:")
        lines.append(
            _table(
                ["op", "name", "device", "time ms", "% of path", "released by"],
                [
                    [
                        o.get("op", "?"),
                        o.get("name", "?"),
                        o.get("device", "?"),
                        f"{float(o.get('time', 0.0)) * 1e3:.3f}",
                        f"{float(o.get('time', 0.0)) / span:.1%}" if span > 0 else "-",
                        o.get("reason", "?"),
                    ]
                    for o in top_ops
                ],
            )
        )

    traffic = event.get("traffic_bytes") or []
    names = [d["name"] for d in devices]
    if traffic and any(any(cell for cell in row) for row in traffic):
        lines.append("")
        lines.append("cross-device traffic (MB shipped per step, src -> dst):")
        headers = ["src \\ dst"] + (
            names if len(names) == len(traffic) else [str(i) for i in range(len(traffic))]
        )
        rows = []
        for i, row in enumerate(traffic):
            label = names[i] if i < len(names) else str(i)
            rows.append(
                [label]
                + [f"{cell / 2**20:.1f}" if cell else "-" for cell in row]
            )
        lines.append(_table(headers, rows))
    return "\n".join(lines)


def render_attribution(
    attribution: PlacementAttribution,
    graph=None,
    width: int = 64,
    top_k: int = 10,
) -> str:
    """Render a :class:`PlacementAttribution` (library-side convenience)."""
    return render_attribution_event(
        attribution.event_payload(graph, top_k=top_k), width=width, top_k=top_k
    )
