"""Chrome-trace (catapult) export: simulated steps and telemetry runs.

Two exporters, both producing the Trace Event JSON format that loads in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* :func:`placement_to_chrome_trace` — the per-device execution of **one
  simulated training step**, one track per device, one slice per op.
  Gives the interactive view that :func:`repro.analysis.timeline
  .render_timeline`'s ASCII Gantt chart only sketches.
* :func:`events_to_chrome_trace` — a **whole search run** from telemetry
  JSONL events (see ``docs/observability.md``): environment measurements
  and policy iterations as slices on the simulated clock, with counter
  tracks for best runtime, baseline, and entropy.

Usage::

    from repro.analysis.trace import placement_to_chrome_trace
    placement_to_chrome_trace(placement, path="step.trace.json")

    # From a telemetry run directory:
    from repro.telemetry import read_events
    from repro.analysis.trace import events_to_chrome_trace
    events_to_chrome_trace(read_events("runs/my-search"), path="run.trace.json")

    # ... or straight from the CLI:
    #   python -m repro.telemetry.report runs/my-search --trace run.trace.json

Open the written file in Perfetto: timestamps are microseconds of
*simulated* time, so slice durations compare directly with the paper's
Fig. 8 training-time axis.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, Optional

from repro.analysis.timeline import build_timeline
from repro.sim import CostModel, Placement


def placement_to_chrome_trace(
    placement: Placement,
    cost_model: Optional[CostModel] = None,
    path: Optional[str] = None,
) -> dict:
    """Build (and optionally write) the trace document for one step."""
    graph = placement.graph
    events = []
    for pid, timeline in enumerate(build_timeline(placement, cost_model)):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": timeline.device},
            }
        )
        for op, start, end in timeline.intervals:
            node = graph.nodes[op]
            events.append(
                {
                    "name": node.name,
                    "cat": node.op_type,
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": start * 1e6,  # microseconds
                    "dur": max((end - start) * 1e6, 0.01),
                    "args": {
                        "op_type": node.op_type,
                        "flops": node.flops,
                        "output_shape": list(node.output_shape),
                    },
                }
            )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path:
        with open(path, "w") as fh:
            json.dump(doc, fh)
    return doc


#: Track (pid) layout of the run-level trace.
_PID_ENV = 0
_PID_TRAINER = 1
_PID_PRETRAIN = 2
_PID_SPANS = 3


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def events_to_chrome_trace(
    events: Iterable[dict], path: Optional[str] = None
) -> dict:
    """Convert telemetry run events into a Chrome/Perfetto trace document.

    The simulated clock (``sim_clock`` on ``eval``/``iteration`` events)
    becomes the trace timebase:

    * **environment** track — one slice per placement measurement
      (``eval`` events; OOM and cutoff measurements are categorized so
      Perfetto can color them differently),
    * **trainer** track — one slice per policy iteration, with the
      iteration's sample/invalid counts in ``args``; ``update`` events
      appear as instant markers,
    * **pre-training** track — one slice per DGI iteration (unit width),
    * **spans** track — one slice per ``span`` event
      (``repro.telemetry.tracing``), one thread row per ``trace_id``, on
      the *wall* clock normalized to the earliest span start (span wall
      times and the simulated clock are different timebases; keeping them
      on a separate pid keeps both readable),
    * counter tracks — ``best_runtime``, ``baseline``, ``entropy``.

    ``events`` may be any iterable of event dicts — typically
    ``repro.telemetry.read_events(run_dir)``.
    """
    out = [
        {"name": "process_name", "ph": "M", "pid": _PID_ENV,
         "args": {"name": "environment (simulated clock)"}},
        {"name": "process_name", "ph": "M", "pid": _PID_TRAINER,
         "args": {"name": "trainer"}},
    ]
    prev_iter_clock = 0.0
    last_clock = 0.0
    seen_pretrain = False
    spans = []  # collected first; normalized to the earliest start below
    for event in events:
        etype = event.get("type")
        if etype == "eval":
            wall = event.get("wall_clock", 0.0)
            clock = event.get("sim_clock", 0.0)
            if not (_finite(wall) and _finite(clock)):
                continue
            last_clock = max(last_clock, clock)
            if not event.get("valid", True):
                category, name = "oom", "eval (OOM)"
            elif event.get("truncated", False):
                category, name = "cutoff", "eval (cutoff)"
            elif event.get("cached", False):
                category, name = "cached", "eval (cached)"
            else:
                category, name = "measure", "eval"
            out.append({
                "name": name,
                "cat": category,
                "ph": "X",
                "pid": _PID_ENV,
                "tid": 0,
                "ts": (clock - wall) * 1e6,
                "dur": max(wall * 1e6, 0.01),
                "args": {
                    "per_step_time": event.get("per_step_time"),
                    "makespan": event.get("makespan")
                    if _finite(event.get("makespan")) else None,
                    "comm_time": event.get("comm_time"),
                    "device_utilization": event.get("device_utilization"),
                },
            })
        elif etype == "iteration":
            clock = event.get("sim_clock", 0.0)
            if not _finite(clock):
                continue
            last_clock = max(last_clock, clock)
            out.append({
                "name": f"iteration {event.get('iteration')}",
                "cat": "iteration",
                "ph": "X",
                "pid": _PID_TRAINER,
                "tid": 0,
                "ts": prev_iter_clock * 1e6,
                "dur": max((clock - prev_iter_clock) * 1e6, 0.01),
                "args": {
                    "samples": event.get("samples"),
                    "n_invalid": event.get("n_invalid"),
                    "n_truncated": event.get("n_truncated"),
                    "wall_seconds": event.get("wall_seconds"),
                },
            })
            for counter, value in (
                ("best_runtime", event.get("best_runtime")),
                ("baseline", event.get("baseline")),
            ):
                if _finite(value):
                    out.append({
                        "name": counter, "ph": "C", "pid": _PID_TRAINER,
                        "ts": clock * 1e6, "args": {counter: value},
                    })
            prev_iter_clock = clock
        elif etype == "update":
            out.append({
                "name": "update",
                "cat": "update",
                "ph": "i",
                "s": "t",
                "pid": _PID_TRAINER,
                "tid": 0,
                "ts": prev_iter_clock * 1e6,
                "args": {
                    "entropy": event.get("entropy"),
                    "clip_fraction": event.get("clip_fraction"),
                    "approx_kl": event.get("approx_kl"),
                },
            })
            if _finite(event.get("entropy")):
                out.append({
                    "name": "entropy", "ph": "C", "pid": _PID_TRAINER,
                    "ts": prev_iter_clock * 1e6,
                    "args": {"entropy": event.get("entropy")},
                })
        elif etype == "pretrain":
            if not seen_pretrain:
                seen_pretrain = True
                out.append({"name": "process_name", "ph": "M",
                            "pid": _PID_PRETRAIN,
                            "args": {"name": "DGI pre-training"}})
            it = event.get("iteration", 0)
            out.append({
                "name": "dgi step",
                "cat": "pretrain",
                "ph": "X",
                "pid": _PID_PRETRAIN,
                "tid": 0,
                "ts": float(it) * 1e6,
                "dur": 1e6,
                "args": {"loss": event.get("loss"),
                         "best_loss": event.get("best_loss")},
            })
        elif etype == "span":
            if _finite(event.get("start_unix")) and _finite(event.get("duration_s")):
                spans.append(event)
    if spans:
        out.append({"name": "process_name", "ph": "M", "pid": _PID_SPANS,
                    "args": {"name": "spans (wall clock)"}})
        t0 = min(event["start_unix"] for event in spans)
        # One thread row per trace: concurrent requests stack instead of
        # overlapping into one unreadable lane.
        tids = {}
        for event in spans:
            trace_id = event.get("trace_id", "")
            tid = tids.setdefault(trace_id, len(tids))
            out.append({
                "name": event.get("name", "span"),
                "cat": event.get("status", "ok"),
                "ph": "X",
                "pid": _PID_SPANS,
                "tid": tid,
                "ts": (event["start_unix"] - t0) * 1e6,
                "dur": max(event["duration_s"] * 1e6, 0.01),
                "args": {
                    "trace_id": trace_id,
                    "span_id": event.get("span_id"),
                    "parent_id": event.get("parent_id"),
                    "status": event.get("status"),
                },
            })
        for trace_id, tid in tids.items():
            out.append({"name": "thread_name", "ph": "M", "pid": _PID_SPANS,
                        "tid": tid, "args": {"name": f"trace {trace_id}"}})
    doc = {"traceEvents": out, "displayTimeUnit": "ms"}
    if path:
        with open(path, "w") as fh:
            json.dump(doc, fh)
    return doc
