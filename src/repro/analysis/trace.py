"""Chrome-trace (catapult) export of one simulated training step.

The produced JSON loads in ``chrome://tracing`` / Perfetto, giving an
interactive view of the per-device execution that the ASCII timeline only
sketches.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.timeline import build_timeline
from repro.sim import CostModel, Placement


def placement_to_chrome_trace(
    placement: Placement,
    cost_model: Optional[CostModel] = None,
    path: Optional[str] = None,
) -> dict:
    """Build (and optionally write) the trace document for one step."""
    graph = placement.graph
    events = []
    for pid, timeline in enumerate(build_timeline(placement, cost_model)):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": timeline.device},
            }
        )
        for op, start, end in timeline.intervals:
            node = graph.nodes[op]
            events.append(
                {
                    "name": node.name,
                    "cat": node.op_type,
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": start * 1e6,  # microseconds
                    "dur": max((end - start) * 1e6, 0.01),
                    "args": {
                        "op_type": node.op_type,
                        "flops": node.flops,
                        "output_shape": list(node.output_shape),
                    },
                }
            )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if path:
        with open(path, "w") as fh:
            json.dump(doc, fh)
    return doc
