"""Placement analysis and reporting tools.

Everything a practitioner needs to understand *why* a placement is fast
or slow: per-device utilization, communication breakdown, critical-path
analysis, ASCII timelines, and CSV export of search curves.
"""

from repro.analysis.report import PlacementReport, analyze_placement, run_directory_report
from repro.analysis.timeline import DeviceTimeline, build_timeline, render_timeline
from repro.analysis.critical_path import critical_path, critical_path_ops
from repro.analysis.attribution import render_attribution, render_attribution_event
from repro.analysis.export import curves_to_csv, history_to_rows
from repro.analysis.trace import events_to_chrome_trace, placement_to_chrome_trace

__all__ = [
    "placement_to_chrome_trace",
    "events_to_chrome_trace",
    "render_attribution",
    "render_attribution_event",
    "PlacementReport",
    "analyze_placement",
    "run_directory_report",
    "DeviceTimeline",
    "build_timeline",
    "render_timeline",
    "critical_path",
    "critical_path_ops",
    "curves_to_csv",
    "history_to_rows",
]
