"""Trace/span contexts for end-to-end request and iteration tracing.

A *trace* is one logical unit of work — a ``/place`` request crossing the
HTTP handler, the request queue, the service and the evaluation pool, or
one search run crossing trainer iterations and batch evaluations. Each
trace is a tree of *spans*: named, timed sections with a ``trace_id``
shared across the tree, a unique ``span_id``, and a ``parent_id`` linking
each span to the section that contains it. Every finished span is
recorded as one schema-versioned ``span`` event
(:data:`repro.telemetry.events.EVENT_SCHEMAS`), so a run directory's
JSONL log carries the whole tree and ``analysis/trace.py`` can render it
in Perfetto.

Three propagation mechanisms, matching how work moves in this codebase:

* **Ambient (same thread).** :func:`span` pushes onto a thread-local
  stack; nested ``span()`` calls on the same thread parent automatically
  (``trainer.iteration`` under ``search.optimize``,
  ``env.evaluate_batch`` under ``service.handle``).
* **Explicit context (cross-thread).** :meth:`Span.context` /
  :func:`current_span` yield a :class:`SpanContext` — a serializable
  ``(trace_id, span_id)`` pair. The HTTP handler stores it on the
  request; the queue worker resumes from it with ``span(parent=ctx)``.
* **After-the-fact records (cross-process).** Pool workers cannot emit
  into the parent's event log; they measure their own start/duration and
  the parent emits the finished span with :func:`record_span`.

Activation rule: spans exist only when the telemetry session writes
event files (``tel.sample_events``) *and* there is a trace to join — an
ambient or explicit parent, or ``new_trace=True`` for roots. Everything
else returns a shared no-op, so default in-memory sessions and
un-traced hot paths pay one attribute check per call. Because spans are
gated on an active trace, they are deliberately outside the
batch-vs-sequential "identical event stream" contract of
``sim/batch.py`` (span timings are wall-clock and could never be
bit-identical anyway).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Optional

__all__ = [
    "SpanContext",
    "Span",
    "span",
    "current_span",
    "record_span",
    "new_trace_id",
]

# Process-unique id generation without per-call entropy: one random
# prefix at import plus an atomic-in-CPython counter. Forked pool
# workers re-seed the prefix on first use (the fork copies it), but
# workers never *create* ids — the parent records their spans — so the
# shared prefix is harmless there.
_PREFIX = os.urandom(6).hex()
_COUNTER = itertools.count(1)


def _new_id() -> str:
    return f"{_PREFIX}{next(_COUNTER):08x}"


def new_trace_id() -> str:
    """A fresh process-unique trace id (used for responses even when no
    span is recorded, so every ``/place`` answer carries an identity)."""
    return _new_id()


class SpanContext:
    """The serializable identity of a live span: ``(trace_id, span_id)``.

    This is what crosses thread and process boundaries — a child created
    from a context joins ``trace_id`` and parents under ``span_id``.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, doc) -> Optional["SpanContext"]:
        """Rebuild a context from its wire form; ``None`` if malformed."""
        if not isinstance(doc, dict):
            return None
        trace_id = doc.get("trace_id")
        span_id = doc.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str) and trace_id:
            return cls(trace_id, span_id)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return f"SpanContext(trace_id={self.trace_id!r}, span_id={self.span_id!r})"


# The ambient stack is thread-local: each serve worker / handler thread
# carries its own current span, unlike the process-wide telemetry
# session stack (a session is shared; "what am I inside of" is not).
_LOCAL = threading.local()


def _stack() -> list:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_span() -> Optional[SpanContext]:
    """The innermost live span on this thread, or ``None``."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1].context if stack else None


class Span:
    """One live, timed section; use via ``with span(...) as sp``.

    ``start_unix`` is wall-clock (``time.time``) so spans from different
    processes line up on one axis; the duration is measured on the
    monotonic clock (``time.perf_counter``) so it survives NTP steps.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "status",
        "start_unix",
        "_start_perf",
        "_telemetry",
        "_extra",
    )

    def __init__(self, name, telemetry, trace_id, parent_id, extra):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.status = "ok"
        self.start_unix = 0.0
        self._start_perf = 0.0
        self._telemetry = telemetry
        self._extra = extra

    @property
    def context(self) -> SpanContext:
        """This span's identity, for cross-thread/process propagation."""
        return SpanContext(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start_perf
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - defensive against unbalanced exits
            try:
                stack.remove(self)
            except ValueError:
                pass
        if exc_type is not None and self.status == "ok":
            self.status = "error"
        self._telemetry.emit(
            "span",
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start_unix=float(self.start_unix),
            duration_s=float(duration),
            status=self.status,
            **self._extra,
        )


class _NoopSpan:
    """Shared do-nothing twin of :class:`Span` (inactive telemetry, or no
    trace to join). ``context`` is ``None`` so callers can branch."""

    __slots__ = ()
    context = None
    trace_id = None
    span_id = None
    status = "ok"

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NOOP_SPAN = _NoopSpan()


def span(
    name: str,
    telemetry=None,
    parent: Optional[SpanContext] = None,
    new_trace: bool = False,
    **extra,
) -> "Span | _NoopSpan":
    """Open a span named ``name``; returns a context manager.

    Parenting, in priority order: an explicit ``parent`` context (a
    cross-thread handoff), the thread's ambient current span, or — only
    with ``new_trace=True`` — a fresh root. Without any of those, or when
    the session does not write event files, the shared no-op is returned
    and nothing is recorded.
    """
    if telemetry is None:
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
    if not telemetry.sample_events:
        return NOOP_SPAN
    if parent is None:
        parent = current_span()
    if parent is not None:
        return Span(name, telemetry, parent.trace_id, parent.span_id, extra)
    if new_trace:
        return Span(name, telemetry, _new_id(), "", extra)
    return NOOP_SPAN


def record_span(
    name: str,
    duration_s: float,
    telemetry=None,
    parent: Optional[SpanContext] = None,
    start_unix: Optional[float] = None,
    status: str = "ok",
    **extra,
) -> Optional[str]:
    """Record an already-finished span under ``parent``.

    For sections that cannot hold a live :class:`Span` — queue wait time
    measured between threads, pool-worker compute measured in another
    process. Returns the new span id, or ``None`` when nothing was
    recorded (no parent, or the session writes no event files).
    """
    if parent is None:
        return None
    if telemetry is None:
        from repro.telemetry import get_telemetry

        telemetry = get_telemetry()
    if not telemetry.sample_events:
        return None
    span_id = _new_id()
    telemetry.emit(
        "span",
        trace_id=parent.trace_id,
        span_id=span_id,
        parent_id=parent.span_id,
        name=name,
        start_unix=float(start_unix if start_unix is not None else time.time()),
        duration_s=float(duration_s),
        status=status,
        **extra,
    )
    return span_id
