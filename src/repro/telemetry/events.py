"""Structured JSONL run-event logs.

Every event is one JSON object per line with three envelope fields —
``v`` (schema version), ``type``, ``seq`` (monotonic per run) — plus the
type-specific payload described in :data:`EVENT_SCHEMAS`. The full schema
reference lives in ``docs/observability.md``.

Files are written to ``<run_dir>/events-000.jsonl`` and rotate to the
next part once a part exceeds ``max_bytes`` (a rotation boundary never
splits an event). :func:`read_events` streams the parts back in order.

:class:`NullRunLogger` is the disabled-telemetry twin: same interface,
writes nothing.
"""

from __future__ import annotations

import glob
import json
import os
import threading
from typing import IO, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_SCHEMAS",
    "RunLogger",
    "NullRunLogger",
    "read_events",
    "validate_event",
]

#: Version stamped into every event's ``v`` field. Bump when a payload
#: field is renamed, removed, or changes meaning; adding fields is
#: backward compatible and does not require a bump.
SCHEMA_VERSION = 1

_NUM = (int, float)
_BOOL = (bool,)
_INT = (int,)
_STR = (str,)

#: Required payload fields (and accepted JSON types) per event type.
#: Events may carry additional fields; validation only enforces presence
#: and type of the required ones.
EVENT_SCHEMAS: Dict[str, Dict[str, tuple]] = {
    # Run lifecycle -----------------------------------------------------
    "run_start": {"name": _STR, "wall_time": _NUM},
    # `duration_s` is measured on the monotonic clock (time.perf_counter):
    # wall-clock deltas would mis-report runs that span an NTP step.
    "run_end": {"wall_time": _NUM, "duration_s": _NUM},
    # Crash-safe run snapshots (repro.core.runstate) --------------------
    "snapshot": {
        "iteration": _INT,
        "path": _STR,
        "reason": _STR,  # periodic | signal:<NAME> | halt | final
        "duration_s": _NUM,
    },
    "resume": {
        "iteration": _INT,  # completed iterations restored from the snapshot
        "path": _STR,
        "samples": _INT,
        "sim_clock": _NUM,
    },
    # Encoder pre-training (repro.gnn.pretrain) -------------------------
    "pretrain": {"iteration": _INT, "loss": _NUM, "best_loss": _NUM},
    # RL search (repro.rl.trainer) --------------------------------------
    "iteration": {
        "iteration": _INT,
        "samples": _INT,
        "best_runtime": _NUM,
        "baseline": _NUM,
        "n_invalid": _INT,
        "n_truncated": _INT,
        "sim_clock": _NUM,
        "wall_seconds": _NUM,
    },
    "sample": {
        "iteration": _INT,
        "index": _INT,
        "runtime": _NUM,
        "valid": _BOOL,
        "truncated": _BOOL,
    },
    "update": {
        "iteration": _INT,
        "policy_loss": _NUM,
        "entropy": _NUM,
        "clip_fraction": _NUM,
        "approx_kl": _NUM,
        "grad_norm": _NUM,
        "passes": _INT,
    },
    # Environment measurements (repro.sim.env) --------------------------
    "eval": {
        "makespan": _NUM,
        "per_step_time": _NUM,
        "valid": _BOOL,
        "truncated": _BOOL,
        "cached": _BOOL,
        "wall_clock": _NUM,
        "sim_clock": _NUM,
    },
    "oom": {"sim_clock": _NUM, "usage_gb": _NUM, "capacity_gb": _NUM},
    "cutoff": {"sim_clock": _NUM, "per_step_time": _NUM, "steps_run": _INT},
    # Health watchdog (repro.telemetry.health) --------------------------
    "alert": {
        "detector": _STR,
        "action": _STR,  # log | warn | halt
        "iteration": _INT,
        "value": _NUM,  # the observed statistic that tripped the detector
        "threshold": _NUM,
        "window": _INT,  # observations the statistic was computed over
        "message": _STR,
    },
    # Tracing (repro.telemetry.tracing) ---------------------------------
    # One event per finished span. `parent_id` is "" for trace roots;
    # `start_unix` is wall-clock so spans from different processes line
    # up, `duration_s` is monotonic-clock; `status` is "ok" | "error".
    # Producers attach extra context (e.g. `iteration`, `jobs`, `pid`).
    "span": {
        "trace_id": _STR,
        "span_id": _STR,
        "parent_id": _STR,
        "name": _STR,
        "start_unix": _NUM,
        "duration_s": _NUM,
        "status": _STR,
    },
    # Distributed actor-learner training (repro.distrib) ----------------
    # One event per worker lifecycle transition, emitted by the learner's
    # supervisor. `status` is "started" | "restarted" | "lost";
    # `generation` counts spawns of this slot (0 = original), `restarts`
    # is the slot's cumulative restart count. Restart events attach a
    # `reason` ("died" | "hung") as an extra field.
    "distrib_worker": {
        "worker_id": _INT,
        "status": _STR,
        "generation": _INT,
        "restarts": _INT,
    },
    # Placement service (repro.serve) -----------------------------------
    # One event per serviced request. `status` is "ok" or a typed error
    # code ("bad_request" | "policy_not_found" | "overloaded" | ...);
    # `cache` is "hit" | "miss" | "coalesced" (awaited an identical
    # in-flight request's single-flight future) | "none" (failed requests
    # never reach the cache). `policy_id`/`fingerprint` are empty strings
    # when the request failed before they were resolved.
    "serve_request": {
        "request_id": _STR,
        "policy_id": _STR,
        "fingerprint": _STR,
        "status": _STR,
        "cache": _STR,
        "latency_ms": _NUM,
        "budget": _INT,
    },
    # Placement attribution (repro.sim.attribution via PlacementEnv) ----
    # Carries the JSON payload of PlacementAttribution.event_payload:
    # besides the scalars below, `devices` (busy/idle/intervals per
    # device), `top_ops` and `traffic_bytes` ride along as optional
    # structured fields.
    "attribution": {
        "iteration": _INT,  # -1 when not tied to a policy iteration
        "makespan": _NUM,
        "critical_path_time": _NUM,
        "comm_bound_fraction": _NUM,
        "utilization": _NUM,
        "comm_time": _NUM,
        "comm_bytes": _NUM,
        "path_ops": _INT,
        "path_comms": _INT,
    },
}


def validate_event(event: object) -> List[str]:
    """Return a list of schema violations for ``event`` (empty = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    version = event.get("v")
    if version != SCHEMA_VERSION:
        errors.append(f"schema version {version!r} != {SCHEMA_VERSION}")
    etype = event.get("type")
    if not isinstance(etype, str):
        return errors + ["missing 'type'"]
    if not isinstance(event.get("seq"), int):
        errors.append("missing integer 'seq'")
    schema = EVENT_SCHEMAS.get(etype)
    if schema is None:
        errors.append(f"unknown event type {etype!r}")
        return errors
    for name, types in schema.items():
        if name not in event:
            errors.append(f"{etype}: missing field {name!r}")
        elif not isinstance(event[name], types) or (
            types is _NUM and isinstance(event[name], bool)
        ):
            errors.append(
                f"{etype}: field {name!r} has type {type(event[name]).__name__}"
            )
    return errors


def _part_path(run_dir: str, part: int) -> str:
    return os.path.join(run_dir, f"events-{part:03d}.jsonl")


class RunLogger:
    """Appends schema-versioned JSONL events to a per-run directory."""

    def __init__(
        self,
        run_dir: str,
        max_bytes: int = 4_000_000,
        flush_every: int = 64,
        validate: bool = False,
    ):
        self.run_dir = run_dir
        self.max_bytes = max(1, int(max_bytes))
        self.flush_every = max(1, int(flush_every))
        self.validate = validate
        os.makedirs(run_dir, exist_ok=True)
        self._seq = 0
        self._part = 0
        self._bytes = 0
        self._since_flush = 0
        self._fh: Optional[IO[str]] = None
        # Serving emits from many threads (handler threads, queue
        # workers, the flush thread); seq assignment and file writes
        # must not interleave.
        self._lock = threading.Lock()

    # -- file handling --------------------------------------------------
    def _open(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(_part_path(self.run_dir, self._part), "a")
            self._bytes = self._fh.tell()
        return self._fh

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._part += 1
        self._bytes = 0

    # -- API ------------------------------------------------------------
    def emit(self, etype: str, **fields) -> dict:
        """Write one event; returns the event dict (useful in tests)."""
        with self._lock:
            event = {"v": SCHEMA_VERSION, "type": etype, "seq": self._seq}
            event.update(fields)
            self._seq += 1
            if self.validate:
                errors = validate_event(event)
                if errors:
                    raise ValueError(f"invalid event: {'; '.join(errors)}")
            line = json.dumps(event, separators=(",", ":"), default=float) + "\n"
            if self._bytes and self._bytes + len(line) > self.max_bytes:
                self._rotate()
            fh = self._open()
            fh.write(line)
            self._bytes += len(line)
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                fh.flush()
                self._since_flush = 0
            return event

    @property
    def num_events(self) -> int:
        return self._seq

    def flush(self) -> None:
        """Push buffered events to disk (the periodic live flush)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullRunLogger:
    """No-op drop-in for :class:`RunLogger`."""

    run_dir = None
    num_events = 0

    def emit(self, etype: str, **fields) -> dict:
        return {}

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullRunLogger":
        return self

    def __exit__(self, *exc) -> None:
        pass


def event_files(run_dir: str) -> List[str]:
    """The run's JSONL parts in write order."""
    return sorted(glob.glob(os.path.join(run_dir, "events-*.jsonl")))


def read_events(
    run_dir: str, types: Optional[Tuple[str, ...]] = None
) -> Iterator[dict]:
    """Stream events back from a run directory, optionally filtered."""
    for path in event_files(run_dir):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if types is None or event.get("type") in types:
                    yield event
