"""Streaming training-health watchdog.

Mars-style RL placers fail in characteristic ways: a NaN slips out of an
update and poisons every parameter after it, the policy's entropy
collapses before a good placement is found, a destructive update blows up
the approximate KL, the reward plateaus while the search keeps burning
simulated hours, or the agent spirals on invalid placements and the
reward signal becomes pure OOM penalty (the paper's 100 s penalty,
§4.2). All five are cheap to detect online from the statistics the
trainer already records.

:class:`HealthWatchdog` runs sliding-window detectors over the per-update
(:class:`~repro.rl.ppo.UpdateStats`) and per-iteration streams and emits
one schema-versioned ``alert`` event per firing, with the offending
statistic, the threshold, and the window size. What happens next is the
:class:`HealthConfig.action`:

* ``"log"`` — record the event, log at INFO; purely observational.
* ``"warn"`` (default) — record the event, log at WARNING.
* ``"halt"`` — additionally set :attr:`HealthWatchdog.halted`; the
  trainer stops the run at the end of the iteration and writes the
  reason into the run manifest.

The detector taxonomy (trigger conditions, defaults) is documented in
``docs/observability.md`` §"Alert taxonomy". Detectors are deduplicated
with a per-detector cooldown so a persistently sick run produces a
timeline, not a flood.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.utils.logging import get_logger

logger = get_logger("repro.telemetry.health")

__all__ = ["HealthConfig", "HealthAlert", "HealthWatchdog"]

_ACTIONS = ("log", "warn", "halt")


@dataclass
class HealthConfig:
    """Detector thresholds and the action taken when one fires.

    Lives on :class:`~repro.config.MarsConfig` as ``health``; the
    experiments runner exposes ``--health {log,warn,halt}`` and
    ``--no-health``. Defaults are deliberately loose: they flag runs that
    are unambiguously sick, not runs that are merely converging slowly.
    """

    enabled: bool = True
    action: str = "warn"  # "log" | "warn" | "halt"
    #: Updates averaged by the entropy-collapse detector.
    window: int = 8
    #: Mean per-decision entropy (nats) below which the policy is
    #: considered collapsed. Healthy searches start near ln(num_devices)
    #: (~1.61 for 5 devices) and decay smoothly, not to ~0 early.
    entropy_floor: float = 0.02
    #: |approx_kl| above this in any single update flags a destructive
    #: policy step (the paper's PPO targets drift orders below this).
    kl_threshold: float = 1.0
    #: Iterations without a relative best-runtime improvement of at least
    #: ``plateau_rel_improvement`` before the plateau detector fires.
    plateau_window: int = 25
    plateau_rel_improvement: float = 1e-3
    #: Invalid-placement-rate spike: fraction of sampled placements that
    #: were invalid (OOM) over the last ``invalid_window`` samples.
    invalid_rate_threshold: float = 0.9
    invalid_window: int = 60
    #: Serving rejection-rate spike (repro.serve): fraction of admission
    #: decisions that rejected the request (queue full) over the last
    #: ``reject_window`` requests — sustained backpressure means the
    #: service is undersized for its load (docs/serving.md).
    reject_rate_threshold: float = 0.5
    reject_window: int = 40
    #: Serving latency SLO (repro.serve): the ``latency_slo`` detector
    #: fires when the p99 of the last ``latency_window`` serviced
    #: requests exceeds ``latency_slo_ms`` — sustained slow answers, not
    #: one outlier (docs/serving.md).
    latency_slo_ms: float = 2000.0
    latency_window: int = 50
    #: Serving error burn rate (repro.serve): fraction of the last
    #: ``error_window`` serviced requests that failed with a typed error.
    error_rate_threshold: float = 0.5
    error_window: int = 50
    #: Minimum observations between two firings of the same detector.
    cooldown: int = 10

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"action must be one of {_ACTIONS}, got {self.action!r}")


@dataclass(frozen=True)
class HealthAlert:
    """One detector firing (also emitted as an ``alert`` event)."""

    detector: str
    action: str
    iteration: int
    value: float
    threshold: float
    window: int
    message: str


class HealthWatchdog:
    """Feeds sliding-window detectors from the trainer's update/iteration
    streams; emits ``alert`` events into ``telemetry``.

    The watchdog is intentionally decoupled from any specific updater:
    it consumes anything exposing ``policy_loss`` / ``entropy`` /
    ``grad_norm`` / ``approx_kl`` (PPO, REINFORCE and CEM all report the
    same :class:`~repro.rl.ppo.UpdateStats`).
    """

    def __init__(self, config: Optional[HealthConfig] = None, telemetry=None):
        self.config = config if config is not None else HealthConfig()
        self._telemetry = telemetry
        self.alerts: List[HealthAlert] = []
        self.halted = False
        self.halt_reason: Optional[str] = None
        self._entropies: Deque[float] = deque(maxlen=max(1, self.config.window))
        self._invalid: Deque[Tuple[int, int]] = deque()  # (n_invalid, n_samples)
        self._invalid_counts = [0, 0]  # running (invalid, samples) in window
        self._rejects: Deque[int] = deque(
            maxlen=max(1, self.config.reject_window)
        )  # 1 = rejected admission, 0 = accepted
        #: Serviced-request streams for the SLO detectors (observe_serve).
        self._latencies: Deque[float] = deque(
            maxlen=max(1, self.config.latency_window)
        )  # latency_ms of each serviced request
        self._errors: Deque[int] = deque(
            maxlen=max(1, self.config.error_window)
        )  # 1 = typed error, 0 = ok
        self._bests: Deque[float] = deque(maxlen=max(2, self.config.plateau_window + 1))
        self._observations = 0
        self._last_fired: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Sliding windows + cooldown bookkeeping, for crash-safe resume.

        Past alert objects are not carried over (they live in the
        interrupted run's event log); everything that influences *future*
        detector decisions is.
        """
        return {
            "halted": bool(self.halted),
            "halt_reason": self.halt_reason,
            "entropies": [float(x) for x in self._entropies],
            "invalid": [[int(a), int(b)] for a, b in self._invalid],
            "invalid_counts": [int(x) for x in self._invalid_counts],
            "rejects": [int(x) for x in self._rejects],
            "latencies": [float(x) for x in self._latencies],
            "errors": [int(x) for x in self._errors],
            "bests": [float(x) for x in self._bests],
            "observations": int(self._observations),
            "last_fired": dict(self._last_fired),
        }

    def load_state_dict(self, state: dict) -> None:
        self.halted = bool(state["halted"])
        self.halt_reason = state["halt_reason"]
        self._entropies.clear()
        self._entropies.extend(float(x) for x in state["entropies"])
        self._invalid.clear()
        self._invalid.extend((int(a), int(b)) for a, b in state["invalid"])
        self._invalid_counts = [int(x) for x in state["invalid_counts"]]
        self._rejects.clear()
        self._rejects.extend(int(x) for x in state["rejects"])
        # Absent in snapshots written before the SLO detectors existed.
        self._latencies.clear()
        self._latencies.extend(float(x) for x in state.get("latencies", ()))
        self._errors.clear()
        self._errors.extend(int(x) for x in state.get("errors", ()))
        self._bests.clear()
        self._bests.extend(float(x) for x in state["bests"])
        self._observations = int(state["observations"])
        self._last_fired = {str(k): int(v) for k, v in state["last_fired"].items()}

    # ------------------------------------------------------------------
    def _tel(self):
        if self._telemetry is not None:
            return self._telemetry
        from repro.telemetry import get_telemetry

        return get_telemetry()

    def _fire(
        self,
        detector: str,
        iteration: int,
        value: float,
        threshold: float,
        window: int,
        message: str,
    ) -> Optional[HealthAlert]:
        last = self._last_fired.get(detector)
        if last is not None and self._observations - last < self.config.cooldown:
            return None
        self._last_fired[detector] = self._observations
        alert = HealthAlert(
            detector=detector,
            action=self.config.action,
            iteration=iteration,
            value=float(value),
            threshold=float(threshold),
            window=int(window),
            message=message,
        )
        self.alerts.append(alert)
        tel = self._tel()
        tel.counter("health.alerts").inc()
        tel.counter(f"health.alerts.{detector}").inc()
        tel.emit(
            "alert",
            detector=alert.detector,
            action=alert.action,
            iteration=alert.iteration,
            value=alert.value,
            threshold=alert.threshold,
            window=alert.window,
            message=alert.message,
        )
        text = f"health[{detector}] iter {iteration}: {message}"
        if self.config.action == "halt":
            logger.error("%s -> halting run", text)
            self.halted = True
            if self.halt_reason is None:
                self.halt_reason = f"{detector}: {message}"
        elif self.config.action == "warn":
            logger.warning(text)
        else:
            logger.info(text)
        return alert

    # ------------------------------------------------------------------
    def observe_update(self, iteration: int, stats) -> List[HealthAlert]:
        """Feed one updater result (any object with the UpdateStats
        fields); returns the alerts this observation raised."""
        if not self.config.enabled:
            return []
        self._observations += 1
        cfg = self.config
        fired: List[HealthAlert] = []

        # NaN/Inf guard — fires on a single bad value, no window needed.
        for name in ("policy_loss", "grad_norm", "entropy", "approx_kl"):
            value = float(getattr(stats, name, 0.0))
            if not math.isfinite(value):
                alert = self._fire(
                    "nan_guard",
                    iteration,
                    value,
                    0.0,
                    1,
                    f"non-finite {name} ({value}) in policy update",
                )
                if alert:
                    fired.append(alert)
                break

        entropy = float(getattr(stats, "entropy", 0.0))
        if math.isfinite(entropy):
            self._entropies.append(entropy)
            if len(self._entropies) == self._entropies.maxlen:
                mean_entropy = sum(self._entropies) / len(self._entropies)
                if mean_entropy < cfg.entropy_floor:
                    alert = self._fire(
                        "entropy_collapse",
                        iteration,
                        mean_entropy,
                        cfg.entropy_floor,
                        len(self._entropies),
                        f"mean policy entropy {mean_entropy:.4f} < "
                        f"{cfg.entropy_floor} over {len(self._entropies)} updates "
                        "(policy went deterministic before converging)",
                    )
                    if alert:
                        fired.append(alert)

        approx_kl = float(getattr(stats, "approx_kl", 0.0))
        if math.isfinite(approx_kl) and abs(approx_kl) > cfg.kl_threshold:
            alert = self._fire(
                "kl_blowup",
                iteration,
                approx_kl,
                cfg.kl_threshold,
                1,
                f"|approx_kl| {abs(approx_kl):.3f} > {cfg.kl_threshold} "
                "(destructive policy update)",
            )
            if alert:
                fired.append(alert)
        return fired

    def observe_request(self, rejected: bool) -> List[HealthAlert]:
        """Feed one serving admission decision (``repro.serve``).

        Fires ``rejection_rate`` when more than ``reject_rate_threshold``
        of the last ``reject_window`` requests were turned away by
        admission control — the queue is persistently full, i.e. offered
        load exceeds service capacity, not a momentary burst.
        """
        if not self.config.enabled:
            return []
        self._observations += 1
        cfg = self.config
        self._rejects.append(1 if rejected else 0)
        if len(self._rejects) < self._rejects.maxlen:
            return []
        rate = sum(self._rejects) / len(self._rejects)
        if rate <= cfg.reject_rate_threshold:
            return []
        alert = self._fire(
            "rejection_rate",
            -1,
            rate,
            cfg.reject_rate_threshold,
            len(self._rejects),
            f"{sum(self._rejects)}/{len(self._rejects)} requests rejected by "
            "admission control — offered load exceeds service capacity "
            "(raise --workers/--max-queue or shed traffic upstream)",
        )
        return [alert] if alert else []

    @staticmethod
    def _p99(values: Deque[float]) -> float:
        ordered = sorted(values)
        return ordered[max(0, math.ceil(0.99 * len(ordered)) - 1)]

    def observe_serve(self, latency_ms: float, ok: bool) -> List[HealthAlert]:
        """Feed one *serviced* request's outcome (``repro.serve``).

        The two SLO detectors run over full sliding windows only (no
        verdict on a cold service):

        * ``latency_slo`` — p99 latency of the last ``latency_window``
          serviced requests above ``latency_slo_ms``;
        * ``error_burn_rate`` — more than ``error_rate_threshold`` of the
          last ``error_window`` serviced requests failed with a typed
          error (bad requests, missing policies, queue-level rejections
          are observed separately by :meth:`observe_request`).
        """
        if not self.config.enabled:
            return []
        self._observations += 1
        cfg = self.config
        fired: List[HealthAlert] = []
        if math.isfinite(latency_ms):
            self._latencies.append(float(latency_ms))
        self._errors.append(0 if ok else 1)
        if len(self._latencies) == self._latencies.maxlen:
            p99 = self._p99(self._latencies)
            if p99 > cfg.latency_slo_ms:
                alert = self._fire(
                    "latency_slo",
                    -1,
                    p99,
                    cfg.latency_slo_ms,
                    len(self._latencies),
                    f"p99 service latency {p99:.1f} ms > SLO "
                    f"{cfg.latency_slo_ms:.0f} ms over the last "
                    f"{len(self._latencies)} requests (slow evaluation or "
                    "queue backlog — check serve.queue_wait_s vs "
                    "serve.compute_s)",
                )
                if alert:
                    fired.append(alert)
        if len(self._errors) == self._errors.maxlen:
            rate = sum(self._errors) / len(self._errors)
            if rate > cfg.error_rate_threshold:
                alert = self._fire(
                    "error_burn_rate",
                    -1,
                    rate,
                    cfg.error_rate_threshold,
                    len(self._errors),
                    f"{sum(self._errors)}/{len(self._errors)} serviced "
                    "requests failed with typed errors — clients are "
                    "burning their error budget (check the serve_request "
                    "status codes)",
                )
                if alert:
                    fired.append(alert)
        return fired

    def slo_status(self) -> dict:
        """Current SLO standing for liveness endpoints (``GET /healthz``).

        Window statistics are computed over whatever has been observed so
        far; the ``ok`` verdicts stay ``True`` until a full window
        violates its threshold, matching when the detectors fire.
        """
        cfg = self.config
        p99 = self._p99(self._latencies) if self._latencies else None
        error_rate = (
            sum(self._errors) / len(self._errors) if self._errors else 0.0
        )
        reject_rate = (
            sum(self._rejects) / len(self._rejects) if self._rejects else 0.0
        )
        return {
            "latency_p99_ms": p99,
            "latency_slo_ms": cfg.latency_slo_ms,
            "latency_ok": not (
                len(self._latencies) == self._latencies.maxlen
                and p99 is not None
                and p99 > cfg.latency_slo_ms
            ),
            "error_rate": error_rate,
            "error_rate_threshold": cfg.error_rate_threshold,
            "errors_ok": not (
                len(self._errors) == self._errors.maxlen
                and error_rate > cfg.error_rate_threshold
            ),
            "reject_rate": reject_rate,
            "reject_rate_threshold": cfg.reject_rate_threshold,
            "rejects_ok": not (
                len(self._rejects) == self._rejects.maxlen
                and reject_rate > cfg.reject_rate_threshold
            ),
            "alerts": len(self.alerts),
        }

    def observe_iteration(
        self,
        iteration: int,
        best_runtime: float,
        n_invalid: int,
        n_samples: int,
    ) -> List[HealthAlert]:
        """Feed one policy iteration's outcome; returns raised alerts."""
        if not self.config.enabled:
            return []
        self._observations += 1
        cfg = self.config
        fired: List[HealthAlert] = []

        # Invalid-placement-rate spike over a sliding sample window.
        self._invalid.append((int(n_invalid), int(n_samples)))
        self._invalid_counts[0] += int(n_invalid)
        self._invalid_counts[1] += int(n_samples)
        while (
            len(self._invalid) > 1
            and self._invalid_counts[1] - self._invalid[0][1] >= cfg.invalid_window
        ):
            old_inv, old_n = self._invalid.popleft()
            self._invalid_counts[0] -= old_inv
            self._invalid_counts[1] -= old_n
        inv, total = self._invalid_counts
        if total >= cfg.invalid_window and total > 0:
            rate = inv / total
            if rate > cfg.invalid_rate_threshold:
                alert = self._fire(
                    "invalid_rate",
                    iteration,
                    rate,
                    cfg.invalid_rate_threshold,
                    total,
                    f"{inv}/{total} sampled placements invalid (OOM) — reward "
                    "is dominated by the invalid-placement penalty",
                )
                if alert:
                    fired.append(alert)

        # Reward plateau: best runtime not improving over plateau_window
        # iterations. Only meaningful once a valid placement exists.
        if math.isfinite(best_runtime):
            self._bests.append(float(best_runtime))
            if len(self._bests) == self._bests.maxlen:
                oldest, newest = self._bests[0], self._bests[-1]
                rel = (oldest - newest) / oldest if oldest > 0 else 0.0
                if rel < cfg.plateau_rel_improvement:
                    alert = self._fire(
                        "reward_plateau",
                        iteration,
                        rel,
                        cfg.plateau_rel_improvement,
                        len(self._bests) - 1,
                        f"best runtime improved {rel * 100:.3f}% over the last "
                        f"{len(self._bests) - 1} iterations "
                        f"(still {newest:.4f}s)",
                    )
                    if alert:
                        fired.append(alert)
        return fired
