"""Prometheus text exposition of a :class:`MetricsRegistry` snapshot.

Backs the serve HTTP server's ``GET /metrics`` endpoint: any Prometheus
scraper (or ``curl``) pointed at a running ``python -m repro.serve`` gets
the live ``serve.*`` / ``env.*`` / ``health.*`` metrics without waiting
for the run's final ``metrics.json``.

Mapping (format reference:
https://prometheus.io/docs/instrumenting/exposition_formats/):

* counters → ``# TYPE <name> counter`` with the running value;
* gauges → ``# TYPE <name> gauge`` (the extra ``<name>_updates`` counter
  records how often the gauge was set);
* histograms → Prometheus *summaries*: ``<name>{quantile="0.5|0.95|0.99"}``
  from the reservoir estimates plus ``<name>_sum`` / ``<name>_count``
  (cumulative-bucket histograms would need fixed bucket bounds the
  streaming reservoir deliberately avoids).

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots become underscores, so
``serve.latency_ms`` is exported as ``serve_latency_ms``.
"""

from __future__ import annotations

import math
import re

__all__ = ["render_prometheus", "sanitize_metric_name"]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Registry name → Prometheus metric name (dots to underscores)."""
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _fmt(value) -> str:
    """A float in Prometheus' number grammar (inf/nan spelled out)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render ``MetricsRegistry.snapshot()`` as Prometheus text format.

    Deterministic output (names sorted per section) so scrapes diff
    cleanly in tests and tooling.
    """
    lines = []
    for name in sorted(snapshot.get("counters", ())):
        metric = sanitize_metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(snapshot['counters'][name]['value'])}")
    for name in sorted(snapshot.get("gauges", ())):
        metric = sanitize_metric_name(name)
        gauge = snapshot["gauges"][name]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge['value'])}")
        lines.append(f"# TYPE {metric}_updates counter")
        lines.append(f"{metric}_updates {_fmt(gauge.get('updates', 0))}")
    for name in sorted(snapshot.get("histograms", ())):
        metric = sanitize_metric_name(name)
        hist = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            if hist.get(key) is not None:
                lines.append(f'{metric}{{quantile="{quantile}"}} {_fmt(hist[key])}')
        lines.append(f"{metric}_sum {_fmt(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {_fmt(hist.get('count', 0))}")
    return "\n".join(lines) + "\n"
