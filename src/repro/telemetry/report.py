"""Run-summary reports over telemetry run directories.

CLI::

    python -m repro.telemetry.report <run_dir>
    python -m repro.telemetry.report <run_dir> --trace trace.json
    python -m repro.telemetry.report <run_dir> --json
    python -m repro.telemetry.report <run_dir> --health --attribution
    python -m repro.telemetry.report --diff RUN_A RUN_B

The text report shows the run manifest, event counts by type, the search
progress extracted from ``iteration`` events, and every metric recorded
in ``metrics.json`` (counters, gauges, histogram quantiles). ``--trace``
converts the event log into a Chrome/Perfetto trace via
:func:`repro.analysis.trace.events_to_chrome_trace`. ``--health``
appends the health-watchdog alert timeline, ``--attribution`` the
latest best-placement attribution (per-device Gantt, top-k
critical-path ops, traffic matrix), and ``--diff`` prints metric deltas
between two runs for quick regression triage.

Library use::

    from repro.telemetry.report import load_run, render_report
    print(render_report("runs/quickstart-inception-v3"))
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.telemetry.events import read_events, validate_event

__all__ = [
    "RunData",
    "load_run",
    "summarize_run",
    "render_report",
    "render_health_section",
    "render_attribution_section",
    "diff_runs",
    "render_diff",
    "main",
]


@dataclass
class RunData:
    """Everything a run directory holds, parsed."""

    run_dir: str
    manifest: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)

    @property
    def event_counts(self) -> Dict[str, int]:
        return dict(_TallyCounter(e.get("type", "?") for e in self.events))


def load_run(run_dir: str) -> RunData:
    """Parse manifest, metrics snapshot and all events of one run."""
    if not os.path.isdir(run_dir):
        raise FileNotFoundError(f"not a run directory: {run_dir}")
    data = RunData(run_dir=run_dir)
    manifest_path = os.path.join(run_dir, "manifest.json")
    if os.path.exists(manifest_path):
        with open(manifest_path) as fh:
            data.manifest = json.load(fh)
    metrics_path = os.path.join(run_dir, "metrics.json")
    if os.path.exists(metrics_path):
        with open(metrics_path) as fh:
            data.metrics = json.load(fh)
    data.events = list(read_events(run_dir))
    return data


def summarize_run(data: RunData) -> Dict:
    """Compact JSON-friendly digest of one run (used by ``--json``)."""
    iterations = [e for e in data.events if e.get("type") == "iteration"]
    invalid = sum(e.get("n_invalid", 0) for e in iterations)
    truncated = sum(e.get("n_truncated", 0) for e in iterations)
    errors = [err for e in data.events for err in validate_event(e)]
    alerts = [e for e in data.events if e.get("type") == "alert"]
    summary: Dict = {
        "run_dir": data.run_dir,
        "name": data.manifest.get("name"),
        "events": len(data.events),
        "event_counts": data.event_counts,
        "schema_errors": errors,
        "alerts": len(alerts),
        "alerts_by_detector": dict(
            _TallyCounter(e.get("detector", "?") for e in alerts)
        ),
        "halted": bool(data.manifest.get("halted", False)),
        "halt_reason": data.manifest.get("halt_reason"),
        "metric_names": sorted(
            set(data.metrics.get("counters", {}))
            | set(data.metrics.get("gauges", {}))
            | set(data.metrics.get("histograms", {}))
        ),
    }
    if iterations:
        first, last = iterations[0], iterations[-1]
        summary["search"] = {
            "iterations": len(iterations),
            "samples": last.get("samples"),
            "first_best_runtime": first.get("best_runtime"),
            "final_best_runtime": last.get("best_runtime"),
            "sim_clock_hours": last.get("sim_clock", 0.0) / 3600.0,
            "wall_seconds": sum(e.get("wall_seconds", 0.0) for e in iterations),
            "invalid_samples": invalid,
            "truncated_samples": truncated,
        }
    return summary


# ----------------------------------------------------------------------
# Text rendering
# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    out = [" | ".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("-+-".join("-" * w for w in widths))
    for row in rows:
        out.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{digits}g}"
    return str(value)


def render_health_section(data: RunData) -> str:
    """Alert timeline: one row per health-watchdog ``alert`` event."""
    alerts = [e for e in data.events if e.get("type") == "alert"]
    lines = ["--- health ---"]
    if data.manifest.get("halted"):
        lines.append(f"HALTED: {data.manifest.get('halt_reason', '(no reason recorded)')}")
    if not alerts:
        lines.append("no alerts: all detectors stayed quiet")
        return "\n".join(lines)
    counts = _TallyCounter(e.get("detector", "?") for e in alerts)
    lines.append(
        f"{len(alerts)} alert(s): "
        + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    )
    lines.append(_table(
        ["seq", "iter", "detector", "action", "value", "threshold", "window", "message"],
        [[
            e.get("seq", "-"),
            e.get("iteration", "-"),
            e.get("detector", "?"),
            e.get("action", "?"),
            _fmt(e.get("value")),
            _fmt(e.get("threshold")),
            e.get("window", "-"),
            e.get("message", ""),
        ] for e in alerts],
    ))
    return "\n".join(lines)


def render_attribution_section(data: RunData, width: int = 64) -> str:
    """The latest best-placement attribution, rendered as text."""
    # Imported lazily: the renderer lives in repro.analysis, which pulls
    # in the simulator stack that plain report rendering does not need.
    from repro.analysis.attribution import render_attribution_event

    events = [e for e in data.events if e.get("type") == "attribution"]
    lines = ["--- attribution ---"]
    if not events:
        lines.append(
            "no attribution events (the run found no valid placement, or "
            "predates the attribution engine)"
        )
        return "\n".join(lines)
    if len(events) > 1:
        lines.append(f"{len(events)} attribution snapshots; showing the latest:")
    lines.append(render_attribution_event(events[-1], width=width))
    return "\n".join(lines)


def render_report(
    run_dir: str, health: bool = False, attribution: bool = False
) -> str:
    """The full text report for one run directory."""
    data = load_run(run_dir)
    summary = summarize_run(data)
    lines: List[str] = []
    lines.append(f"=== telemetry report: {summary.get('name') or run_dir} ===")
    manifest = data.manifest
    for key in ("workload", "agent_kind", "seed", "iterations", "profile"):
        if key in manifest:
            lines.append(f"{key}: {manifest[key]}")
    lines.append(f"run_dir: {data.run_dir}")
    lines.append(f"events: {summary['events']} "
                 f"({', '.join(f'{k}={v}' for k, v in sorted(summary['event_counts'].items()))})")
    if summary["schema_errors"]:
        lines.append(f"SCHEMA ERRORS: {len(summary['schema_errors'])} "
                     f"(first: {summary['schema_errors'][0]})")
    else:
        lines.append("schema: ok")

    search = summary.get("search")
    if search:
        lines.append("")
        lines.append(_table(
            ["iterations", "samples", "best (first)", "best (final)",
             "sim hours", "wall s", "invalid", "cutoff"],
            [[
                search["iterations"],
                search["samples"],
                _fmt(search["first_best_runtime"]),
                _fmt(search["final_best_runtime"]),
                _fmt(search["sim_clock_hours"], 3),
                _fmt(search["wall_seconds"], 3),
                search["invalid_samples"],
                search["truncated_samples"],
            ]],
        ))

    counters = data.metrics.get("counters", {})
    gauges = data.metrics.get("gauges", {})
    histograms = data.metrics.get("histograms", {})
    rows: List[List[str]] = []
    for name, c in sorted(counters.items()):
        rows.append([name, "counter", _fmt(c.get("value")), "-", "-", "-", "-"])
    for name, g in sorted(gauges.items()):
        rows.append([name, "gauge", _fmt(g.get("value")), "-", "-", "-", "-"])
    for name, h in sorted(histograms.items()):
        rows.append([
            name, "histogram", _fmt(h.get("count")), _fmt(h.get("mean")),
            _fmt(h.get("p50")), _fmt(h.get("p95")), _fmt(h.get("p99")),
        ])
    if rows:
        lines.append("")
        lines.append(_table(
            ["metric", "kind", "count/value", "mean", "p50", "p95", "p99"], rows
        ))
    if health:
        lines.append("")
        lines.append(render_health_section(data))
    if attribution:
        lines.append("")
        lines.append(render_attribution_section(data))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run diffing (--diff RUN_A RUN_B)
# ----------------------------------------------------------------------
def _metric_finals(metrics: Dict) -> Dict[str, Dict]:
    """Flatten a metrics snapshot into name -> {final, mean}."""
    out: Dict[str, Dict] = {}
    for name, c in metrics.get("counters", {}).items():
        out[name] = {"kind": "counter", "final": c.get("value"), "mean": None}
    for name, g in metrics.get("gauges", {}).items():
        out[name] = {"kind": "gauge", "final": g.get("value"), "mean": None}
    for name, h in metrics.get("histograms", {}).items():
        out[name] = {"kind": "histogram", "final": h.get("count"), "mean": h.get("mean")}
    return out


def diff_runs(run_a: str, run_b: str) -> Dict:
    """Metric/alert deltas between two run directories (B minus A)."""
    a, b = load_run(run_a), load_run(run_b)
    sa, sb = summarize_run(a), summarize_run(b)
    ma, mb = _metric_finals(a.metrics), _metric_finals(b.metrics)
    metrics: Dict[str, Dict] = {}
    for name in sorted(set(ma) | set(mb)):
        ea, eb = ma.get(name), mb.get(name)
        entry: Dict = {
            "kind": (eb or ea or {}).get("kind"),
            "a_final": ea.get("final") if ea else None,
            "b_final": eb.get("final") if eb else None,
            "a_mean": ea.get("mean") if ea else None,
            "b_mean": eb.get("mean") if eb else None,
        }
        if isinstance(entry["a_final"], (int, float)) and isinstance(
            entry["b_final"], (int, float)
        ):
            entry["delta_final"] = entry["b_final"] - entry["a_final"]
        else:
            entry["delta_final"] = None
        metrics[name] = entry
    diff: Dict = {
        "run_a": a.run_dir,
        "run_b": b.run_dir,
        "metrics": metrics,
        "alerts": {
            "a": sa["alerts"],
            "b": sb["alerts"],
            "delta": sb["alerts"] - sa["alerts"],
            "a_by_detector": sa["alerts_by_detector"],
            "b_by_detector": sb["alerts_by_detector"],
        },
        "halted": {"a": sa["halted"], "b": sb["halted"]},
    }
    ra = (sa.get("search") or {}).get("final_best_runtime")
    rb = (sb.get("search") or {}).get("final_best_runtime")
    diff["best_runtime"] = {
        "a": ra,
        "b": rb,
        "delta": (rb - ra)
        if isinstance(ra, (int, float)) and isinstance(rb, (int, float))
        else None,
    }
    return diff


def render_diff(diff: Dict) -> str:
    """Text rendering of a :func:`diff_runs` result."""
    lines = [f"=== run diff: {diff['run_a']} -> {diff['run_b']} ==="]
    br = diff["best_runtime"]
    lines.append(
        f"best_runtime: {_fmt(br['a'])} -> {_fmt(br['b'])}"
        + (f" (delta {_fmt(br['delta'], 4)})" if br["delta"] is not None else "")
    )
    al = diff["alerts"]
    lines.append(
        f"alerts: {al['a']} -> {al['b']} (delta {al['delta']:+d})"
    )
    for label, by in (("A", al["a_by_detector"]), ("B", al["b_by_detector"])):
        if by:
            lines.append(
                f"  {label} by detector: "
                + ", ".join(f"{k}={v}" for k, v in sorted(by.items()))
            )
    halted = diff["halted"]
    if halted["a"] or halted["b"]:
        lines.append(f"halted: A={halted['a']} B={halted['b']}")
    rows = []
    for name, m in diff["metrics"].items():
        rows.append([
            name,
            m.get("kind") or "-",
            _fmt(m["a_final"]),
            _fmt(m["b_final"]),
            _fmt(m["delta_final"]) if m["delta_final"] is not None else "-",
            _fmt(m["a_mean"]),
            _fmt(m["b_mean"]),
        ])
    if rows:
        lines.append("")
        lines.append(_table(
            ["metric", "kind", "A final", "B final", "delta", "A mean", "B mean"],
            rows,
        ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize a telemetry run directory.",
    )
    parser.add_argument(
        "run_dir",
        nargs="?",
        default=None,
        help="directory written by repro.telemetry.start_run",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help="also export the event log as a Chrome/Perfetto trace",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the digest as JSON instead of text"
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="append the health-watchdog alert timeline",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="append the latest best-placement attribution (Gantt, top-k ops)",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        default=None,
        help="print metric/alert deltas between two runs instead of a report",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.diff is not None:
        try:
            diff = diff_runs(*args.diff)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(diff, indent=2, default=str))
        else:
            print(render_diff(diff))
        return 0
    if args.run_dir is None:
        print("error: a run_dir (or --diff RUN_A RUN_B) is required", file=sys.stderr)
        return 2
    try:
        data = load_run(args.run_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summarize_run(data), indent=2, default=str))
    else:
        print(render_report(args.run_dir, health=args.health, attribution=args.attribution))
    if args.trace:
        # Imported lazily: repro.analysis pulls in the simulator stack,
        # which plain report rendering does not need.
        from repro.analysis.trace import events_to_chrome_trace

        events_to_chrome_trace(data.events, path=args.trace)
        print(f"\nwrote Chrome trace to {args.trace} "
              f"(open in Perfetto or chrome://tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
