"""Counters, gauges and streaming histograms for run telemetry.

A :class:`MetricsRegistry` is an in-memory, dependency-free metrics store:

* **counters** — monotonically increasing integers (``env.oom``),
* **gauges** — last-value-wins floats (``trainer.best_runtime``),
* **histograms** — streaming distributions with exact count/sum/min/max
  and approximate quantiles (p50/p95/p99) from a bounded reservoir
  (Vitter's Algorithm R with a deterministic per-name RNG, so snapshots
  are reproducible run to run).

Two context managers turn the registry into a profiler:

* :meth:`MetricsRegistry.timer` — records wall-clock seconds of the
  ``with`` body into a histogram; timers nest freely and each records its
  own elapsed time.
* :meth:`MetricsRegistry.profile_section` — like ``timer`` but maintains
  a section stack, so nested sections record under hierarchical names
  (``profile.train/sample``), giving a cheap flat profile of a run.

The ``Null*`` twins implement the same interface as no-ops; they are what
:data:`repro.telemetry.NULL_TELEMETRY` hands out when telemetry is
disabled, keeping instrumented code branch-free.

Usage::

    m = MetricsRegistry()
    m.counter("env.oom").inc()
    m.gauge("trainer.best_runtime").set(1.23)
    with m.timer("trainer.update_s"):
        ...                       # timed body
    m.histogram("env.makespan").observe(0.04)
    m.snapshot()["histograms"]["env.makespan"]["p95"]
"""

from __future__ import annotations

import math
import random
import time
import zlib
from typing import Dict, List

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_CONTEXT",
]

#: Default reservoir capacity for histogram quantile estimation.
DEFAULT_RESERVOIR_SIZE = 512


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-value-wins float, tracking how many times it was set."""

    __slots__ = ("name", "value", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = float("nan")
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def to_dict(self) -> dict:
        return {"value": self.value, "updates": self.updates}


class Histogram:
    """Streaming distribution: exact moments, reservoir-based quantiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir", "_capacity", "_rng")

    def __init__(self, name: str, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._capacity = max(1, int(reservoir_size))
        self._reservoir: List[float] = []
        # Deterministic per-name seed keeps quantile estimates reproducible
        # — including across processes: `hash(str)` is salted per process
        # (PYTHONHASHSEED), crc32 is not.
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:  # Algorithm R: replace with probability capacity/count.
            j = self._rng.randrange(self.count)
            if j < self._capacity:
                self._reservoir[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the reservoir (q in [0, 1])."""
        if not self._reservoir:
            return float("nan")
        data = sorted(self._reservoir)
        if len(data) == 1:
            return data[0]
        pos = min(max(q, 0.0), 1.0) * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _TimerContext:
    """Times a ``with`` body and observes the elapsed seconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _SectionContext:
    """A profile section: pushes onto the registry's section stack."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SectionContext":
        self._registry._section_stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        stack = self._registry._section_stack
        path = "/".join(stack)
        stack.pop()
        self._registry.histogram(f"profile.{path}").observe(elapsed)


class _NullContext:
    """Shared no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_CONTEXT = _NullContext()


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE):
        self.reservoir_size = reservoir_size
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._section_stack: List[str] = []

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, self.reservoir_size)
        return h

    # -- profiling ------------------------------------------------------
    def timer(self, name: str) -> _TimerContext:
        """``with m.timer("x_s"):`` records elapsed seconds into ``x_s``."""
        return _TimerContext(self.histogram(name))

    def profile_section(self, name: str) -> _SectionContext:
        """Like :meth:`timer`, but nested sections record hierarchical
        names: ``with m.profile_section("a"): with m.profile_section("b")``
        fills ``profile.a`` and ``profile.a/b``."""
        return _SectionContext(self, name)

    # -- introspection --------------------------------------------------
    def names(self) -> List[str]:
        """All distinct metric names, sorted."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> dict:
        """JSON-serializable view of every metric."""
        return {
            "counters": {n: c.to_dict() for n, c in sorted(self._counters.items())},
            "gauges": {n: g.to_dict() for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self._histograms.items())},
        }


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def to_dict(self) -> dict:
        return {"value": 0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = float("nan")
    updates = 0

    def set(self, value: float) -> None:
        pass

    def to_dict(self) -> dict:
        return {"value": float("nan"), "updates": 0}


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0.0
    min = float("inf")
    max = float("-inf")
    mean = float("nan")

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def to_dict(self) -> dict:
        return {"count": 0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """No-op drop-in for :class:`MetricsRegistry` (disabled telemetry)."""

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> _NullContext:
        return NULL_CONTEXT

    def profile_section(self, name: str) -> _NullContext:
        return NULL_CONTEXT

    def names(self) -> List[str]:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
