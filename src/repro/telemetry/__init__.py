"""Unified run telemetry: metrics, JSONL event logs, profiling hooks.

This package is the repo's observability layer (see
``docs/observability.md`` for the guide). It is dependency-free and
deliberately small:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  streaming histograms (p50/p95/p99) plus ``timer()`` /
  ``profile_section()`` context managers,
* :class:`~repro.telemetry.events.RunLogger` — schema-versioned JSONL
  event files with rotation,
* :class:`Telemetry` — a facade bundling the two, plus the *ambient*
  telemetry stack that instrumented code resolves against.

Instrumented modules (``rl/trainer.py``, ``sim/env.py``,
``gnn/pretrain.py``) call :func:`get_telemetry` and record into whatever
session is active. By default that is an in-memory metrics registry with
a null event sink — telemetry is *on* but writes nothing to disk. A run
session activates file-backed logging:

    from repro.telemetry import start_run, use_telemetry

    tel = start_run("my-search", base_dir="runs")
    with use_telemetry(tel):
        result = optimize_placement(graph, cluster, "mars", config)
    tel.close()                      # writes metrics.json + run_end

    # later: python -m repro.telemetry.report runs/my-search

``optimize_placement`` also honours ``MarsConfig.telemetry``
(a :class:`TelemetryConfig`): ``enabled=False`` turns every hook into a
no-op; ``run_dir="runs"`` opens a run directory per search automatically.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional

from repro.telemetry.events import (
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    NullRunLogger,
    RunLogger,
    read_events,
    validate_event,
)
from repro.telemetry.health import HealthAlert, HealthConfig, HealthWatchdog
from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.telemetry.tracing import (
    Span,
    SpanContext,
    current_span,
    new_trace_id,
    record_span,
    span,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_SCHEMAS",
    "HealthAlert",
    "HealthConfig",
    "HealthWatchdog",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "RunLogger",
    "NullRunLogger",
    "read_events",
    "validate_event",
    "Span",
    "SpanContext",
    "span",
    "current_span",
    "record_span",
    "new_trace_id",
    "Telemetry",
    "TelemetryConfig",
    "NULL_TELEMETRY",
    "get_telemetry",
    "use_telemetry",
    "start_run",
    "telemetry_from_config",
]


@dataclass
class TelemetryConfig:
    """How much observability a run gets (lives on ``MarsConfig``).

    ``enabled=False`` swaps in no-op metric and event sinks — the
    instrumented hot paths then cost a handful of attribute lookups per
    evaluation (< 2% of a search's wall time). With ``run_dir`` unset,
    metrics accumulate in memory but no files are written; setting it
    makes every ``optimize_placement`` call open
    ``<run_dir>/<workload>__<agent>/`` with JSONL events, a manifest and
    a metrics snapshot.
    """

    enabled: bool = True
    run_dir: Optional[str] = None  # base directory for per-run directories
    events_max_bytes: int = 4_000_000  # JSONL rotation threshold per part
    reservoir_size: int = 512  # histogram quantile reservoir
    sample_events: bool = True  # per-placement 'sample'/'eval' events
    #: Seconds between background flushes of ``metrics.json`` and the
    #: buffered event log for file-backed runs. ``None`` (default) keeps
    #: the old behaviour — artifacts land on ``close()``; setting it
    #: keeps them fresh even if the run crashes mid-way.
    flush_interval_s: Optional[float] = None


class Telemetry:
    """A metrics registry and an event log behind one handle."""

    def __init__(
        self,
        metrics=None,
        events=None,
        run_dir: Optional[str] = None,
        name: str = "run",
        enabled: bool = True,
        sample_events: bool = True,
        flush_interval_s: Optional[float] = None,
    ):
        self.enabled = enabled
        self.name = name
        self.run_dir = run_dir
        if not enabled:
            self.metrics = NullMetricsRegistry()
            self.events = NullRunLogger()
        else:
            self.metrics = metrics if metrics is not None else MetricsRegistry()
            self.events = events if events is not None else NullRunLogger()
        # Per-sample events are the highest-volume hooks; skip building
        # them when they would land in a null sink anyway.
        self.sample_events = (
            sample_events and enabled and not isinstance(self.events, NullRunLogger)
        )
        self._closed = False
        # Monotonic birth time: run duration must not jump when NTP steps
        # the wall clock mid-run; wall_time fields stay `time.time()`.
        self._start_perf = time.perf_counter()
        # Periodic background flush: keeps metrics.json and the event
        # log fresh on disk even when the run crashes before close().
        # Only meaningful for file-backed sessions.
        self.flush_interval_s = flush_interval_s
        self._flush_stop: Optional[threading.Event] = None
        self._flush_thread: Optional[threading.Thread] = None
        if run_dir and flush_interval_s and flush_interval_s > 0 and enabled:
            self._flush_stop = threading.Event()
            self._flush_thread = threading.Thread(
                target=self._flush_loop,
                name=f"telemetry-flush-{name}",
                daemon=True,
            )
            self._flush_thread.start()

    # -- delegation sugar ----------------------------------------------
    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        return self.metrics.histogram(name)

    def timer(self, name: str):
        return self.metrics.timer(name)

    def profile_section(self, name: str):
        return self.metrics.profile_section(name)

    def emit(self, etype: str, **fields) -> None:
        self.events.emit(etype, **fields)

    # -- run artifacts --------------------------------------------------
    def write_manifest(self, **extra) -> Optional[str]:
        """Write ``manifest.json`` into the run directory (if any)."""
        if not self.run_dir:
            return None
        manifest = {
            "name": self.name,
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": list(sys.argv),
        }
        manifest.update(extra)
        path = os.path.join(self.run_dir, "manifest.json")
        with open(path, "w") as fh:
            json.dump(manifest, fh, indent=2, default=str)
        return path

    def update_manifest(self, **extra) -> Optional[str]:
        """Merge ``extra`` into an existing ``manifest.json`` (if any).

        Used for facts only known mid-run — e.g. the health watchdog's
        halt reason. A no-op for memory-only sessions.
        """
        if not self.run_dir:
            return None
        path = os.path.join(self.run_dir, "manifest.json")
        manifest = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError):  # pragma: no cover - defensive
                manifest = {}
        manifest.update(extra)
        with open(path, "w") as fh:
            json.dump(manifest, fh, indent=2, default=str)
        return path

    def write_metrics(self) -> Optional[str]:
        """Snapshot every metric to ``metrics.json`` (if file-backed)."""
        if not self.run_dir:
            return None
        path = os.path.join(self.run_dir, "metrics.json")
        with open(path, "w") as fh:
            json.dump(self.metrics.snapshot(), fh, indent=2, default=float)
        return path

    def flush(self) -> None:
        """Write the current metrics snapshot and sync buffered events.

        Safe to call from any thread at any point in the run; the
        periodic flush thread calls it on its interval. Snapshot races
        with concurrent metric *creation* are retried on the next tick
        rather than crashing the run.
        """
        if not self.run_dir or self._closed:
            return
        try:
            self.write_metrics()
        except RuntimeError:  # dict mutated mid-snapshot; next tick wins
            pass
        self.events.flush()

    def _flush_loop(self) -> None:
        while not self._flush_stop.wait(self.flush_interval_s):
            self.flush()

    def close(self) -> None:
        """Emit ``run_end``, flush metrics and close the event log."""
        if self._closed:
            return
        if self._flush_stop is not None:
            self._flush_stop.set()
            self._flush_thread.join(timeout=5.0)
        self._closed = True
        if self.run_dir:
            self.emit(
                "run_end",
                wall_time=time.time(),
                duration_s=time.perf_counter() - self._start_perf,
            )
            self.write_metrics()
        self.events.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Shared disabled instance — every operation is a no-op.
NULL_TELEMETRY = Telemetry(enabled=False)

# The ambient stack. The bottom entry means "telemetry on, in memory":
# metrics accumulate process-wide, events go nowhere.
_STACK: List[Telemetry] = [Telemetry(name="ambient")]


def get_telemetry() -> Telemetry:
    """The currently active telemetry session (never ``None``)."""
    return _STACK[-1]


@contextmanager
def use_telemetry(telemetry: Optional[Telemetry]):
    """Make ``telemetry`` the ambient session for the ``with`` body.

    ``None`` leaves the current session in place, so call sites can write
    ``with use_telemetry(maybe_tel):`` unconditionally. Does **not** close
    the session on exit — the creator owns its lifetime.
    """
    if telemetry is None:
        yield get_telemetry()
        return
    _STACK.append(telemetry)
    try:
        yield telemetry
    finally:
        _STACK.pop()


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "run"


def start_run(
    name: str,
    base_dir: str,
    manifest: Optional[dict] = None,
    events_max_bytes: int = 4_000_000,
    reservoir_size: int = 512,
    sample_events: bool = True,
    flush_interval_s: Optional[float] = None,
) -> Telemetry:
    """Open a file-backed telemetry session under ``base_dir``.

    Creates ``<base_dir>/<name>/`` (suffixed ``-2``, ``-3``, ... if the
    directory already holds a run), writes ``manifest.json``, and emits
    the ``run_start`` event. The caller activates it with
    :func:`use_telemetry` and must :meth:`Telemetry.close` it.
    """
    slug = _slug(name)
    run_dir = os.path.join(base_dir, slug)
    n = 1
    while os.path.exists(os.path.join(run_dir, "manifest.json")):
        n += 1
        run_dir = os.path.join(base_dir, f"{slug}-{n}")
    os.makedirs(run_dir, exist_ok=True)
    tel = Telemetry(
        metrics=MetricsRegistry(reservoir_size=reservoir_size),
        events=RunLogger(run_dir, max_bytes=events_max_bytes),
        run_dir=run_dir,
        name=slug,
        sample_events=sample_events,
        flush_interval_s=flush_interval_s,
    )
    tel.write_manifest(**(manifest or {}))
    tel.emit("run_start", name=slug, wall_time=time.time())
    return tel


def telemetry_from_config(
    config: Optional[TelemetryConfig],
    name: str,
    manifest: Optional[dict] = None,
) -> Optional[Telemetry]:
    """Build the session a :class:`TelemetryConfig` asks for.

    Returns ``None`` when the config wants the ambient session (enabled,
    no run directory) — callers then simply don't push anything. Returns
    :data:`NULL_TELEMETRY` when disabled, or a fresh file-backed session
    (which the caller must close) when ``run_dir`` is set.
    """
    if config is None or (config.enabled and not config.run_dir):
        return None
    if not config.enabled:
        return NULL_TELEMETRY
    return start_run(
        name,
        config.run_dir,
        manifest=manifest,
        events_max_bytes=config.events_max_bytes,
        reservoir_size=config.reservoir_size,
        sample_events=config.sample_events,
        flush_interval_s=getattr(config, "flush_interval_s", None),
    )
