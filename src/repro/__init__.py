"""Mars: Accelerated Device Placement Optimization with Contrastive Learning.

A complete, self-contained reproduction of Lan, Chen & Li (ICPP 2021):
a reinforcement-learning device placer built from a DGI-pre-trained GCN
encoder and a segment-level seq2seq placer, together with every substrate
it needs — workload graph generators, a multi-GPU machine simulator, a
NumPy autodiff framework, baseline agents, and the full experiment harness.

Quickstart::

    from repro import build_gnmt, ClusterSpec, optimize_placement, fast_profile

    graph = build_gnmt(scale=0.25)
    result = optimize_placement(graph, ClusterSpec.default(), "mars", fast_profile())
    print(result.final_runtime, result.history.best_placement)
"""

from repro.config import MarsConfig, fast_profile, paper_profile, with_seed
from repro.core import (
    GrouperPlacerAgent,
    OptimizationResult,
    balanced_chain_placement,
    build_encoder_placer_agent,
    build_grouper_placer_agent,
    build_mars_agent,
    generalization_run,
    gpu_only_placement,
    human_expert_placement,
    optimize_placement,
    partitioner_placement,
    transfer_agent,
)
from repro.graph import CompGraph, FeatureExtractor, OpNode
from repro.sim import ClusterSpec, MeasurementProtocol, Placement, PlacementEnv
from repro.workloads import (
    build_bert,
    build_gnmt,
    build_inception_v3,
    build_seq2seq,
    build_transformer,
    build_vgg16,
    get_workload,
    list_workloads,
)

__version__ = "1.0.0"

__all__ = [
    "MarsConfig",
    "fast_profile",
    "paper_profile",
    "with_seed",
    "GrouperPlacerAgent",
    "OptimizationResult",
    "balanced_chain_placement",
    "build_encoder_placer_agent",
    "build_grouper_placer_agent",
    "build_mars_agent",
    "generalization_run",
    "gpu_only_placement",
    "human_expert_placement",
    "optimize_placement",
    "partitioner_placement",
    "transfer_agent",
    "CompGraph",
    "FeatureExtractor",
    "OpNode",
    "ClusterSpec",
    "MeasurementProtocol",
    "Placement",
    "PlacementEnv",
    "build_bert",
    "build_gnmt",
    "build_inception_v3",
    "build_seq2seq",
    "build_transformer",
    "build_vgg16",
    "get_workload",
    "list_workloads",
    "__version__",
]
