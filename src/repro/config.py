"""Configuration profiles.

``paper_profile`` mirrors Section 4.2 exactly (3x GCN-256 encoder,
segment-level seq2seq placer with 512 LSTM units and segment length 128,
1000 DGI pre-training iterations, PPO with 10 samples/policy etc.).

``fast_profile`` keeps every architectural choice but shrinks widths and
iteration counts so the full experiment harness runs on a laptop CPU in
minutes; it is the default for the benchmark suite.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.rl.ppo import PPOConfig
from repro.rl.reward import RewardConfig
from repro.rl.trainer import TrainerConfig
from repro.sim.batch import BatchEvalConfig
from repro.sim.incremental import IncrementalEvalConfig
from repro.telemetry import HealthConfig, TelemetryConfig


@dataclass
class EncoderConfig:
    kind: str = "gcn"  # "gcn" | "sage" | "identity"
    hidden_dim: int = 256
    num_layers: int = 3


@dataclass
class PlacerConfig:
    kind: str = "segment_seq2seq"  # | "seq2seq" | "transformer_xl" | "mlp"
    hidden_size: int = 512
    segment_size: int = 128
    action_embed_dim: int = 32
    # Transformer-XL specific
    model_dim: int = 128
    n_layers: int = 2
    n_heads: int = 4


@dataclass
class PretrainConfig:
    enabled: bool = True
    iterations: int = 1000
    learning_rate: float = 1e-3
    grad_clip: float = 1.0


@dataclass
class GrouperConfig:
    num_groups: int = 64
    hidden_size: int = 64


@dataclass
class SnapshotConfig:
    """Crash-safe run-state snapshots (``repro.core.runstate``).

    Lives here rather than next to the manager because ``MarsConfig``
    carries it and ``repro.config`` must stay importable without pulling
    in ``repro.core``. ``snapshot_every=0`` writes only the terminal and
    on-halt snapshots; ``keep_last=0`` retains every snapshot.
    """

    snapshot_every: int = 5  # snapshot every N policy iterations
    keep_last: int = 2  # newest complete snapshots retained per run


@dataclass
class DistribConfig:
    """Distributed actor–learner training (``repro.distrib``).

    Lives here rather than in the package because ``MarsConfig`` carries
    it and ``repro.config`` must stay importable without pulling in
    ``repro.distrib`` (the ``SnapshotConfig`` precedent). ``workers=0``
    keeps the single-process :class:`~repro.rl.trainer.JointTrainer`
    path; ``workers>0`` runs that many rollout-worker processes feeding
    the central learner through bounded per-worker sample queues, with
    weights broadcast through a versioned variable store (see
    docs/architecture.md §"Distributed training").
    """

    #: Rollout-worker processes. 0 disables the subsystem entirely.
    workers: int = 0
    #: Placements sampled per worker batch (``None`` mirrors the
    #: trainer's ``samples_per_policy``, keeping one consumed batch ==
    #: one single-process policy iteration).
    samples_per_batch: Optional[int] = None
    #: Bound of each worker's sample queue, in batches. Full queues
    #: apply backpressure: a worker blocks (heartbeating) instead of
    #: racing arbitrarily far ahead of the learner.
    queue_capacity: int = 4
    #: Publish fresh weights every N learner updates (1 = every update).
    broadcast_every: int = 1
    #: Drop batches sampled more than this many policy versions behind
    #: the latest broadcast (``None``: consume everything). Dropped
    #: batches do not count against the sample budget.
    max_staleness: Optional[int] = 4
    #: A worker whose heartbeat is older than this is declared hung and
    #: restarted (its queue is discarded with it).
    heartbeat_timeout_s: float = 30.0
    #: Learner sleep between queue polls while waiting for samples.
    poll_interval_s: float = 0.005
    #: Restarts allowed per worker slot before it is declared lost; the
    #: run degrades to the surviving workers (and halts if none remain).
    max_worker_restarts: int = 2
    #: Consume batches in deterministic round-robin (worker 0 seq 0,
    #: worker 1 seq 0, worker 0 seq 1, ...) instead of arrival order.
    #: Removes consumption-order nondeterminism for tests/repro runs at
    #: the cost of head-of-line blocking; not for production throughput.
    ordered: bool = False
    #: Seconds the learner waits for workers to exit after setting the
    #: shutdown event before terminating them.
    shutdown_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.broadcast_every < 1:
            raise ValueError(
                f"broadcast_every must be >= 1, got {self.broadcast_every}"
            )
        if self.max_staleness is not None and self.max_staleness < 0:
            raise ValueError(
                f"max_staleness must be >= 0 or None, got {self.max_staleness}"
            )
        if self.max_worker_restarts < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0, got {self.max_worker_restarts}"
            )


@dataclass
class MarsConfig:
    """Everything needed to build and train one agent."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    placer: PlacerConfig = field(default_factory=PlacerConfig)
    pretrain: PretrainConfig = field(default_factory=PretrainConfig)
    grouper: GrouperConfig = field(default_factory=GrouperConfig)
    trainer: TrainerConfig = field(default_factory=TrainerConfig)
    # Observability (docs/observability.md): metrics always accumulate
    # in memory when enabled; set ``telemetry.run_dir`` to also write a
    # JSONL event log + manifest per ``optimize_placement`` call, or
    # ``telemetry.enabled = False`` to turn every hook into a no-op.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    # Training-health watchdog (docs/observability.md §"Alert taxonomy"):
    # sliding-window detectors over the trainer's update/iteration streams
    # (NaN guard, entropy collapse, KL blow-up, reward plateau, invalid-
    # placement-rate spike). ``action`` picks log/warn/halt; the runner
    # exposes it as ``--health``/``--no-health``.
    health: HealthConfig = field(default_factory=HealthConfig)
    # Batched placement evaluation (docs/architecture.md §2): how
    # ``PlacementEnv.evaluate_batch`` spreads a rollout's measurements
    # over workers, and the bound on the environment's result cache.
    # The default is cpu-count-aware with a deterministic serial
    # fallback, so seeded runs reproduce on any machine.
    eval_batch: BatchEvalConfig = field(default_factory=BatchEvalConfig)
    # Incremental makespan re-evaluation (docs/performance.md): resume
    # near-anchor placements from the anchored baseline's snapshots
    # instead of resimulating from scratch. Bit-identical to the full
    # simulator by contract; the runner exposes ``--no-incremental`` for
    # A/B runs.
    incremental: IncrementalEvalConfig = field(default_factory=IncrementalEvalConfig)
    # Crash-safe resumable runs (docs/architecture.md §"Run state &
    # resume"): cadence and retention of run-state snapshots, used when
    # ``optimize_placement`` is given a ``snapshot_dir`` (the runner's
    # ``--snapshot-dir``/``--snapshot-every``/``--resume``).
    snapshot: SnapshotConfig = field(default_factory=SnapshotConfig)
    # Distributed actor–learner training (docs/architecture.md
    # §"Distributed training"): ``workers>0`` fans rollouts out to that
    # many worker processes feeding the central learner; the runner
    # exposes it as ``--workers``/``--no-distrib``. ``workers=0`` (the
    # default) is the single-process path, bit-for-bit unchanged.
    distrib: DistribConfig = field(default_factory=DistribConfig)
    seed: int = 0


def paper_profile() -> MarsConfig:
    """The configuration of Section 4.2 (slow on a CPU-only machine)."""
    return MarsConfig(
        encoder=EncoderConfig(hidden_dim=256, num_layers=3),
        placer=PlacerConfig(hidden_size=512, segment_size=128),
        pretrain=PretrainConfig(iterations=1000),
        trainer=TrainerConfig(
            iterations=100,
            samples_per_policy=10,
            update_min_samples=20,
            ppo=PPOConfig(
                clip_ratio=0.2,
                entropy_coef=1e-3,
                learning_rate=3e-4,
                epochs=3,
                minibatches=4,
                grad_clip_norm=1.0,
            ),
            reward=RewardConfig(transform="neg_sqrt", ema_mu=0.99),
        ),
    )


def fast_profile(seed: int = 0, iterations: int = 40) -> MarsConfig:
    """Laptop-scale profile preserving the paper's architecture and
    training structure at reduced widths and budgets."""
    return MarsConfig(
        encoder=EncoderConfig(hidden_dim=48, num_layers=3),
        placer=PlacerConfig(
            hidden_size=48,
            segment_size=32,
            action_embed_dim=12,
            model_dim=48,
            n_layers=2,
            n_heads=4,
        ),
        pretrain=PretrainConfig(iterations=150),
        grouper=GrouperConfig(num_groups=24, hidden_size=32),
        trainer=TrainerConfig(
            iterations=iterations,
            samples_per_policy=10,
            update_min_samples=20,
            # Fewer, larger updates with a hotter learning rate and
            # batch-normalized advantages — converges in tens of policy
            # iterations instead of the paper's hundreds.
            ppo=PPOConfig(epochs=1, minibatches=2, learning_rate=1e-3),
            reward=RewardConfig(
                transform="neg_sqrt", ema_mu=0.99, advantage_normalization=True
            ),
            log_every=0,
            seed=seed,
        ),
        seed=seed,
    )


def config_to_echo(config: MarsConfig) -> dict:
    """The architecture-defining slice of a config, as plain JSON data.

    This is what ``save_agent`` records in the checkpoint sidecar: the
    sub-configs that size the agent's networks (encoder, placer, grouper)
    plus the build seed. ``config_from_echo`` inverts it, so a checkpoint
    can be rebuilt without knowing which profile trained it.
    """
    return {
        "encoder": asdict(config.encoder),
        "placer": asdict(config.placer),
        "grouper": asdict(config.grouper),
        "seed": config.seed,
    }


def _dataclass_from_echo(cls, doc: dict):
    """Build ``cls`` from ``doc``, ignoring unknown keys (a sidecar written
    by a newer version may carry fields this version doesn't know)."""
    known = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in doc.items() if k in known})


def config_from_echo(echo: dict, base: Optional[MarsConfig] = None) -> MarsConfig:
    """Rebuild a :class:`MarsConfig` from a sidecar's ``config`` echo.

    Architecture fields (encoder/placer/grouper, seed) come from the echo;
    everything else — trainer, telemetry, health, eval_batch — from
    ``base`` (default: :func:`fast_profile`), since those don't affect
    parameter shapes.
    """
    base = base if base is not None else fast_profile()
    return replace(
        base,
        encoder=_dataclass_from_echo(EncoderConfig, echo.get("encoder", {})),
        placer=_dataclass_from_echo(PlacerConfig, echo.get("placer", {})),
        grouper=_dataclass_from_echo(GrouperConfig, echo.get("grouper", {})),
        seed=echo.get("seed", base.seed),
    )


def with_seed(config: MarsConfig, seed: int) -> MarsConfig:
    """A copy of ``config`` with every seed field set to ``seed``."""
    return replace(
        config,
        seed=seed,
        trainer=replace(config.trainer, seed=seed),
    )
