"""Workload registry — name-based lookup used by the experiment harness."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph import CompGraph
from repro.workloads.bert import build_bert
from repro.workloads.gnmt import build_gnmt
from repro.workloads.inception import build_inception_v3
from repro.workloads.resnet import build_resnet50
from repro.workloads.seq2seq_wl import build_seq2seq
from repro.workloads.transformer_wl import build_transformer
from repro.workloads.vgg import build_vgg16

WORKLOADS: Dict[str, Callable[..., CompGraph]] = {
    "inception_v3": build_inception_v3,
    "gnmt4": build_gnmt,
    "bert": build_bert,
    "vgg16": build_vgg16,
    "resnet50": build_resnet50,
    "seq2seq": build_seq2seq,
    "transformer": build_transformer,
}


def list_workloads() -> List[str]:
    """Names of all registered workload generators, sorted."""
    return sorted(WORKLOADS)


def get_workload(name: str, **kwargs) -> CompGraph:
    """Build workload ``name`` with generator-specific ``kwargs``."""
    try:
        builder = WORKLOADS[name]
    except KeyError as exc:
        raise KeyError(f"unknown workload {name!r}; choose from {list_workloads()}") from exc
    return builder(**kwargs)
