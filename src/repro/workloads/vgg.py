"""VGG16 computational graph (generalization study, Table 3).

Used as the "similar type" training workload for Inception-V3 and the
"different type" workload for BERT.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import GraphBuilder, matmul_flops

# (blocks of convs, channels, spatial size after the block's pool)
_STAGES = [
    (2, 64, 112),
    (2, 128, 56),
    (3, 256, 28),
    (3, 512, 14),
    (3, 512, 7),
]


def build_vgg16(batch_size: int = 32, scale: float = 1.0, num_classes: int = 1000) -> CompGraph:
    """Build the VGG16 training graph."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    b = GraphBuilder(f"vgg16_b{batch_size}" + ("" if scale == 1.0 else f"_s{scale}"))
    B = batch_size

    x = b.op("input", "Input", shape=(B, 224, 224, 3), cpu_only=True)
    c_in = 3
    hw = 224
    for stage, (n_convs, c_out, out_hw) in enumerate(_STAGES):
        n = max(1, ceil(n_convs * scale))
        for i in range(n):
            x = b.conv_block(f"stage{stage}/conv{i}", x, B, hw, c_in, c_out, 3)
            c_in = c_out
        x = b.op(f"stage{stage}/pool", "MaxPool", inputs=[x],
                 shape=(B, out_hw, out_hw, c_out), flops=4.0 * B * hw * hw * c_out)
        hw = out_hw

    x = b.op("flatten", "Reshape", inputs=[x], shape=(B, 7 * 7 * 512))
    fc_dims = [(7 * 7 * 512, 4096), (4096, 4096), (4096, num_classes)]
    for i, (d_in, d_out) in enumerate(fc_dims):
        x = b.op(f"fc{i}", "MatMul", inputs=[x], shape=(B, d_out),
                 flops=matmul_flops(B, d_in, d_out), params=4.0 * d_in * d_out)
        if i < 2:
            x = b.op(f"fc{i}/relu", "ReLU", inputs=[x], shape=(B, d_out),
                     flops=float(B * d_out))
    x = b.op("loss", "CrossEntropy", inputs=[x], shape=(B,), flops=4.0 * B * num_classes)
    b.op("train/apply_gradients", "ApplyGradient", inputs=[x], shape=(1,),
         flops=3.0 * 138e6)
    return b.build()
