"""A 6-layer Transformer encoder (generalization study, Table 3).

Used as the "similar type" training workload for BERT — same block
structure, smaller depth/sequence/batch.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.bert import _attention_block, _ffn_block
from repro.workloads.builder import BYTES_PER_ELEMENT, GraphBuilder, matmul_flops


def build_transformer(
    batch_size: int = 32,
    seq_len: int = 128,
    scale: float = 1.0,
    num_layers: int = 6,
    hidden: int = 512,
    heads: int = 8,
    ffn: int = 2048,
    vocab: int = 16000,
) -> CompGraph:
    """Build a Transformer encoder training graph (post-norm, BERT-style)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    L = max(2, ceil(num_layers * scale))
    B, S, H = batch_size, seq_len, hidden
    tokens = B * S
    b = GraphBuilder(f"transformer_b{B}" + ("" if scale == 1.0 else f"_s{scale}"))

    ids = b.op("input_ids", "Input", shape=(B, S), cpu_only=True)
    x = b.op("embeddings/lookup", "Embedding", inputs=[ids], shape=(B, S, H),
             flops=float(tokens * H), params=BYTES_PER_ELEMENT * vocab * H,
             coloc="tfm_embed")
    for i in range(L):
        x = _attention_block(b, x, f"layer{i}/attention", B, S, H, heads)
        x = _ffn_block(b, x, f"layer{i}/ffn", B, S, H, ffn)
    logits = b.op("head/logits", "MatMul", inputs=[x], shape=(B, S, vocab),
                  flops=matmul_flops(tokens, H, vocab), coloc="tfm_embed",
                  act_bytes=BYTES_PER_ELEMENT * tokens * vocab)
    loss = b.op("head/loss", "CrossEntropy", inputs=[logits], shape=(1,),
                flops=4.0 * tokens * vocab, coloc="tfm_embed")
    b.op("train/apply_gradients", "ApplyGradient", inputs=[loss], shape=(1,),
         flops=3.0 * (vocab * H + L * 12 * H * H))
    return b.build()
