"""BERT-Base computational graph (Devlin et al., 2019; paper §4.1 setup).

Configuration from the paper: BERT-Base (12 layers, hidden 768, 12 heads,
FFN 3072), maximum sequence length 384, batch size 24 — roughly 24 GB of
training memory, so the graph *must* be split across multiple 12 GB GPUs
and inter-GPU communication becomes the bottleneck.

Every matmul/attention/layernorm inside each transformer layer is a
separate placeable op, mirroring the TF graph structure.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import BYTES_PER_ELEMENT, GraphBuilder, matmul_flops

HIDDEN = 768
HEADS = 12
FFN = 3072
LAYERS = 12
VOCAB = 30522


def _attention_block(b: GraphBuilder, x: str, prefix: str, B: int, S: int, H: int, heads: int) -> str:
    qkv_params = BYTES_PER_ELEMENT * H * H
    tokens = B * S
    act = BYTES_PER_ELEMENT * tokens * H

    q = b.op(f"{prefix}/q", "MatMul", inputs=[x], shape=(B, S, H),
             flops=matmul_flops(tokens, H, H), params=qkv_params, act_bytes=act)
    k = b.op(f"{prefix}/k", "MatMul", inputs=[x], shape=(B, S, H),
             flops=matmul_flops(tokens, H, H), params=qkv_params, act_bytes=act)
    v = b.op(f"{prefix}/v", "MatMul", inputs=[x], shape=(B, S, H),
             flops=matmul_flops(tokens, H, H), params=qkv_params, act_bytes=act)

    scores_act = BYTES_PER_ELEMENT * B * heads * S * S
    scores = b.op(f"{prefix}/scores", "MatMul", inputs=[q, k], shape=(B, heads, S, S),
                  flops=matmul_flops(B * heads * S, H // heads, S), act_bytes=scores_act)
    probs = b.op(f"{prefix}/softmax", "Softmax", inputs=[scores], shape=(B, heads, S, S),
                 flops=5.0 * B * heads * S * S, act_bytes=scores_act)
    ctx = b.op(f"{prefix}/context", "MatMul", inputs=[probs, v], shape=(B, S, H),
               flops=matmul_flops(B * heads * S, S, H // heads), act_bytes=act)
    out = b.op(f"{prefix}/output", "MatMul", inputs=[ctx], shape=(B, S, H),
               flops=matmul_flops(tokens, H, H), params=qkv_params, act_bytes=act)
    res = b.op(f"{prefix}/residual", "Add", inputs=[out, x], shape=(B, S, H),
               flops=float(tokens * H), act_bytes=act)
    return b.op(f"{prefix}/layernorm", "LayerNorm", inputs=[res], shape=(B, S, H),
                flops=8.0 * tokens * H, params=BYTES_PER_ELEMENT * 2 * H, act_bytes=act)


def _ffn_block(b: GraphBuilder, x: str, prefix: str, B: int, S: int, H: int, F: int) -> str:
    tokens = B * S
    act_h = BYTES_PER_ELEMENT * tokens * H
    act_f = BYTES_PER_ELEMENT * tokens * F
    h = b.op(f"{prefix}/fc1", "MatMul", inputs=[x], shape=(B, S, F),
             flops=matmul_flops(tokens, H, F), params=BYTES_PER_ELEMENT * H * F,
             act_bytes=act_f)
    h = b.op(f"{prefix}/gelu", "GeLU", inputs=[h], shape=(B, S, F),
             flops=8.0 * tokens * F, act_bytes=act_f)
    h = b.op(f"{prefix}/fc2", "MatMul", inputs=[h], shape=(B, S, H),
             flops=matmul_flops(tokens, F, H), params=BYTES_PER_ELEMENT * F * H,
             act_bytes=act_h)
    res = b.op(f"{prefix}/residual", "Add", inputs=[h, x], shape=(B, S, H),
               flops=float(tokens * H), act_bytes=act_h)
    return b.op(f"{prefix}/layernorm", "LayerNorm", inputs=[res], shape=(B, S, H),
                flops=8.0 * tokens * H, params=BYTES_PER_ELEMENT * 2 * H, act_bytes=act_h)


def build_bert(
    batch_size: int = 24,
    seq_len: int = 384,
    scale: float = 1.0,
    num_layers: int = LAYERS,
    hidden: int = HIDDEN,
    heads: int = HEADS,
    ffn: int = FFN,
    vocab: int = VOCAB,
) -> CompGraph:
    """Build the BERT-Base pre-training graph (MLM head).

    ``scale`` shrinks the number of transformer layers (min 2) while keeping
    per-layer dimensions — op costs stay realistic, op count shrinks.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    L = max(2, ceil(num_layers * scale))
    B, S, H = batch_size, seq_len, hidden
    tokens = B * S
    b = GraphBuilder(f"bert_base_b{B}" + ("" if scale == 1.0 else f"_s{scale}"))

    ids = b.op("input_ids", "Input", shape=(B, S), cpu_only=True)
    emb_params = BYTES_PER_ELEMENT * (vocab + 512 + 2) * H
    x = b.op("embeddings/lookup", "Embedding", inputs=[ids], shape=(B, S, H),
             flops=float(tokens * H), params=emb_params, coloc="bert_embed")
    x = b.op("embeddings/layernorm", "LayerNorm", inputs=[x], shape=(B, S, H),
             flops=8.0 * tokens * H, params=BYTES_PER_ELEMENT * 2 * H)

    for i in range(L):
        x = _attention_block(b, x, f"layer{i}/attention", B, S, H, heads)
        x = _ffn_block(b, x, f"layer{i}/ffn", B, S, H, ffn)

    # MLM head: transform + output logits over the vocabulary (weights tied
    # to the embedding -> colocation).
    x = b.op("mlm/transform", "MatMul", inputs=[x], shape=(B, S, H),
             flops=matmul_flops(tokens, H, H), params=BYTES_PER_ELEMENT * H * H)
    x = b.op("mlm/layernorm", "LayerNorm", inputs=[x], shape=(B, S, H),
             flops=8.0 * tokens * H, params=BYTES_PER_ELEMENT * 2 * H)
    logits = b.op("mlm/logits", "MatMul", inputs=[x], shape=(B, S, vocab),
                  flops=matmul_flops(tokens, H, vocab), coloc="bert_embed",
                  act_bytes=BYTES_PER_ELEMENT * tokens * vocab)
    loss = b.op("mlm/loss", "CrossEntropy", inputs=[logits], shape=(1,),
                flops=4.0 * tokens * vocab, coloc="bert_embed")
    layer_params = 12 * BYTES_PER_ELEMENT * H * H  # approx per layer
    total_params = emb_params + L * layer_params
    b.op("train/apply_gradients", "ApplyGradient", inputs=[loss], shape=(1,),
         flops=3.0 * total_params / BYTES_PER_ELEMENT)
    return b.build()
