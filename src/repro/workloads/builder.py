"""Fluent builder for workload graphs with standard cost formulas."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.graph import CompGraph, OpNode

BYTES_PER_ELEMENT = 4.0  # float32


def elements(shape: Sequence[int]) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


def tensor_bytes(shape: Sequence[int]) -> float:
    return BYTES_PER_ELEMENT * elements(shape)


def conv2d_flops(batch: int, out_h: int, out_w: int, c_in: int, c_out: int, kernel: int) -> float:
    """Multiply-accumulate counted as 2 FLOPs."""
    return 2.0 * batch * out_h * out_w * c_in * c_out * kernel * kernel


def matmul_flops(m: int, k: int, n: int) -> float:
    return 2.0 * m * k * n


def lstm_cell_flops(batch: int, input_size: int, hidden: int) -> float:
    # Fused gate matmuls plus elementwise gate math.
    return 2.0 * batch * (input_size + hidden) * 4 * hidden + 12.0 * batch * hidden


class GraphBuilder:
    """Thin convenience wrapper over :class:`CompGraph` construction.

    ``op(...)`` returns the node name so calls compose naturally::

        x = b.op("stem/conv", "Conv2D", inputs=[x], shape=(32, 149, 149, 32), ...)
    """

    def __init__(self, name: str):
        self.graph = CompGraph(name)

    def op(
        self,
        name: str,
        op_type: str,
        inputs: Sequence[str] = (),
        shape: Tuple[int, ...] = (),
        flops: float = 0.0,
        params: float = 0.0,
        act_bytes: Optional[float] = None,
        cpu_only: bool = False,
        coloc: Optional[str] = None,
    ) -> str:
        if act_bytes is None:
            act_bytes = tensor_bytes(shape)
        node = OpNode(
            name=name,
            op_type=op_type,
            output_shape=tuple(shape),
            flops=flops,
            param_bytes=params,
            activation_bytes=act_bytes,
            cpu_only=cpu_only,
            colocation_group=coloc,
        )
        self.graph.add_node(node, inputs=inputs)
        return name

    def conv_block(
        self,
        prefix: str,
        x: str,
        batch: int,
        out_hw: int,
        c_in: int,
        c_out: int,
        kernel: int,
        with_bn_relu: bool = True,
    ) -> str:
        """Conv2D (+ BatchNorm + ReLU) producing NHWC ``(B, H, W, C)``."""
        shape = (batch, out_hw, out_hw, c_out)
        param_bytes = BYTES_PER_ELEMENT * kernel * kernel * c_in * c_out
        x = self.op(
            f"{prefix}/conv",
            "Conv2D",
            inputs=[x],
            shape=shape,
            flops=conv2d_flops(batch, out_hw, out_hw, c_in, c_out, kernel),
            params=param_bytes,
        )
        if with_bn_relu:
            bn_flops = 4.0 * elements(shape)
            x = self.op(
                f"{prefix}/bn",
                "BatchNorm",
                inputs=[x],
                shape=shape,
                flops=bn_flops,
                params=BYTES_PER_ELEMENT * 4 * c_out,
            )
            x = self.op(
                f"{prefix}/relu",
                "ReLU",
                inputs=[x],
                shape=shape,
                flops=float(elements(shape)),
            )
        return x

    def build(self) -> CompGraph:
        self.graph.validate()
        return self.graph
