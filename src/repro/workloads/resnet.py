"""ResNet-50 computational graph (He et al., 2016).

Not part of the paper's benchmark trio, but the standard extra vision
workload in follow-up device-placement work (Placeto, GDP) — included so
downstream users have a second large CNN, and as another generalization
source.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import GraphBuilder, matmul_flops

# (number of bottleneck blocks, base width, spatial size)
_STAGES = [
    (3, 64, 56),
    (4, 128, 28),
    (6, 256, 14),
    (3, 512, 7),
]


def _bottleneck(b: GraphBuilder, x: str, prefix: str, batch: int, hw: int,
                c_in: int, width: int, downsample: bool) -> str:
    """1x1 -> 3x3 -> 1x1 bottleneck with residual connection."""
    c_out = 4 * width
    br = b.conv_block(f"{prefix}/conv1", x, batch, hw, c_in, width, 1)
    br = b.conv_block(f"{prefix}/conv2", br, batch, hw, width, width, 3)
    br = b.conv_block(f"{prefix}/conv3", br, batch, hw, width, c_out, 1, with_bn_relu=False)
    br = b.op(f"{prefix}/bn3", "BatchNorm", inputs=[br], shape=(batch, hw, hw, c_out),
              flops=4.0 * batch * hw * hw * c_out, params=16.0 * c_out)
    if downsample:
        shortcut = b.conv_block(f"{prefix}/shortcut", x, batch, hw, c_in, c_out, 1,
                                with_bn_relu=False)
    else:
        shortcut = x
    out = b.op(f"{prefix}/add", "Add", inputs=[br, shortcut],
               shape=(batch, hw, hw, c_out), flops=float(batch * hw * hw * c_out))
    return b.op(f"{prefix}/relu", "ReLU", inputs=[out],
                shape=(batch, hw, hw, c_out), flops=float(batch * hw * hw * c_out))


def build_resnet50(batch_size: int = 32, scale: float = 1.0, num_classes: int = 1000) -> CompGraph:
    """Build the ResNet-50 training graph."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    b = GraphBuilder(f"resnet50_b{batch_size}" + ("" if scale == 1.0 else f"_s{scale}"))
    B = batch_size

    x = b.op("input", "Input", shape=(B, 224, 224, 3), cpu_only=True)
    x = b.conv_block("stem/conv", x, B, 112, 3, 64, 7)
    x = b.op("stem/pool", "MaxPool", inputs=[x], shape=(B, 56, 56, 64),
             flops=9.0 * B * 56 * 56 * 64)

    c_in = 64
    for stage, (blocks, width, hw) in enumerate(_STAGES):
        n = max(1, ceil(blocks * scale))
        for i in range(n):
            x = _bottleneck(b, x, f"stage{stage}/block{i}", B, hw, c_in, width,
                            downsample=(i == 0))
            c_in = 4 * width

    x = b.op("head/pool", "AvgPool", inputs=[x], shape=(B, 1, 1, c_in),
             flops=float(B * 7 * 7 * c_in))
    x = b.op("head/reshape", "Reshape", inputs=[x], shape=(B, c_in))
    x = b.op("head/fc", "MatMul", inputs=[x], shape=(B, num_classes),
             flops=matmul_flops(B, c_in, num_classes), params=4.0 * c_in * num_classes)
    x = b.op("head/loss", "CrossEntropy", inputs=[x], shape=(B,),
             flops=4.0 * B * num_classes)
    b.op("train/apply_gradients", "ApplyGradient", inputs=[x], shape=(1,),
         flops=3.0 * 25.6e6)
    return b.build()
