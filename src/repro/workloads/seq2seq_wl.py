"""A plain 2-layer seq2seq translation model (generalization study).

Used as the "similar type" training workload for GNMT-4 in Table 3 —
structurally an RNN encoder-decoder like GNMT but smaller and without
attention/residuals.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import BYTES_PER_ELEMENT, GraphBuilder, lstm_cell_flops, matmul_flops


def build_seq2seq(
    batch_size: int = 128,
    seq_len: int = 30,
    scale: float = 1.0,
    hidden: int = 512,
    vocab: int = 16000,
    num_layers: int = 2,
) -> CompGraph:
    """Build an unrolled vanilla seq2seq training graph."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    T = max(4, ceil(seq_len * scale))
    B, H = batch_size, hidden
    b = GraphBuilder(f"seq2seq_b{B}" + ("" if scale == 1.0 else f"_s{scale}"))

    src = b.op("src_input", "Input", shape=(T, B), cpu_only=True)
    tgt = b.op("tgt_input", "Input", shape=(T, B), cpu_only=True)
    emb_params = BYTES_PER_ELEMENT * vocab * H
    src_emb = b.op("src_embedding", "Embedding", inputs=[src], shape=(T, B, H),
                   flops=float(T * B * H), params=emb_params)
    tgt_emb = b.op("tgt_embedding", "Embedding", inputs=[tgt], shape=(T, B, H),
                   flops=float(T * B * H), params=emb_params)

    cell_params = BYTES_PER_ELEMENT * (2 * H) * 4 * H
    cell_flops = lstm_cell_flops(B, H, H)
    cell_act = BYTES_PER_ELEMENT * B * H * 6

    def unroll(prefix: str, emb: str, carry_in: str = None) -> list:
        prev = [b.op(f"{prefix}/slice_t{t}", "Split", inputs=[emb], shape=(B, H))
                for t in range(T)]
        last = None
        for layer in range(num_layers):
            outs = []
            prev_cell = carry_in if layer == 0 else None
            for t in range(T):
                inputs = [prev[t]]
                if prev_cell is not None:
                    inputs.append(prev_cell)
                name = b.op(f"{prefix}/l{layer}/cell_t{t}", "LSTMCell", inputs=inputs,
                            shape=(B, H), flops=cell_flops,
                            params=cell_params if t == 0 else 0.0, act_bytes=cell_act)
                outs.append(name)
                prev_cell = name
            prev = outs
            last = prev_cell
        return prev, last

    _, enc_state = unroll("enc", src_emb)
    dec_out, _ = unroll("dec", tgt_emb, carry_in=enc_state)

    proj_params = BYTES_PER_ELEMENT * H * vocab
    losses = []
    for t in range(T):
        logits = b.op(f"proj/logits_t{t}", "MatMul", inputs=[dec_out[t]],
                      shape=(B, vocab), flops=matmul_flops(B, H, vocab),
                      params=proj_params if t == 0 else 0.0, coloc="softmax_w")
        losses.append(b.op(f"proj/loss_t{t}", "CrossEntropy", inputs=[logits],
                           shape=(B,), flops=4.0 * B * vocab, coloc="softmax_w"))
    total = b.op("loss/sum", "Reduce", inputs=losses, shape=(1,), flops=float(T * B))
    b.op("train/apply_gradients", "ApplyGradient", inputs=[total], shape=(1,),
         flops=3.0 * (2 * emb_params + 2 * num_layers * cell_params) / BYTES_PER_ELEMENT)
    return b.build()
