"""GNMT-4 computational graph (Wu et al., 2016; 4-layer variant, paper §4.1).

The paper's configuration: 4 LSTM layers with an attention layer, sequence
length 20-50, batch size 256 — large enough that training does not fit in a
single 12 GB GPU, which is exactly what makes this workload interesting for
placement. The graph is unrolled over time like the TF graphs used by the
Hierarchical Planner, so each (layer, time-step) LSTM cell is a placeable
operation.

Cost calibration: we use hidden size 1024 (the published GNMT size; the
paper's "256 hidden units" would trivially fit on one GPU and could never
exhibit the reported OOM behaviour) and a 32k vocabulary.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import (
    BYTES_PER_ELEMENT,
    GraphBuilder,
    lstm_cell_flops,
    matmul_flops,
)

HIDDEN = 1024
VOCAB = 32000
NUM_LAYERS = 4


def build_gnmt(
    batch_size: int = 256,
    seq_len: int = 40,
    scale: float = 1.0,
    hidden: int = HIDDEN,
    vocab: int = VOCAB,
    num_layers: int = NUM_LAYERS,
) -> CompGraph:
    """Build the unrolled GNMT-4 training graph.

    ``scale`` shrinks the unrolled sequence length (not the layer count or
    dimensions) so op count drops while per-op costs stay realistic.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    T = max(4, ceil(seq_len * scale))
    B = batch_size
    H = hidden
    b = GraphBuilder(f"gnmt{num_layers}_b{B}" + ("" if scale == 1.0 else f"_s{scale}"))

    src = b.op("src_input", "Input", shape=(T, B), cpu_only=True)
    tgt = b.op("tgt_input", "Input", shape=(T, B), cpu_only=True)

    # Embedding lookups. TF colocates the variable with its gather.
    emb_params = BYTES_PER_ELEMENT * vocab * H
    src_emb = b.op("src_embedding", "Embedding", inputs=[src], shape=(T, B, H),
                   flops=float(T * B * H), params=emb_params, coloc="src_embed")
    tgt_emb = b.op("tgt_embedding", "Embedding", inputs=[tgt], shape=(T, B, H),
                   flops=float(T * B * H), params=emb_params, coloc="tgt_embed")

    cell_params = BYTES_PER_ELEMENT * (2 * H) * 4 * H + BYTES_PER_ELEMENT * 4 * H
    cell_flops = lstm_cell_flops(B, H, H)
    # Activation storage per unrolled TF cell: gates (4H), candidate, cell
    # and hidden states, dropout masks, and the backward workspace copies
    # TF keeps for every intermediate of the fused cell (~18 H-sized
    # tensors). This is what makes batch-256 GNMT exceed a 12 GB device.
    cell_act = BYTES_PER_ELEMENT * B * H * 18

    # --- Encoder: num_layers stacked LSTMs unrolled over T steps ---
    prev_layer = [None] * T  # names of per-step outputs from the layer below
    for t in range(T):
        prev_layer[t] = b.op(f"enc/slice_t{t}", "Split", inputs=[src_emb], shape=(B, H))
    for layer in range(num_layers):
        outputs = []
        prev_cell = None
        for t in range(T):
            inputs = [prev_layer[t]]
            if prev_cell is not None:
                inputs.append(prev_cell)
            name = b.op(
                f"enc/l{layer}/cell_t{t}",
                "LSTMCell",
                inputs=inputs,
                shape=(B, H),
                flops=cell_flops,
                # Stash the layer's weights on the first step op; TF keeps one
                # variable shared across the unrolled steps.
                params=cell_params if t == 0 else 0.0,
                act_bytes=cell_act,
            )
            outputs.append(name)
            prev_cell = name
        # Residual connections from layer 2 upward (GNMT design).
        if layer >= 2:
            outputs = [
                b.op(f"enc/l{layer}/residual_t{t}", "Add",
                     inputs=[outputs[t], prev_layer[t]], shape=(B, H),
                     flops=float(B * H))
                for t in range(T)
            ]
        prev_layer = outputs
    enc_final = prev_layer

    # --- Decoder with attention ---
    dec_prev = [None] * T
    for t in range(T):
        dec_prev[t] = b.op(f"dec/slice_t{t}", "Split", inputs=[tgt_emb], shape=(B, H))
    attn_ctx = []
    for layer in range(num_layers):
        outputs = []
        prev_cell = None
        for t in range(T):
            inputs = [dec_prev[t]]
            if prev_cell is not None:
                inputs.append(prev_cell)
            if layer == 0:
                # Decoder layer 0 consumes the previous step's attention
                # context; at t=0 it is seeded by the encoder's final state.
                inputs.append(attn_ctx[t - 1] if t > 0 else enc_final[T - 1])
            name = b.op(
                f"dec/l{layer}/cell_t{t}",
                "LSTMCell",
                inputs=inputs,
                shape=(B, H),
                flops=cell_flops,
                params=cell_params if t == 0 else 0.0,
                act_bytes=cell_act,
            )
            outputs.append(name)
            prev_cell = name
            if layer == 0:
                # Attention over all encoder states at each decoder step.
                ctx = b.op(
                    f"dec/attn_t{t}",
                    "Attention",
                    inputs=[name] + [enc_final[min(t, T - 1)], enc_final[0]],
                    shape=(B, H),
                    flops=matmul_flops(B, H, T) + matmul_flops(B, T, H),
                    params=BYTES_PER_ELEMENT * 2 * H * H if t == 0 else 0.0,
                    act_bytes=BYTES_PER_ELEMENT * B * (T + 2 * H),
                )
                attn_ctx.append(ctx)
        if layer >= 2:
            outputs = [
                b.op(f"dec/l{layer}/residual_t{t}", "Add",
                     inputs=[outputs[t], dec_prev[t]], shape=(B, H),
                     flops=float(B * H))
                for t in range(T)
            ]
        dec_prev = outputs

    # --- Projection + loss per step ---
    proj_params = BYTES_PER_ELEMENT * H * vocab
    losses = []
    for t in range(T):
        logits = b.op(
            f"proj/logits_t{t}",
            "MatMul",
            # GNMT concatenates the top-layer output with the attention
            # context before the softmax projection.
            inputs=[dec_prev[t], attn_ctx[t]],
            shape=(B, vocab),
            flops=matmul_flops(B, H, vocab),
            params=proj_params if t == 0 else 0.0,
            coloc="softmax_w",
        )
        losses.append(
            b.op(f"proj/loss_t{t}", "CrossEntropy", inputs=[logits], shape=(B,),
                 flops=4.0 * B * vocab, coloc="softmax_w")
        )
    total = b.op("loss/sum", "Reduce", inputs=losses, shape=(1,), flops=float(T * B))
    total_params = 2 * emb_params + 2 * num_layers * cell_params + proj_params
    b.op("train/apply_gradients", "ApplyGradient", inputs=[total], shape=(1,),
         flops=3.0 * total_params / BYTES_PER_ELEMENT)
    return b.build()
