"""Benchmark workload graphs.

Programmatic generators for the computational graphs the paper evaluates on
(Inception-V3, GNMT-4, BERT-Base) and the auxiliary workloads used by the
generalization study (VGG16, a vanilla seq2seq model, a Transformer).

Each generator accepts a ``scale`` in (0, 1] that proportionally shrinks the
repeated structure (number of blocks/layers/time steps) so the experiment
harness can run at laptop scale while preserving the graph's character; the
cost attributes (FLOPs/bytes) per op are always computed from the real
architectural dimensions.
"""

from repro.workloads.inception import build_inception_v3
from repro.workloads.gnmt import build_gnmt
from repro.workloads.bert import build_bert
from repro.workloads.vgg import build_vgg16
from repro.workloads.resnet import build_resnet50
from repro.workloads.seq2seq_wl import build_seq2seq
from repro.workloads.transformer_wl import build_transformer
from repro.workloads.registry import get_workload, list_workloads, WORKLOADS

__all__ = [
    "build_inception_v3",
    "build_gnmt",
    "build_bert",
    "build_vgg16",
    "build_resnet50",
    "build_seq2seq",
    "build_transformer",
    "get_workload",
    "list_workloads",
    "WORKLOADS",
]
