"""Inception-V3 computational graph (Szegedy et al., 2016).

The full topology: stem convolutions, 3 Inception-A blocks, a grid
reduction, 4 Inception-B blocks, a second reduction, 2 Inception-C blocks,
global pooling and the classifier. Branch structures and channel counts
follow the TF-Slim implementation the paper's Human Expert baseline uses.

``scale`` < 1 drops a proportional number of the *repeated* blocks (never
the stem/reductions) to shrink the op count for fast experiments.
"""

from __future__ import annotations

from math import ceil

from repro.graph import CompGraph
from repro.workloads.builder import GraphBuilder


def _inception_a(b: GraphBuilder, x: str, prefix: str, batch: int, hw: int, c_in: int, pool_ch: int) -> str:
    """Inception-A: 1x1 / 5x5 / double-3x3 / pool branches -> concat."""
    br0 = b.conv_block(f"{prefix}/b0_1x1", x, batch, hw, c_in, 64, 1)

    br1 = b.conv_block(f"{prefix}/b1_1x1", x, batch, hw, c_in, 48, 1)
    br1 = b.conv_block(f"{prefix}/b1_5x5", br1, batch, hw, 48, 64, 5)

    br2 = b.conv_block(f"{prefix}/b2_1x1", x, batch, hw, c_in, 64, 1)
    br2 = b.conv_block(f"{prefix}/b2_3x3a", br2, batch, hw, 64, 96, 3)
    br2 = b.conv_block(f"{prefix}/b2_3x3b", br2, batch, hw, 96, 96, 3)

    br3 = b.op(f"{prefix}/b3_pool", "AvgPool", inputs=[x], shape=(batch, hw, hw, c_in),
               flops=9.0 * batch * hw * hw * c_in)
    br3 = b.conv_block(f"{prefix}/b3_1x1", br3, batch, hw, c_in, pool_ch, 1)

    c_out = 64 + 64 + 96 + pool_ch
    return b.op(f"{prefix}/concat", "Concat", inputs=[br0, br1, br2, br3],
                shape=(batch, hw, hw, c_out))


def _inception_b(b: GraphBuilder, x: str, prefix: str, batch: int, hw: int, c_in: int, mid: int) -> str:
    """Inception-B: factorized 7x7 branches (approximated as 7x1 kernels)."""
    br0 = b.conv_block(f"{prefix}/b0_1x1", x, batch, hw, c_in, 192, 1)

    br1 = b.conv_block(f"{prefix}/b1_1x1", x, batch, hw, c_in, mid, 1)
    br1 = b.conv_block(f"{prefix}/b1_1x7", br1, batch, hw, mid, mid, 3)
    br1 = b.conv_block(f"{prefix}/b1_7x1", br1, batch, hw, mid, 192, 3)

    br2 = b.conv_block(f"{prefix}/b2_1x1", x, batch, hw, c_in, mid, 1)
    br2 = b.conv_block(f"{prefix}/b2_7x1a", br2, batch, hw, mid, mid, 3)
    br2 = b.conv_block(f"{prefix}/b2_1x7a", br2, batch, hw, mid, mid, 3)
    br2 = b.conv_block(f"{prefix}/b2_7x1b", br2, batch, hw, mid, 192, 3)

    br3 = b.op(f"{prefix}/b3_pool", "AvgPool", inputs=[x], shape=(batch, hw, hw, c_in),
               flops=9.0 * batch * hw * hw * c_in)
    br3 = b.conv_block(f"{prefix}/b3_1x1", br3, batch, hw, c_in, 192, 1)

    return b.op(f"{prefix}/concat", "Concat", inputs=[br0, br1, br2, br3],
                shape=(batch, hw, hw, 768))


def _inception_c(b: GraphBuilder, x: str, prefix: str, batch: int, hw: int, c_in: int) -> str:
    """Inception-C: expanded 3x3 branches with split/concat fan-out."""
    br0 = b.conv_block(f"{prefix}/b0_1x1", x, batch, hw, c_in, 320, 1)

    br1 = b.conv_block(f"{prefix}/b1_1x1", x, batch, hw, c_in, 384, 1)
    br1a = b.conv_block(f"{prefix}/b1_1x3", br1, batch, hw, 384, 384, 3)
    br1b = b.conv_block(f"{prefix}/b1_3x1", br1, batch, hw, 384, 384, 3)

    br2 = b.conv_block(f"{prefix}/b2_1x1", x, batch, hw, c_in, 448, 1)
    br2 = b.conv_block(f"{prefix}/b2_3x3", br2, batch, hw, 448, 384, 3)
    br2a = b.conv_block(f"{prefix}/b2_1x3", br2, batch, hw, 384, 384, 3)
    br2b = b.conv_block(f"{prefix}/b2_3x1", br2, batch, hw, 384, 384, 3)

    br3 = b.op(f"{prefix}/b3_pool", "AvgPool", inputs=[x], shape=(batch, hw, hw, c_in),
               flops=9.0 * batch * hw * hw * c_in)
    br3 = b.conv_block(f"{prefix}/b3_1x1", br3, batch, hw, c_in, 192, 1)

    return b.op(f"{prefix}/concat", "Concat",
                inputs=[br0, br1a, br1b, br2a, br2b, br3],
                shape=(batch, hw, hw, 2048))


def build_inception_v3(batch_size: int = 1, scale: float = 1.0, num_classes: int = 1000) -> CompGraph:
    """Build the Inception-V3 training graph (batch size 1 in the paper)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    b = GraphBuilder(f"inception_v3_b{batch_size}" + ("" if scale == 1.0 else f"_s{scale}"))
    B = batch_size

    x = b.op("input", "Input", shape=(B, 299, 299, 3), cpu_only=True)
    x = b.op("preprocess", "Identity", inputs=[x], shape=(B, 299, 299, 3),
             flops=float(B * 299 * 299 * 3), cpu_only=True)

    # Stem
    x = b.conv_block("stem/conv0", x, B, 149, 3, 32, 3)
    x = b.conv_block("stem/conv1", x, B, 147, 32, 32, 3)
    x = b.conv_block("stem/conv2", x, B, 147, 32, 64, 3)
    x = b.op("stem/pool0", "MaxPool", inputs=[x], shape=(B, 73, 73, 64),
             flops=9.0 * B * 73 * 73 * 64)
    x = b.conv_block("stem/conv3", x, B, 73, 64, 80, 1)
    x = b.conv_block("stem/conv4", x, B, 71, 80, 192, 3)
    x = b.op("stem/pool1", "MaxPool", inputs=[x], shape=(B, 35, 35, 192),
             flops=9.0 * B * 35 * 35 * 192)

    # Inception-A x3 at 35x35
    n_a = max(1, ceil(3 * scale))
    c_in = 192
    for i in range(n_a):
        pool_ch = 32 if i == 0 else 64
        x = _inception_a(b, x, f"mixed_a{i}", B, 35, c_in, pool_ch)
        c_in = 224 + pool_ch

    # Grid reduction to 17x17
    r0 = b.conv_block("reduction_a/b0_3x3", x, B, 17, c_in, 384, 3)
    r1 = b.conv_block("reduction_a/b1_1x1", x, B, 35, c_in, 64, 1)
    r1 = b.conv_block("reduction_a/b1_3x3a", r1, B, 35, 64, 96, 3)
    r1 = b.conv_block("reduction_a/b1_3x3b", r1, B, 17, 96, 96, 3)
    r2 = b.op("reduction_a/pool", "MaxPool", inputs=[x], shape=(B, 17, 17, c_in),
              flops=9.0 * B * 17 * 17 * c_in)
    x = b.op("reduction_a/concat", "Concat", inputs=[r0, r1, r2],
             shape=(B, 17, 17, 384 + 96 + c_in))
    c_in = 384 + 96 + c_in

    # Inception-B x4 at 17x17
    n_b = max(1, ceil(4 * scale))
    mids = [128, 160, 160, 192]
    for i in range(n_b):
        x = _inception_b(b, x, f"mixed_b{i}", B, 17, c_in, mids[i % 4])
        c_in = 768

    # Grid reduction to 8x8
    r0 = b.conv_block("reduction_b/b0_1x1", x, B, 17, c_in, 192, 1)
    r0 = b.conv_block("reduction_b/b0_3x3", r0, B, 8, 192, 320, 3)
    r1 = b.conv_block("reduction_b/b1_1x1", x, B, 17, c_in, 192, 1)
    r1 = b.conv_block("reduction_b/b1_1x7", r1, B, 17, 192, 192, 3)
    r1 = b.conv_block("reduction_b/b1_7x1", r1, B, 17, 192, 192, 3)
    r1 = b.conv_block("reduction_b/b1_3x3", r1, B, 8, 192, 192, 3)
    r2 = b.op("reduction_b/pool", "MaxPool", inputs=[x], shape=(B, 8, 8, c_in),
              flops=9.0 * B * 8 * 8 * c_in)
    x = b.op("reduction_b/concat", "Concat", inputs=[r0, r1, r2],
             shape=(B, 8, 8, 320 + 192 + c_in))
    c_in = 320 + 192 + c_in

    # Inception-C x2 at 8x8
    n_c = max(1, ceil(2 * scale))
    for i in range(n_c):
        x = _inception_c(b, x, f"mixed_c{i}", B, 8, c_in)
        c_in = 2048

    # Head
    x = b.op("head/pool", "AvgPool", inputs=[x], shape=(B, 1, 1, c_in),
             flops=float(B * 8 * 8 * c_in))
    x = b.op("head/dropout", "Dropout", inputs=[x], shape=(B, 1, 1, c_in),
             flops=float(B * c_in))
    x = b.op("head/reshape", "Reshape", inputs=[x], shape=(B, c_in))
    x = b.op("head/logits", "MatMul", inputs=[x], shape=(B, num_classes),
             flops=2.0 * B * c_in * num_classes,
             params=4.0 * c_in * num_classes)
    x = b.op("head/loss", "CrossEntropy", inputs=[x], shape=(B,),
             flops=4.0 * B * num_classes)
    b.op("train/apply_gradients", "ApplyGradient", inputs=[x], shape=(1,),
         flops=3.0 * 24e6, cpu_only=False)
    return b.build()
