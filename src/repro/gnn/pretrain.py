"""The contrastive pre-training loop (paper Section 4.2).

"Before training Mars with reinforcement learning, we pre-train the graph
encoder with contrastive learning for 1000 iterations and save the
parameters corresponding to the lowest loss."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.gnn.dgi import DGI
from repro.nn import Adam, Module, clip_grad_norm
from repro.telemetry import Telemetry, get_telemetry
from repro.utils.logging import get_logger
from repro.utils.rng import new_rng

logger = get_logger("repro.gnn.pretrain")


@dataclass
class PretrainResult:
    """Outcome of encoder pre-training."""

    best_loss: float
    best_iteration: int
    losses: List[float] = field(default_factory=list)
    best_state: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return len(self.losses)


def pretrain_encoder(
    encoder: Module,
    x: np.ndarray,
    adj: sp.spmatrix,
    iterations: int = 1000,
    lr: float = 1e-3,
    grad_clip: float = 1.0,
    patience: Optional[int] = None,
    seed=None,
    telemetry: Optional[Telemetry] = None,
) -> PretrainResult:
    """Pre-train ``encoder`` with DGI on one graph; restores the best state.

    ``patience`` optionally stops early after that many iterations without
    improvement (the paper runs a fixed 1000 iterations and keeps the best).
    The DGI loss curve is recorded in the active telemetry session
    (``pretrain.loss`` histogram + one ``pretrain`` event per iteration).
    """
    rng = new_rng(seed)
    tel = telemetry or get_telemetry()
    dgi = DGI(encoder, rng=rng)
    opt = Adam(dgi.parameters(), lr=lr)
    result = PretrainResult(best_loss=float("inf"), best_iteration=-1)
    stale = 0
    for it in range(iterations):
        with tel.profile_section("pretrain.step"):
            opt.zero_grad()
            loss = dgi.loss(x, adj, rng)
            loss.backward()
            clip_grad_norm(dgi.parameters(), grad_clip)
            opt.step()
        value = loss.item()
        result.losses.append(value)
        if value < result.best_loss:
            result.best_loss = value
            result.best_iteration = it
            result.best_state = encoder.state_dict()
            stale = 0
        else:
            stale += 1
            if patience is not None and stale >= patience:
                logger.debug("pretrain early stop at iteration %d", it)
                break
        tel.counter("pretrain.iterations").inc()
        tel.histogram("pretrain.loss").observe(value)
        tel.gauge("pretrain.best_loss").set(result.best_loss)
        if tel.sample_events:
            tel.emit(
                "pretrain",
                iteration=it,
                loss=float(value),
                best_loss=float(result.best_loss),
            )
    if result.best_state:
        encoder.load_state_dict(result.best_state)
    return result
