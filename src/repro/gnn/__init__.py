"""Graph encoders and self-supervised contrastive pre-training (paper §3.1-3.2)."""

from repro.gnn.gcn import GCNLayer, GCNEncoder
from repro.gnn.sage import GraphSAGEEncoder
from repro.gnn.dgi import DGI, node_permutation
from repro.gnn.pretrain import pretrain_encoder, PretrainResult

__all__ = [
    "GCNLayer",
    "GCNEncoder",
    "GraphSAGEEncoder",
    "DGI",
    "node_permutation",
    "pretrain_encoder",
    "PretrainResult",
]
