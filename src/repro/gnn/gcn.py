"""Graph convolutional network encoder (paper Eq. 1/3).

``GCN(X, A) = PReLU( D̂^{-1/2} Â D̂^{-1/2} X Θ )`` — Mars stacks three such
layers with 256 hidden units each (Section 4.2).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np
import scipy.sparse as sp

from repro.nn import Module, PReLU, Tensor
from repro.nn.functional import spmm
from repro.nn.linear import Linear
from repro.utils.rng import new_rng


class GCNLayer(Module):
    """One graph convolution with PReLU activation."""

    def __init__(self, in_dim: int, out_dim: int, rng=None):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, bias=True, rng=rng)
        self.act = PReLU()

    def forward(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        return self.act(spmm(adj, self.linear(x)))


class GCNEncoder(Module):
    """The Mars graph encoder: ``num_layers`` GCN layers (default 3)."""

    def __init__(self, in_dim: int, hidden_dim: int = 256, num_layers: int = 3, rng=None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GCN layer")
        rng = new_rng(rng)
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.layers: List[GCNLayer] = []
        for i in range(num_layers):
            layer = GCNLayer(in_dim if i == 0 else hidden_dim, hidden_dim, rng=rng)
            self.register_module(f"gcn{i}", layer)
            self.layers.append(layer)

    @property
    def out_dim(self) -> int:
        return self.hidden_dim

    def forward(self, x: Union[np.ndarray, Tensor], adj: sp.spmatrix) -> Tensor:
        h = x if isinstance(x, Tensor) else Tensor(x)
        for layer in self.layers:
            h = layer(h, adj)
        return h
