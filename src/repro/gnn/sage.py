"""GraphSAGE encoder (Hamilton et al., 2017) — the encoder used by the
encoder-placer baseline, GDP [33].

Mean aggregator: ``h' = act( W_self h + W_neigh · mean_{j∈N(i)} h_j )``.
The neighbor mean is computed with a row-normalized adjacency (no self
loops), so isolated nodes simply aggregate a zero vector.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np
import scipy.sparse as sp

from repro.nn import Module, Tensor
from repro.nn.functional import spmm
from repro.nn.linear import Linear
from repro.utils.rng import new_rng


def row_normalized_adjacency(adj: sp.spmatrix) -> sp.csr_matrix:
    """``D^{-1} A`` with zero rows left at zero."""
    adj = adj.tocsr()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.divide(1.0, deg, out=np.zeros_like(deg), where=deg > 0)
    return (sp.diags(inv) @ adj).tocsr()


class SAGELayer(Module):
    def __init__(self, in_dim: int, out_dim: int, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.w_self = Linear(in_dim, out_dim, bias=True, rng=rng)
        self.w_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, mean_adj: sp.spmatrix) -> Tensor:
        return (self.w_self(x) + self.w_neigh(spmm(mean_adj, x))).relu()


class GraphSAGEEncoder(Module):
    """A stack of mean-aggregator SAGE layers."""

    def __init__(self, in_dim: int, hidden_dim: int = 256, num_layers: int = 3, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.layers: List[SAGELayer] = []
        for i in range(num_layers):
            layer = SAGELayer(in_dim if i == 0 else hidden_dim, hidden_dim, rng=rng)
            self.register_module(f"sage{i}", layer)
            self.layers.append(layer)

    @property
    def out_dim(self) -> int:
        return self.hidden_dim

    def forward(self, x: Union[np.ndarray, Tensor], adj: sp.spmatrix) -> Tensor:
        """``adj`` is a plain (binary) adjacency; it is row-normalized here."""
        mean_adj = row_normalized_adjacency(adj)
        h = x if isinstance(x, Tensor) else Tensor(x)
        for layer in self.layers:
            h = layer(h, mean_adj)
        return h
