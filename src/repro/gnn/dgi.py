"""Deep Graph Infomax (Veličković et al., 2019) — paper Section 3.2.

The self-supervised objective Mars pre-trains its encoder with:

1. corruption ``(X̃, Ã) ~ C(X, A)`` — node (feature-row) permutation, the
   graph structure is kept (Eq. 2, Fig. 5);
2. node representations ``H = GCNs(X, A)`` (Eq. 3);
3. readout ``s = σ(mean_i h_i)`` (Eq. 4);
4. bilinear discriminator ``D(h, s) = σ(hᵀ W s)`` (Eq. 5);
5. binary cross-entropy between positive pairs (real nodes vs. summary) and
   negative pairs (corrupted nodes vs. summary) — the Jensen-Shannon MI
   bound of Eq. 6.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.nn import Module, Parameter, Tensor, concat
from repro.nn.functional import bce_with_logits
from repro.nn import init as nn_init
from repro.utils.rng import new_rng


def node_permutation(x: np.ndarray, rng) -> np.ndarray:
    """The corruption function: shuffle feature rows between nodes."""
    rng = new_rng(rng)
    perm = rng.permutation(x.shape[0])
    return x[perm]


class DGI(Module):
    """Wraps an encoder with the DGI readout/discriminator and loss."""

    def __init__(self, encoder: Module, rng=None):
        super().__init__()
        rng = new_rng(rng)
        self.encoder = encoder
        dim = encoder.out_dim
        self.w_disc = Parameter(nn_init.xavier_uniform(rng, dim, dim))

    def readout(self, h: Tensor) -> Tensor:
        """Graph summary: sigmoid of the node-representation mean (Eq. 4)."""
        return h.mean(axis=0).sigmoid()

    def discriminator_logits(self, h: Tensor, summary: Tensor) -> Tensor:
        """Raw bilinear scores ``hᵀ W s`` (the sigmoid lives in the loss)."""
        return h @ self.w_disc @ summary

    def loss(self, x: np.ndarray, adj: sp.spmatrix, rng) -> Tensor:
        """One contrastive step: corrupt, encode both views, score, BCE."""
        x_neg = node_permutation(x, rng)
        h_pos = self.encoder(x, adj)
        h_neg = self.encoder(x_neg, adj)
        summary = self.readout(h_pos)
        logits_pos = self.discriminator_logits(h_pos, summary)
        logits_neg = self.discriminator_logits(h_neg, summary)
        logits = concat([logits_pos, logits_neg], axis=0)
        labels = np.concatenate([np.ones(len(h_pos)), np.zeros(len(h_neg))])
        return bce_with_logits(logits, labels)

    def accuracy(self, x: np.ndarray, adj: sp.spmatrix, rng) -> float:
        """Discriminator accuracy on a fresh corruption (diagnostics)."""
        x_neg = node_permutation(x, rng)
        h_pos = self.encoder(x, adj)
        h_neg = self.encoder(x_neg, adj)
        summary = self.readout(h_pos)
        pos = self.discriminator_logits(h_pos, summary).data > 0
        neg = self.discriminator_logits(h_neg, summary).data <= 0
        return float((pos.sum() + neg.sum()) / (len(pos) + len(neg)))
