"""Placement-as-a-service: query trained placers on demand.

The offline experiment runners train agents; this package is the online
half — the amortized-inference mode that makes a learned placer pay off
(Placeto/GDP's argument): a trained policy, queried cheaply on unseen
graphs. See docs/serving.md for the guide.

Layers, bottom up:

* :class:`PolicyRegistry` — scans a checkpoint directory's sidecars,
  indexes agents by ``(agent_kind, workload, num_devices)``, rebuilds
  them lazily with :func:`repro.core.load_agent`, hot-reloads on refresh.
* :class:`PlacementService` — the programmatic API: request in (graph
  JSON or workload name + cluster spec + refinement budget), response
  out (placement, predicted step time, policy id, cache status, latency);
  greedy fast path, bounded refinement via ``evaluate_batch``, a
  fingerprint LRU+TTL result cache, and single-flight coalescing of
  identical in-flight requests (:class:`SingleFlight`).
* :class:`RequestQueue` — worker threads, micro-batching, bounded-queue
  admission control with the typed :class:`ServiceOverloaded` error,
  graceful draining shutdown.
* :class:`PlacementServer` — the stdlib HTTP endpoint; ``python -m
  repro.serve`` runs it standalone.

Quickstart::

    from repro.serve import PolicyRegistry, PlacementService, PlacementRequest

    registry = PolicyRegistry("checkpoints/")
    service = PlacementService(registry)
    response = service.handle(PlacementRequest(workload="vgg16", budget=8))
    print(response.placement, response.predicted_step_time)
"""

from repro.serve.cache import CacheStats, FingerprintCache
from repro.serve.coalesce import Flight, FlightStats, SingleFlight
from repro.serve.http import PlacementServer
from repro.serve.queue import RequestQueue
from repro.serve.registry import LoadedPolicy, PolicyRegistry, PolicySpec
from repro.serve.service import (
    BadRequest,
    PlacementRequest,
    PlacementResponse,
    PlacementService,
    PolicyNotFound,
    ServeConfig,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)

__all__ = [
    "BadRequest",
    "CacheStats",
    "FingerprintCache",
    "Flight",
    "FlightStats",
    "LoadedPolicy",
    "PlacementRequest",
    "PlacementResponse",
    "PlacementServer",
    "PlacementService",
    "PolicyNotFound",
    "PolicyRegistry",
    "PolicySpec",
    "RequestQueue",
    "ServeConfig",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "SingleFlight",
]
