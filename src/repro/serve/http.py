"""Stdlib JSON-over-HTTP endpoint for the placement service.

Routes (all JSON; see docs/serving.md for the full schema):

* ``POST /place``    — body is a :class:`PlacementRequest` document;
  200 with a :class:`PlacementResponse` body, or the typed error status
  (400 bad request, 404 no matching policy, 503 overloaded/closed) with
  ``{"error": code, "message": ...}``.
* ``GET /healthz``   — liveness + uptime/pid + queue depth + cache/policy
  counts + SLO status (p99 latency, error burn rate; docs/serving.md §5).
* ``GET /metrics``   — live Prometheus text exposition of the service's
  metrics registry (``serve.*``, ``env.*``, ...).
* ``GET /policies``  — the registry's servable policies.
* ``POST /reload``   — rescan the checkpoint directory (hot reload) and
  clear the result cache.

Built on ``http.server.ThreadingHTTPServer``: each connection gets a
handler thread which blocks in :meth:`RequestQueue.submit_and_wait`;
concurrency and admission control live in the queue, not in HTTP.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.queue import RequestQueue
from repro.serve.service import PlacementRequest, PlacementService, ServiceError
from repro.telemetry import SCHEMA_VERSION
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.tracing import span
from repro.utils.logging import get_logger

logger = get_logger("repro.serve.http")

__all__ = ["PlacementServer"]

#: Refuse request bodies beyond this many bytes (a graph document of
#: ~100k ops fits comfortably; this is DoS protection, not a quota).
MAX_BODY_BYTES = 32 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # The ThreadingHTTPServer instance carries .queue/.service/.registry.
    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc, default=float).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, code: str, message: str) -> None:
        self._send_json(status, {"error": code, "message": message})

    def log_message(self, fmt: str, *args) -> None:  # quiet by default
        logger.debug("%s %s", self.address_string(), fmt % args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        if self.path == "/healthz":
            service: PlacementService = self.server.service
            self._send_json(
                200,
                {
                    "status": "ok" if self.server.queue.running else "draining",
                    "uptime_s": time.perf_counter() - self.server.started_perf,
                    "pid": os.getpid(),
                    "schema_version": SCHEMA_VERSION,
                    "policies": len(service.registry),
                    "queue_depth": self.server.queue.depth,
                    "cache": service.cache.stats.to_dict(),
                    "slo": service.watchdog.slo_status(),
                },
            )
        elif self.path == "/metrics":
            service = self.server.service
            # MetricsRegistry has no internal locking; a snapshot during
            # concurrent metric *creation* can raise RuntimeError. Retry a
            # few times — creation is rare after warm-up.
            for attempt in range(5):
                try:
                    text = render_prometheus(service._tel().metrics.snapshot())
                    break
                except RuntimeError:
                    if attempt == 4:
                        self._send_error(
                            503, "busy", "metrics snapshot raced; retry"
                        )
                        return
            body = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/policies":
            self._send_json(
                200,
                {"policies": [s.to_json() for s in self.server.service.registry.policies()]},
            )
        else:
            self._send_error(404, "not_found", f"unknown path {self.path!r}")

    def do_POST(self) -> None:
        # Always consume the body (even for routes that ignore it) so a
        # keep-alive connection is never left with unread bytes.
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_error(400, "bad_request", "missing or oversized request body")
            return
        body = self.rfile.read(length) if length else b""
        if self.path == "/reload":
            n = self.server.service.registry.refresh()
            cleared = self.server.service.cache.clear()
            self._send_json(200, {"policies": n, "cache_entries_cleared": cleared})
            return
        if self.path != "/place":
            self._send_error(404, "not_found", f"unknown path {self.path!r}")
            return
        if not body:
            self._send_error(400, "bad_request", "missing request body")
            return
        try:
            doc = json.loads(body)
            request = PlacementRequest.from_json(doc)
            # Root span for the whole request path. Its context rides on
            # the request so the queue worker and service spans (other
            # threads — the ambient stack is thread-local) parent to it.
            with span(
                "http.request",
                telemetry=self.server.service._tel(),
                new_trace=True,
                path=self.path,
            ) as http_span:
                if http_span.context is not None and request.trace is None:
                    request.trace = http_span.context.to_dict()
                response = self.server.queue.submit_and_wait(
                    request, timeout=self.server.request_timeout
                )
        except ServiceError as exc:
            self._send_error(exc.status, exc.code, str(exc))
            return
        except json.JSONDecodeError as exc:
            self._send_error(400, "bad_request", f"body is not valid JSON: {exc}")
            return
        except (TimeoutError, FutureTimeout):
            self._send_error(504, "timeout", "request timed out in the queue")
            return
        self._send_json(200, response.to_json())


class _HTTPServer(ThreadingHTTPServer):
    # TCPServer's default accept backlog of 5 resets connections when a
    # thundering herd connects at once — exactly the traffic the serve
    # stack is built to absorb. Admission control (ServiceOverloaded),
    # not the kernel backlog, is the intended overload surface.
    request_queue_size = 128


class PlacementServer:
    """Owns the HTTP server, the queue and (optionally) a server thread."""

    def __init__(
        self,
        service: PlacementService,
        host: str = "127.0.0.1",
        port: int = 8080,
        queue: Optional[RequestQueue] = None,
        request_timeout: float = 120.0,
    ):
        self.service = service
        self.queue = queue or RequestQueue(service)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = service
        self._httpd.queue = self.queue
        self._httpd.request_timeout = request_timeout
        self._httpd.started_perf = time.perf_counter()
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def start(self) -> "PlacementServer":
        """Serve on a background thread (tests, smoke harnesses)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI does this)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop accepting connections, drain the queue, release envs."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.queue.shutdown()
        self.service.close()

    def __enter__(self) -> "PlacementServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
