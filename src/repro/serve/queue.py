"""Bounded request queue with micro-batching worker threads.

The queue is the service's concurrency and admission-control layer:

* **Admission control.** The queue is bounded (``ServeConfig.max_queue``).
  A submit against a full queue fails *immediately* with the typed
  :class:`~repro.serve.service.ServiceOverloaded` error — deliberate
  backpressure the client can see and react to, never silent unbounded
  queueing or a hang. Every admission decision feeds the service's
  rejection-rate health detector.

* **Micro-batching.** Worker threads block for one request, then drain up
  to ``max_batch - 1`` more without waiting. The batch is served through
  the shared fingerprint cache, so duplicate requests that arrive inside
  one batch (a thundering herd on one graph) compute once and the rest
  resolve as cache hits milliseconds later.

* **Graceful shutdown.** :meth:`RequestQueue.shutdown` stops admissions,
  lets the workers drain everything already accepted, and joins them —
  every admitted request gets a real response (or a typed error), even
  during shutdown. A request that slips in between the closed check and
  the enqueue after the workers already exited is drained and failed
  with :class:`ServiceClosed` — a future returned by :meth:`submit` is
  *always* resolved, never parked forever.

Results travel back through ``concurrent.futures.Future``; callers use
:meth:`RequestQueue.submit_and_wait` for a synchronous round trip (this
is what the HTTP handler threads do).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import List, Optional, Tuple

from repro.serve.service import (
    PlacementRequest,
    PlacementResponse,
    PlacementService,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)
from repro.telemetry.tracing import SpanContext, record_span
from repro.utils.logging import get_logger

logger = get_logger("repro.serve.queue")

__all__ = ["RequestQueue"]

#: Seconds an idle worker waits on the queue before re-checking shutdown.
_POLL_S = 0.05


class RequestQueue:
    """Admission-controlled, micro-batching front of a PlacementService."""

    def __init__(self, service: PlacementService, start: bool = True):
        self.service = service
        cfg = service.config
        self.max_batch = cfg.max_batch
        # Items carry their enqueue timestamps (monotonic for the wait
        # measurement, wall-clock for the queue.wait span) so workers can
        # split queue-wait from compute time per request.
        self._queue: "queue.Queue[Tuple[PlacementRequest, Future, float, float]]" = (
            queue.Queue(maxsize=cfg.max_queue)
        )
        self._closed = threading.Event()
        # Set once shutdown() has joined the workers and drained residual
        # items: from then on nothing will ever service the queue, so a
        # late enqueue must be failed by whoever made it (see submit()).
        self._terminated = threading.Event()
        self._workers: List[threading.Thread] = []
        self._n_workers = cfg.workers
        if start:
            self.start()

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def running(self) -> bool:
        return bool(self._workers) and not self._closed.is_set()

    def start(self) -> None:
        if self._workers:
            return
        self._closed.clear()
        self._terminated.clear()
        for i in range(self._n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: PlacementRequest) -> "Future[PlacementResponse]":
        """Admit ``request``; returns a future resolving to its response.

        Raises :class:`ServiceClosed` after shutdown began and
        :class:`ServiceOverloaded` when the queue is at capacity — the
        caller is never parked waiting for a slot.
        """
        if self._closed.is_set():
            self.service.note_admission(rejected=True)
            raise ServiceClosed("service is shutting down")
        future: "Future[PlacementResponse]" = Future()
        try:
            self._queue.put_nowait((request, future, time.perf_counter(), time.time()))
        except queue.Full:
            self.service.note_admission(rejected=True)
            raise ServiceOverloaded(
                f"request queue full ({self._queue.maxsize} pending); retry later"
            ) from None
        # Close the submit/shutdown race: the closed check above and the
        # enqueue are not atomic, so shutdown() can run to completion in
        # between — workers gone, residual drain done — leaving this item
        # with nothing to ever resolve its future. If termination finished
        # before our enqueue became visible, drain-and-fail it ourselves
        # (set before fail_residual, so either shutdown's drain or this
        # one sees the item; both is fine — first getter owns it).
        if self._terminated.is_set():
            self._fail_residual()
        self.service.note_admission(rejected=False)
        self._gauge_depth()
        return future

    def submit_and_wait(
        self, request: PlacementRequest, timeout: Optional[float] = None
    ) -> PlacementResponse:
        """Synchronous round trip; re-raises the service's typed errors.

        On timeout the future is cancelled so a still-queued request is
        skipped by the workers (``set_running_or_notify_cancel``) instead
        of being computed for a caller that already gave up. A request a
        worker has started is past cancelling and completes normally."""
        future = self.submit(request)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            future.cancel()
            raise

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _gauge_depth(self) -> None:
        tel = self.service._tel()
        with self.service._lock:
            tel.gauge("serve.queue_depth").set(self._queue.qsize())

    def _drain_batch(self) -> List[Tuple[PlacementRequest, Future, float, float]]:
        """One blocking get, then opportunistic gets up to ``max_batch``.

        Returns an empty list only when shutdown is complete (closed and
        drained)."""
        while True:
            try:
                first = self._queue.get(timeout=_POLL_S)
                break
            except queue.Empty:
                if self._closed.is_set():
                    return []
        batch = [first]
        while len(batch) < self.max_batch:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _worker_loop(self) -> None:
        while True:
            batch = self._drain_batch()
            if not batch:
                return
            self._gauge_depth()
            tel = self.service._tel()
            with self.service._lock:
                tel.histogram("serve.batch_size").observe(len(batch))
            for request, future, enq_perf, enq_wall in batch:
                if not future.set_running_or_notify_cancel():
                    continue  # caller cancelled while queued
                wait_s = max(0.0, time.perf_counter() - enq_perf)
                parent = (
                    SpanContext.from_dict(request.trace) if request.trace else None
                )
                # The wait already happened, so record it after the fact —
                # parented to the HTTP root span carried in request.trace.
                record_span(
                    "queue.wait",
                    wait_s,
                    telemetry=tel,
                    parent=parent,
                    start_unix=enq_wall,
                    request_id=request.request_id,
                )
                compute_start = time.perf_counter()
                try:
                    future.set_result(self.service.handle(request))
                except ServiceError as exc:
                    future.set_exception(exc)
                except Exception as exc:  # defensive: never kill a worker
                    logger.exception("unexpected error serving %s", request.request_id)
                    future.set_exception(exc)
                compute_s = time.perf_counter() - compute_start
                with self.service._lock:
                    # Queue wait vs compute, split out so `serve.latency_ms`
                    # spikes can be attributed to backlog vs slow evals.
                    tel.histogram("serve.queue_wait_s").observe(wait_s)
                    tel.histogram("serve.compute_s").observe(compute_s)

    # ------------------------------------------------------------------
    def _fail_residual(self) -> int:
        """Drain the queue and fail every stranded item with
        :class:`ServiceClosed`; returns how many were failed. Safe to run
        concurrently with live workers — ``Queue.get`` hands each item to
        exactly one owner, so a request is either served or failed, never
        both, never neither."""
        failed = 0
        while True:
            try:
                request, future, _, _ = self._queue.get_nowait()
            except queue.Empty:
                return failed
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    ServiceClosed(
                        f"service shut down before request "
                        f"{request.request_id or '(unnamed)'} was served"
                    )
                )
                failed += 1

    def shutdown(self, timeout: Optional[float] = 30.0) -> None:
        """Stop admitting, drain everything admitted, join the workers.

        Requests that raced past the admission check while the workers
        were exiting are drained here and failed with
        :class:`ServiceClosed` — no future from :meth:`submit` is ever
        left unresolved."""
        self._closed.set()
        for thread in self._workers:
            thread.join(timeout=timeout)
        self._workers = []
        self._terminated.set()
        failed = self._fail_residual()
        if failed:
            logger.warning(
                "shutdown drained %d unserved request(s) with ServiceClosed", failed
            )
