"""Single-flight coalescing of identical in-flight requests.

The fingerprint result cache (``cache.py``) only helps *after* a result
lands. Under a thundering herd — many concurrent requests for the same
composite fingerprint, the common case for a policy serving millions of
users — every worker thread that misses the cache recomputes the same
placement. :class:`SingleFlight` closes that window: the first request
for a key becomes the **leader** and computes; concurrent duplicates
become **followers** and await the leader's ``Future``. One herd, one
computation, N cheap waits.

The table is intentionally tiny and generic: ``begin(key)`` returns a
:class:`Flight` plus a leader flag; the leader *must* resolve the flight
exactly once via :meth:`SingleFlight.finish` (result or exception —
``finish`` also removes the key, so later requests start a fresh
flight); followers block in :meth:`Flight.wait`. Leader failures
propagate to every follower of that flight — they raced the same
computation and would have hit the same error — but never poison later
flights.

Used by :meth:`repro.serve.service.PlacementService.handle` keyed by the
composite request fingerprint (graph hash + cluster signature + policy
id + budget); see docs/serving.md §4.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["Flight", "FlightStats", "SingleFlight"]


@dataclass
class FlightStats:
    """Cumulative single-flight bookkeeping (monotonic counters)."""

    #: Flights led (one per key that was not already in flight).
    flights: int = 0
    #: Requests that joined an existing flight instead of computing.
    coalesced: int = 0
    #: Flights the leader resolved with an exception.
    failures: int = 0

    def to_dict(self) -> dict:
        return {
            "flights": self.flights,
            "coalesced": self.coalesced,
            "failures": self.failures,
        }


class Flight:
    """One in-flight computation: a ``Future`` plus its follower count."""

    __slots__ = ("key", "future", "followers")

    def __init__(self, key: str):
        self.key = key
        self.future: "Future[Any]" = Future()
        self.followers = 0

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the leader resolves the flight; re-raises the
        leader's exception."""
        return self.future.result(timeout=timeout)


class SingleFlight:
    """Thread-safe in-flight table: one computation per key at a time."""

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}
        self.stats = FlightStats()

    def __len__(self) -> int:
        """Keys currently in flight."""
        with self._lock:
            return len(self._flights)

    def begin(self, key: str) -> Tuple[Flight, bool]:
        """Join or open the flight for ``key``.

        Returns ``(flight, leader)``. When ``leader`` is true the caller
        owns the computation and **must** call :meth:`finish` exactly
        once (use ``try/except BaseException`` — an unresolved flight
        would park every follower forever). When false, the caller waits
        on ``flight.wait()``.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.followers += 1
                self.stats.coalesced += 1
                return flight, False
            flight = Flight(key)
            self._flights[key] = flight
            self.stats.flights += 1
            return flight, True

    def finish(
        self,
        flight: Flight,
        result: Any = None,
        exception: Optional[BaseException] = None,
    ) -> int:
        """Resolve ``flight`` and retire its key; leader-only.

        The key is removed *before* the future resolves, so a request
        arriving after resolution never joins a spent flight. Returns the
        number of followers that were released.
        """
        with self._lock:
            # Only retire the key if it still maps to this flight — a
            # defensive guard; with a single leader per flight it always
            # does.
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            followers = flight.followers
            if exception is not None:
                self.stats.failures += 1
        if exception is not None:
            flight.future.set_exception(exception)
        else:
            flight.future.set_result(result)
        return followers
