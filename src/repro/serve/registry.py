"""Checkpoint-directory policy registry with lazy loading and hot reload.

A checkpoint directory (written by :func:`repro.core.save_agent`) holds
``<stem>.npz`` parameter archives with ``<stem>.json`` sidecars. The
registry scans the sidecars — cheap, no parameter I/O — and indexes the
policies by ``(agent_kind, workload, num_devices)``. Agents are only
rebuilt (via :func:`repro.core.load_agent`) when a request first needs
them, and the built agent is cached per ``(policy, graph fingerprint,
cluster signature)`` so repeated requests against the same graph reuse
the same in-memory network.

Hot reload: :meth:`PolicyRegistry.refresh` rescans the directory. New
sidecars become servable immediately; removed ones disappear; a sidecar
whose mtime changed (a retrained checkpoint saved over the old stem)
invalidates every loaded agent built from it. ``save_agent`` writes
atomically and sidecar-last, so a concurrent refresh never observes a
half-written checkpoint.
"""

from __future__ import annotations

import glob
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import MarsConfig
from repro.graph import CompGraph, FeatureExtractor
from repro.sim.cluster import ClusterSpec
from repro.utils.logging import get_logger

logger = get_logger("repro.serve.registry")

__all__ = ["PolicySpec", "PolicyRegistry", "LoadedPolicy"]

#: Loaded-agent cache entries kept per registry. An entry is one built
#: agent (+ its graph/cluster); rebuilding on miss is seconds, holding
#: hundreds is memory, so the default favors small.
DEFAULT_AGENT_CACHE = 8


@dataclass(frozen=True)
class PolicySpec:
    """One servable checkpoint, as described by its sidecar."""

    policy_id: str  # sidecar stem, unique within the directory
    path: str  # checkpoint path without extension (load_agent target)
    agent_kind: str
    workload: str
    num_devices: int
    num_ops: int
    feature_dim: int
    mtime: float  # sidecar mtime at scan; drives hot-reload invalidation
    meta: dict = field(compare=False, hash=False, repr=False, default_factory=dict)

    def to_json(self) -> dict:
        return {
            "policy_id": self.policy_id,
            "agent_kind": self.agent_kind,
            "workload": self.workload,
            "num_devices": self.num_devices,
            "num_ops": self.num_ops,
            "feature_dim": self.feature_dim,
        }


@dataclass
class LoadedPolicy:
    """A built agent plus the lock serializing inference on it.

    Sampling is a NumPy forward pass under a process-global ``no_grad``
    flag, so concurrent workers must not drive the same agent at once;
    each worker takes ``lock`` around ``agent.sample``.
    """

    spec: PolicySpec
    agent: object
    graph: CompGraph
    lock: threading.Lock = field(default_factory=threading.Lock)


class PolicyRegistry:
    """Scans, indexes and lazily materializes a directory of checkpoints."""

    def __init__(
        self,
        checkpoint_dir: str,
        config: Optional[MarsConfig] = None,
        feature_extractor: Optional[FeatureExtractor] = None,
        agent_cache_size: int = DEFAULT_AGENT_CACHE,
    ):
        self.checkpoint_dir = checkpoint_dir
        #: Fallback config for sidecars without a config echo; ``None``
        #: makes such checkpoints unservable (clear error on load).
        self.config = config
        self.feature_extractor = feature_extractor
        self.agent_cache_size = max(1, int(agent_cache_size))
        self._lock = threading.Lock()
        self._specs: Dict[str, PolicySpec] = {}
        self._agents: "OrderedDict[Tuple[str, str, str], LoadedPolicy]" = OrderedDict()
        self.refresh()

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def _scan(self) -> Dict[str, PolicySpec]:
        specs: Dict[str, PolicySpec] = {}
        for sidecar in sorted(glob.glob(os.path.join(self.checkpoint_dir, "*.json"))):
            stem = sidecar[: -len(".json")]
            if not os.path.exists(stem + ".npz"):
                continue  # sidecar without parameters: not servable
            try:
                with open(sidecar) as fh:
                    meta = json.load(fh)
                spec = PolicySpec(
                    policy_id=os.path.basename(stem),
                    path=stem,
                    agent_kind=meta["agent_kind"],
                    workload=meta.get("workload", ""),
                    num_devices=int(meta["num_devices"]),
                    num_ops=int(meta.get("num_ops", 0)),
                    feature_dim=int(meta.get("feature_dim", 0)),
                    mtime=os.path.getmtime(sidecar),
                    meta=meta,
                )
            except (OSError, ValueError, KeyError) as exc:
                logger.warning("skipping unreadable sidecar %s: %s", sidecar, exc)
                continue
            specs[spec.policy_id] = spec
        return specs

    def refresh(self) -> int:
        """Rescan the checkpoint directory; returns the number of servable
        policies. Loaded agents whose checkpoint disappeared or changed
        mtime are dropped (the next request rebuilds from the new file)."""
        fresh = self._scan()
        with self._lock:
            stale = {
                pid
                for pid, old in self._specs.items()
                if pid not in fresh or fresh[pid].mtime != old.mtime
            }
            if stale:
                for key in [k for k in self._agents if k[0] in stale]:
                    del self._agents[key]
            self._specs = fresh
        if stale:
            logger.info(
                "registry refresh: %d policies, %d invalidated", len(fresh), len(stale)
            )
        return len(fresh)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def policies(self) -> List[PolicySpec]:
        with self._lock:
            return sorted(self._specs.values(), key=lambda s: s.policy_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._specs)

    def get(self, policy_id: str) -> Optional[PolicySpec]:
        with self._lock:
            return self._specs.get(policy_id)

    def select(
        self,
        num_devices: int,
        workload: Optional[str] = None,
        agent_kind: Optional[str] = None,
    ) -> Optional[PolicySpec]:
        """The best policy for a request, or ``None`` if nothing matches.

        Hard filter on device count (output heads are sized by it) and on
        ``agent_kind`` when given. Among the survivors, an exact workload
        match beats a transfer policy; ties break to the newest checkpoint,
        then to policy id for determinism.
        """
        candidates = [
            s
            for s in self.policies()
            if s.num_devices == num_devices
            and (agent_kind is None or s.agent_kind == agent_kind)
        ]
        if not candidates:
            return None
        candidates.sort(
            key=lambda s: (
                0 if (workload and s.workload == workload) else 1,
                -s.mtime,
                s.policy_id,
            )
        )
        return candidates[0]

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def load(
        self, spec: PolicySpec, graph: CompGraph, cluster: ClusterSpec
    ) -> LoadedPolicy:
        """The built agent for ``spec`` over ``graph``/``cluster`` (LRU
        cached). Raises ``ValueError`` on device/feature mismatches, with
        the message from :func:`repro.core.load_agent`."""
        key = (spec.policy_id, graph.fingerprint(), cluster.signature())
        with self._lock:
            loaded = self._agents.get(key)
            if loaded is not None:
                self._agents.move_to_end(key)
                return loaded
        # Build outside the lock: load_agent is seconds of NumPy work and
        # must not serialize unrelated requests. A racing duplicate build
        # is wasted work, not corruption — last insert wins.
        from repro.core.checkpoint import load_agent

        agent, _ = load_agent(
            spec.path,
            graph,
            cluster,
            config=self.config,
            feature_extractor=self.feature_extractor,
        )
        loaded = LoadedPolicy(spec=spec, agent=agent, graph=graph)
        with self._lock:
            self._agents[key] = loaded
            self._agents.move_to_end(key)
            while len(self._agents) > self.agent_cache_size:
                self._agents.popitem(last=False)
        return loaded
