"""Fingerprint-keyed result cache for the placement service.

A bounded LRU with optional TTL expiry, safe for concurrent access from
the queue's worker threads. Keys are the service's composite request
fingerprints (graph content hash + policy id + cluster signature +
refinement budget — see :meth:`repro.serve.service.PlacementService`);
values are finished :class:`~repro.serve.service.PlacementResponse`
objects. Identical graphs therefore never re-run inference: the second
request is a dictionary lookup.

TTL exists for operators who hot-reload checkpoints in place: with
``ttl`` set, a cached placement older than that many seconds is
recomputed, so a swapped policy takes effect within one TTL even for
fingerprints that stay hot. Entries are also invalidated wholesale by
:meth:`FingerprintCache.clear` on registry reload.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = ["CacheStats", "FingerprintCache"]


@dataclass
class CacheStats:
    """Cumulative cache bookkeeping (monotonic counters)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": self.hit_rate,
        }


class FingerprintCache:
    """Thread-safe bounded LRU with optional per-entry TTL.

    ``capacity <= 0`` disables bounding (not recommended in production —
    an adversarial client could then grow memory without limit by sending
    unique graphs). ``ttl=None`` disables expiry. ``clock`` is injectable
    for deterministic tests.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.capacity = int(capacity)
        self.ttl = float(ttl) if ttl is not None else None
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Any, float]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry (which counts as
        a miss and drops the stale entry)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            value, stored_at = entry
            if self.ttl is not None and self._clock() - stored_at > self.ttl:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = (value, self._clock())
            self._entries.move_to_end(key)
            if self.capacity > 0:
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def clear(self) -> int:
        """Drop every entry (registry hot reload); returns the count."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n
