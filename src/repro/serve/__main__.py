"""Run the placement service as a standalone process.

::

    python -m repro.serve --checkpoint-dir checkpoints/ --port 8080 \\
        --workers 2 --max-queue 64 --cache-capacity 1024 \\
        --telemetry-dir runs/

Then::

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/place \\
        -d '{"workload": "vgg16", "budget": 8}'

See docs/serving.md for the request/response schema and capacity tuning.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.serve.http import PlacementServer
from repro.serve.queue import RequestQueue
from repro.serve.registry import PolicyRegistry
from repro.serve.service import PlacementService, ServeConfig
from repro.telemetry import HealthConfig, start_run, use_telemetry
from repro.utils.logging import get_logger, set_verbosity

logger = get_logger("repro.serve")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve trained device-placement policies over HTTP.",
    )
    parser.add_argument(
        "--checkpoint-dir",
        required=True,
        metavar="DIR",
        help="directory of save_agent checkpoints (.npz + .json sidecars)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--workers", type=int, default=2, help="queue worker threads (default 2)"
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission limit: pending requests beyond N are rejected "
        "with the typed 503 overload error (default 64)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="requests a worker drains per micro-batch (default 8)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        metavar="N",
        help="fingerprint result-cache entries (default 1024; <=0 unbounded)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire cached placements after this long (default: never)",
    )
    parser.add_argument(
        "--max-budget",
        type=int,
        default=64,
        metavar="N",
        help="per-request refinement budget ceiling (default 64)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help="write a telemetry run directory (serve_request events, "
        "serve.* metrics) under DIR; inspect with "
        "'python -m repro.telemetry.report' (docs/observability.md)",
    )
    parser.add_argument(
        "--flush-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how often the live run directory's metrics.json and event "
        "buffers are flushed to disk (default 30; <=0 disables; only "
        "meaningful with --telemetry-dir)",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable single-flight coalescing of identical in-flight "
        "requests (on by default; see docs/serving.md §4)",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="before serving, replay every registered checkpoint's "
        "workload fingerprint to pre-populate the result cache "
        "(best-effort; unknown workload names are skipped)",
    )
    parser.add_argument(
        "--warm-budget",
        type=int,
        default=0,
        metavar="N",
        help="refinement budget for --warm replays (default 0 = greedy)",
    )
    parser.add_argument(
        "--no-health",
        action="store_true",
        help="disable the rejection-rate and SLO health watchdog",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        set_verbosity(logging.DEBUG)

    telemetry = None
    if args.telemetry_dir:
        telemetry = start_run(
            "serve",
            args.telemetry_dir,
            manifest={"checkpoint_dir": args.checkpoint_dir, "port": args.port},
            flush_interval_s=args.flush_interval if args.flush_interval > 0 else None,
        )

    config = ServeConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        max_budget=args.max_budget,
        coalesce=not args.no_coalesce,
    )
    registry = PolicyRegistry(args.checkpoint_dir)
    if not len(registry):
        logger.warning(
            "no servable checkpoints under %s (need .npz + .json pairs "
            "written by repro.core.save_agent)",
            args.checkpoint_dir,
        )
    service = PlacementService(
        registry,
        config=config,
        telemetry=telemetry,
        health=HealthConfig(enabled=not args.no_health, action="warn"),
    )
    if args.warm:
        with use_telemetry(telemetry):
            warmed = service.warm(budget=args.warm_budget)
        logger.info("--warm pre-populated %d cache entries", warmed)
    server = PlacementServer(
        service, host=args.host, port=args.port, queue=RequestQueue(service)
    )
    logger.info(
        "serving %d policies from %s on %s (workers=%d, max_queue=%d)",
        len(registry),
        args.checkpoint_dir,
        server.address,
        config.workers,
        config.max_queue,
    )
    try:
        with use_telemetry(telemetry):
            server.serve_forever()
    except KeyboardInterrupt:
        logger.info("interrupt: draining in-flight requests")
    finally:
        server.shutdown()
        if telemetry is not None:
            telemetry.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
