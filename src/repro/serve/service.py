"""The placement service: request in, placement out.

:class:`PlacementService` is the programmatic core of ``repro.serve``
(the HTTP endpoint and the micro-batching queue are thin layers over it).
One request names a graph — inline JSON in the ``graph/io.py`` schema, or
a registered workload name — plus a cluster spec, an optional policy
selector and a per-request refinement budget. The response carries the
placement (op name → device index), the predicted step time, the policy
that produced it, cache status and service latency.

Two paths:

* **greedy fast path** (``budget=0``) — one argmax decode of the policy,
  resolved against the environment's constraints; milliseconds once the
  agent is built.
* **bounded refinement** (``budget=N``) — additionally samples ``N``
  placements from the policy and measures greedy + samples through
  :meth:`~repro.sim.env.PlacementEnv.evaluate_batch`, returning the best
  valid candidate. This buys back most of the gap to a full search at a
  tiny, *bounded* cost — the request decides how much inference time it
  is worth (Placeto/GDP's amortized-inference serving mode).

Results are cached by a composite fingerprint — graph content hash
(:meth:`CompGraph.fingerprint`) + policy id + cluster signature + budget
— so identical graphs never re-run inference. Identical *in-flight*
requests coalesce through a single-flight table under the same key
(:mod:`repro.serve.coalesce`): one herd, one computation, the rest await
the leader's future and answer with ``cache="coalesced"``.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.graph import CompGraph, graph_from_dict
from repro.serve.cache import FingerprintCache
from repro.serve.coalesce import Flight, SingleFlight
from repro.serve.registry import LoadedPolicy, PolicyRegistry, PolicySpec
from repro.sim.batch import BatchEvalConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.env import PlacementEnv
from repro.sim.incremental import IncrementalEvalConfig
from repro.telemetry import HealthConfig, HealthWatchdog, Telemetry, get_telemetry
from repro.telemetry.tracing import SpanContext, new_trace_id, span
from repro.utils.logging import get_logger

logger = get_logger("repro.serve.service")

__all__ = [
    "ServiceError",
    "BadRequest",
    "PolicyNotFound",
    "ServiceOverloaded",
    "ServiceClosed",
    "ServeConfig",
    "PlacementRequest",
    "PlacementResponse",
    "PlacementService",
]


# ----------------------------------------------------------------------
# Errors (each maps to one HTTP status in serve/http.py)
# ----------------------------------------------------------------------
class ServiceError(Exception):
    """Base class for typed service failures."""

    status = 500
    code = "error"


class BadRequest(ServiceError):
    """The request document is malformed or names unknown entities."""

    status = 400
    code = "bad_request"


class PolicyNotFound(ServiceError):
    """No registered policy matches the request's selector."""

    status = 404
    code = "policy_not_found"


class ServiceOverloaded(ServiceError):
    """Admission control rejected the request: the queue is full.

    This is deliberate backpressure, not a transient bug — clients should
    back off and retry; operators should raise ``--workers`` or
    ``--max-queue`` if it is sustained (see docs/serving.md)."""

    status = 503
    code = "overloaded"


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer admits requests."""

    status = 503
    code = "closed"


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass
class ServeConfig:
    """Capacity knobs for one service process (see docs/serving.md)."""

    workers: int = 2  # queue worker threads draining micro-batches
    max_queue: int = 64  # admission limit; beyond it -> ServiceOverloaded
    max_batch: int = 8  # requests drained per micro-batch
    cache_capacity: int = 1024  # fingerprint result cache entries
    cache_ttl: Optional[float] = None  # seconds; None = never expires
    max_budget: int = 64  # per-request refinement budget ceiling
    env_cache_size: int = 8  # built PlacementEnvs kept per service
    coalesce: bool = True  # single-flight identical in-flight requests

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")


# ----------------------------------------------------------------------
# Request / response
# ----------------------------------------------------------------------
@dataclass
class PlacementRequest:
    """One placement query. Exactly one of ``graph`` (a document in the
    ``graph/io.py`` schema) or ``workload`` (a registered generator name)
    must be set."""

    graph: Optional[dict] = None
    workload: Optional[str] = None
    workload_kwargs: dict = field(default_factory=dict)
    #: ``{"kind": "default"|"nvlink", "num_gpus": int, "gpu_memory_gb":
    #: float, ...}``; ``None`` means the paper's default 4-GPU machine.
    cluster: Optional[dict] = None
    policy_id: Optional[str] = None  # pin a specific checkpoint
    agent_kind: Optional[str] = None  # or filter by kind, registry picks
    budget: int = 0  # sampled candidates to refine over (0 = greedy only)
    use_cache: bool = True
    request_id: str = ""
    #: Serialized :class:`SpanContext` (``{"trace_id", "span_id"}``) from
    #: the caller — the HTTP layer plants its root span here so service
    #: spans parent across the queue's thread hop. ``None`` starts a new
    #: trace inside :meth:`PlacementService.handle`.
    trace: Optional[dict] = None

    @classmethod
    def from_json(cls, doc: dict) -> "PlacementRequest":
        if not isinstance(doc, dict):
            raise BadRequest(f"request must be a JSON object, got {type(doc).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(doc) - known)
        if unknown:
            raise BadRequest(f"unknown request field(s): {', '.join(unknown)}")
        try:
            req = cls(**doc)
        except TypeError as exc:
            raise BadRequest(str(exc)) from exc
        return req


@dataclass
class PlacementResponse:
    """What every request gets back (also the HTTP response body)."""

    request_id: str
    policy_id: str
    agent_kind: str
    workload: str  # graph name the placement is for
    fingerprint: str  # graph content hash (cache identity)
    placement: Dict[str, int]  # op name -> device index
    device_names: List[str]
    predicted_step_time: float  # noise-free simulated step time (seconds)
    valid: bool  # False -> best candidate still OOMs
    cache: str  # "hit" | "miss" | "coalesced" (awaited an in-flight twin)
    budget: int
    candidates_evaluated: int
    latency_ms: float
    trace_id: str = ""  # trace the request was served under (for log joins)

    def to_json(self) -> dict:
        doc = dict(self.__dict__)
        doc["predicted_step_time"] = float(self.predicted_step_time)
        return doc


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class PlacementService:
    """Turns :class:`PlacementRequest` into :class:`PlacementResponse`.

    Thread-safe: the fingerprint cache and telemetry emission are locked,
    and inference on a loaded agent is serialized per policy by the
    registry. Callers wanting concurrency + admission control wrap it in
    :class:`repro.serve.queue.RequestQueue`.
    """

    def __init__(
        self,
        registry: PolicyRegistry,
        config: Optional[ServeConfig] = None,
        telemetry: Optional[Telemetry] = None,
        health: Optional[HealthConfig] = None,
        eval_batch: Optional[BatchEvalConfig] = None,
        incremental: Optional[IncrementalEvalConfig] = None,
    ):
        self.registry = registry
        self.config = config or ServeConfig()
        self._telemetry = telemetry
        # Serving envs default to the serial evaluator: refinement batches
        # are small and a process pool per cached env would dominate cost.
        self.eval_batch = eval_batch or BatchEvalConfig(mode="serial")
        # Incremental re-evaluation for the refinement batches: each
        # request anchors its greedy decode, so sampled candidates that
        # stay near it resume instead of resimulating (docs/performance.md).
        self.incremental = (
            incremental if incremental is not None else IncrementalEvalConfig()
        )
        self.cache = FingerprintCache(
            capacity=self.config.cache_capacity, ttl=self.config.cache_ttl
        )
        self.watchdog = HealthWatchdog(
            health if health is not None else HealthConfig(action="warn"),
            telemetry=telemetry,
        )
        self._lock = threading.Lock()  # telemetry + env-cache mutation
        self._envs: Dict[str, PlacementEnv] = {}
        self._env_order: List[str] = []
        # Per-key build locks so two threads missing the same env key never
        # both construct a PlacementEnv (the loser's env — and its eval
        # pool — would be dropped without close_pool()).
        self._env_builds: Dict[str, threading.Lock] = {}
        # In-flight table: identical concurrent requests coalesce to one
        # computation (docs/serving.md §4). Keyed like the result cache.
        self._flights = SingleFlight()

    # ------------------------------------------------------------------
    def _tel(self) -> Telemetry:
        return self._telemetry if self._telemetry is not None else get_telemetry()

    def note_admission(self, rejected: bool) -> None:
        """Admission-control bookkeeping, fed by the request queue (and by
        :meth:`handle` for direct calls). Sustained rejection spikes raise
        the ``rejection_rate`` health alert."""
        tel = self._tel()
        with self._lock:
            tel.counter("serve.requests").inc()
            if rejected:
                tel.counter("serve.rejected").inc()
            self.watchdog.observe_request(rejected)

    def _emit_request(
        self,
        request: PlacementRequest,
        status: str,
        cache: str,
        latency_ms: float,
        policy_id: str = "",
        fingerprint: str = "",
        trace_id: str = "",
        **extra,
    ) -> None:
        tel = self._tel()
        with self._lock:
            tel.histogram("serve.latency_ms").observe(latency_ms)
            if status != "ok":
                tel.counter("serve.errors").inc()
            elif cache == "hit":
                tel.counter("serve.cache_hits").inc()
            elif cache == "coalesced":
                tel.counter("serve.coalesced").inc()
            # Every serviced request feeds the SLO detectors (p99 latency,
            # error burn rate) — including failures, which is the point.
            self.watchdog.observe_serve(latency_ms, ok=(status == "ok"))
            tel.emit(
                "serve_request",
                request_id=request.request_id,
                policy_id=policy_id,
                fingerprint=fingerprint,
                status=status,
                cache=cache,
                latency_ms=float(latency_ms),
                budget=int(request.budget),
                trace_id=trace_id,
                **extra,
            )

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def _resolve_graph(self, request: PlacementRequest) -> CompGraph:
        if (request.graph is None) == (request.workload is None):
            raise BadRequest("exactly one of 'graph' or 'workload' must be set")
        if request.graph is not None:
            try:
                return graph_from_dict(request.graph)
            except (ValueError, KeyError, TypeError) as exc:
                raise BadRequest(f"invalid graph document: {exc}") from exc
        from repro.workloads import get_workload

        try:
            return get_workload(request.workload, **request.workload_kwargs)
        except (KeyError, TypeError) as exc:
            raise BadRequest(str(exc)) from exc

    def _resolve_cluster(self, request: PlacementRequest) -> ClusterSpec:
        doc = request.cluster
        if doc is None:
            return ClusterSpec.default()
        if not isinstance(doc, dict):
            raise BadRequest("'cluster' must be an object")
        kind = doc.get("kind", "default")
        kwargs = {k: v for k, v in doc.items() if k != "kind"}
        try:
            if kind == "default":
                return ClusterSpec.default(**kwargs)
            if kind == "nvlink":
                return ClusterSpec.nvlink(**kwargs)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid cluster spec: {exc}") from exc
        raise BadRequest(f"unknown cluster kind {kind!r} (default|nvlink)")

    def _select_policy(
        self, request: PlacementRequest, graph: CompGraph, cluster: ClusterSpec
    ) -> PolicySpec:
        if request.policy_id is not None:
            spec = self.registry.get(request.policy_id)
            if spec is None:
                raise PolicyNotFound(
                    f"no policy {request.policy_id!r} in the registry "
                    f"({len(self.registry)} registered)"
                )
            if spec.num_devices != cluster.num_devices:
                raise BadRequest(
                    f"policy {spec.policy_id!r} places onto {spec.num_devices} "
                    f"devices, requested cluster has {cluster.num_devices}"
                )
            return spec
        spec = self.registry.select(
            num_devices=cluster.num_devices,
            workload=graph.name,
            agent_kind=request.agent_kind,
        )
        if spec is None:
            raise PolicyNotFound(
                f"no registered policy for {cluster.num_devices} devices"
                + (f" and agent_kind={request.agent_kind!r}" if request.agent_kind else "")
            )
        return spec

    def _env_for(self, graph: CompGraph, cluster: ClusterSpec, key: str) -> PlacementEnv:
        with self._lock:
            env = self._envs.get(key)
            if env is not None:
                self._env_order.remove(key)
                self._env_order.append(key)
                return env
            build_lock = self._env_builds.setdefault(key, threading.Lock())
        # Serialize construction per key: concurrent requests missing the
        # same env wait for one build instead of each building their own
        # (and leaking the losers' eval pools).
        with build_lock:
            with self._lock:
                env = self._envs.get(key)
                if env is not None:
                    self._env_order.remove(key)
                    self._env_order.append(key)
                    return env
            # Pin the service's telemetry session on the env so env.* metrics
            # (and spans) land in the registry /metrics exposes, regardless of
            # which worker thread triggers the build.
            env = PlacementEnv(
                graph,
                cluster,
                batch=self.eval_batch,
                incremental=self.incremental,
                telemetry=self._telemetry,
            )
            with self._lock:
                self._envs[key] = env
                self._env_order.append(key)
                while len(self._env_order) > self.config.env_cache_size:
                    evicted = self._env_order.pop(0)
                    self._envs.pop(evicted).close_pool()
                self._env_builds.pop(key, None)
            return env

    # ------------------------------------------------------------------
    # The placement computation
    # ------------------------------------------------------------------
    def _compute(
        self,
        request: PlacementRequest,
        graph: CompGraph,
        cluster: ClusterSpec,
        spec: PolicySpec,
        fingerprint: str,
        env_key: str,
    ) -> PlacementResponse:
        try:
            loaded: LoadedPolicy = self.registry.load(spec, graph, cluster)
        except (ValueError, KeyError, OSError) as exc:
            # Device-count/feature-dim mismatch, deleted checkpoint, ...
            raise BadRequest(
                f"policy {spec.policy_id!r} cannot serve this request: {exc}"
            ) from exc
        env = self._env_for(graph, cluster, env_key)

        with loaded.lock:
            greedy = loaded.agent.sample(1, np.random.default_rng(0), greedy=True)
            candidates = [env.resolve(greedy.placements[0]).devices]
            if request.budget > 0:
                # Deterministic per-fingerprint sampling: the same request
                # re-computed after a cache eviction returns the same
                # placement.
                rng = np.random.default_rng(
                    int(fingerprint[:16], 16) ^ request.budget
                )
                rollout = loaded.agent.sample(request.budget, rng)
                candidates.extend(
                    env.resolve(actions).devices for actions in rollout.placements
                )

        # Anchor the incremental baseline on the greedy decode: the
        # sampled candidates are policy draws around it, so near misses
        # resume from its schedule instead of resimulating from scratch.
        env.anchor_incremental(candidates[0])
        results = env.evaluate_batch(candidates)
        best_index = 0
        best_time = float("inf")
        for i, result in enumerate(results):
            if result.ok and result.per_step_time < best_time:
                best_index, best_time = i, result.per_step_time
        devices = candidates[best_index]
        placement = env.resolve(devices)
        _, oom = env.check_memory(placement)
        valid = not bool(oom.any())
        predicted = env.makespan(placement) if valid else float("inf")

        return PlacementResponse(
            request_id=request.request_id,
            policy_id=spec.policy_id,
            agent_kind=spec.agent_kind,
            workload=graph.name,
            fingerprint=fingerprint,
            placement={
                node.name: int(device)
                for node, device in zip(graph.nodes, placement.devices)
            },
            device_names=[d.name for d in cluster.devices],
            predicted_step_time=float(predicted),
            valid=valid,
            cache="miss",
            budget=int(request.budget),
            candidates_evaluated=len(candidates),
            latency_ms=0.0,
        )

    # ------------------------------------------------------------------
    # Single-flight plumbing
    # ------------------------------------------------------------------
    def _finish_flight(
        self,
        flight: Optional[Flight],
        result: Optional[PlacementResponse] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        """Resolve ``flight`` if one is open; returns ``None`` so callers
        can clear their local in one statement (finish is once-only)."""
        if flight is not None:
            self._flights.finish(flight, result=result, exception=exception)
        return None

    def _join_flight(
        self,
        request: PlacementRequest,
        flight: Flight,
        start: float,
        trace_id: str,
    ) -> PlacementResponse:
        """Follower path: await the leader's response for the same key.

        Re-raises the leader's typed error (the herd raced one
        computation; they share its outcome). The follower's response is
        the leader's with its own identity, ``cache="coalesced"`` and its
        own latency."""
        wait_start = time.perf_counter()
        shared: PlacementResponse = flight.wait()
        wait_s = time.perf_counter() - wait_start
        latency_ms = (time.perf_counter() - start) * 1e3
        response = replace(
            shared,
            request_id=request.request_id,
            cache="coalesced",
            latency_ms=latency_ms,
            trace_id=trace_id,
        )
        with self._lock:
            self._tel().histogram("serve.coalesce_wait_s").observe(wait_s)
        self._emit_request(
            request,
            "ok",
            "coalesced",
            latency_ms,
            policy_id=response.policy_id,
            fingerprint=response.fingerprint,
            trace_id=trace_id,
            predicted_step_time=float(response.predicted_step_time),
            valid=bool(response.valid),
            workload=response.workload,
        )
        return response

    # ------------------------------------------------------------------
    def handle(self, request: PlacementRequest) -> PlacementResponse:
        """Serve one request synchronously. Raises the typed
        :class:`ServiceError` subclasses on failure."""
        start = time.perf_counter()
        if not request.request_id:
            request.request_id = f"req-{uuid.uuid4().hex[:12]}"
        # Join the caller's trace (the HTTP layer's root span, carried
        # across the queue hop in `request.trace`) or start a fresh one.
        # Responses always carry a trace_id — even when tracing is
        # inactive and no span events are emitted — so clients can quote
        # it in bug reports unconditionally.
        parent_ctx = SpanContext.from_dict(request.trace) if request.trace else None
        handle_span = span(
            "service.handle",
            telemetry=self._tel(),
            parent=parent_ctx,
            new_trace=parent_ctx is None,
            request_id=request.request_id,
        )
        with handle_span:
            ctx = handle_span.context
            if ctx is not None:
                trace_id = ctx.trace_id
            elif parent_ctx is not None:
                trace_id = parent_ctx.trace_id
            else:
                trace_id = new_trace_id()
            if request.budget < 0 or request.budget > self.config.max_budget:
                raise BadRequest(
                    f"budget must be in [0, {self.config.max_budget}], "
                    f"got {request.budget}"
                )
            try:
                graph = self._resolve_graph(request)
                cluster = self._resolve_cluster(request)
                spec = self._select_policy(request, graph, cluster)
                fingerprint = graph.fingerprint()
                cluster_sig = cluster.signature()
                key = f"{fingerprint}:{cluster_sig}:{spec.policy_id}:{request.budget}"

                # Single-flight: join an identical in-flight computation
                # instead of touching the cache or recomputing. The leader
                # resolves the flight with its response (computed or
                # cache-hit) — one computation per herd, and exactly one
                # cache miss counted per herd. `use_cache=False` opts out:
                # that request explicitly wants its own computation.
                flight: Optional[Flight] = None
                if request.use_cache and self.config.coalesce:
                    flight, leader = self._flights.begin(key)
                    if not leader:
                        return self._join_flight(request, flight, start, trace_id)
                try:
                    if request.use_cache:
                        cached = self.cache.get(key)
                        if cached is not None:
                            latency_ms = (time.perf_counter() - start) * 1e3
                            response = replace(
                                cached,
                                request_id=request.request_id,
                                cache="hit",
                                latency_ms=latency_ms,
                                trace_id=trace_id,
                            )
                            flight = self._finish_flight(flight, cached)
                            self._emit_request(
                                request,
                                "ok",
                                "hit",
                                latency_ms,
                                policy_id=spec.policy_id,
                                fingerprint=fingerprint,
                                trace_id=trace_id,
                                predicted_step_time=float(response.predicted_step_time),
                                valid=bool(response.valid),
                                workload=response.workload,
                            )
                            return response

                    response = self._compute(
                        request,
                        graph,
                        cluster,
                        spec,
                        fingerprint,
                        f"{fingerprint}:{cluster_sig}",
                    )
                    response.latency_ms = (time.perf_counter() - start) * 1e3
                    response.trace_id = trace_id
                    if request.use_cache:
                        self.cache.put(key, response)
                    flight = self._finish_flight(flight, response)
                except BaseException as exc:
                    # The leader must always resolve its flight — an
                    # unresolved one would park every follower forever.
                    # Followers re-raise this from flight.wait().
                    self._finish_flight(flight, exception=exc)
                    raise
                with self._lock:
                    tel = self._tel()
                    tel.gauge("serve.cache_size").set(len(self.cache))
                self._emit_request(
                    request,
                    "ok",
                    "miss",
                    response.latency_ms,
                    policy_id=spec.policy_id,
                    fingerprint=fingerprint,
                    trace_id=trace_id,
                    predicted_step_time=float(response.predicted_step_time),
                    valid=bool(response.valid),
                    workload=response.workload,
                )
                return response
            except ServiceError as exc:
                latency_ms = (time.perf_counter() - start) * 1e3
                self._emit_request(
                    request, exc.code, "none", latency_ms, trace_id=trace_id
                )
                raise

    # ------------------------------------------------------------------
    # Cache warming
    # ------------------------------------------------------------------
    #: Workload graph names encode their build kwargs —
    #: ``<generator>_b<batch>[_s<scale>]`` (see repro/workloads) — so a
    #: sidecar's ``workload`` field can be replayed into the exact graph
    #: (and fingerprint) the policy was trained on.
    _WORKLOAD_NAME = re.compile(r"^(?P<gen>[a-z0-9_]+?)_b(?P<batch>\d+)(?:_s(?P<scale>[0-9.]+))?$")

    def _warm_request(self, spec: PolicySpec, budget: int) -> Optional[PlacementRequest]:
        """The replay request for one registered checkpoint, or ``None``
        when its workload name cannot be reconstructed."""
        from repro.workloads import WORKLOADS

        name, kwargs = spec.workload, {}
        if name not in WORKLOADS:
            match = self._WORKLOAD_NAME.match(name)
            if match is None or match.group("gen") not in WORKLOADS:
                return None
            name = match.group("gen")
            kwargs = {"batch_size": int(match.group("batch"))}
            if match.group("scale") is not None:
                kwargs["scale"] = float(match.group("scale"))
        return PlacementRequest(
            workload=name,
            workload_kwargs=kwargs,
            policy_id=spec.policy_id,
            budget=budget,
        )

    def warm(self, budget: int = 0) -> int:
        """Pre-populate the result cache by replaying every registered
        checkpoint's workload fingerprint through :meth:`handle`
        (``python -m repro.serve --warm``; docs/serving.md §4).

        Best-effort: checkpoints whose workload name is not a registered
        generator (or whose cluster shape differs from the default) are
        skipped with a log line, never an error. Returns the number of
        cache entries written."""
        default_devices = ClusterSpec.default().num_devices
        warmed = 0
        for spec in self.registry.policies():
            if not spec.workload or spec.num_devices != default_devices:
                continue
            request = self._warm_request(spec, budget)
            if request is None:
                logger.info(
                    "warm: skipping %s (workload %r is not a registered generator)",
                    spec.policy_id,
                    spec.workload,
                )
                continue
            try:
                response = self.handle(request)
            except ServiceError as exc:
                logger.warning("warm: %s failed: %s", spec.policy_id, exc)
                continue
            if response.cache == "miss":
                warmed += 1
                with self._lock:
                    self._tel().counter("serve.warmed").inc()
        if warmed:
            logger.info("warm: %d cache entries pre-populated", warmed)
        return warmed

    def close(self) -> None:
        """Release cached environments' worker pools."""
        with self._lock:
            envs, self._envs, self._env_order = self._envs, {}, []
        for env in envs.values():
            env.close_pool()
