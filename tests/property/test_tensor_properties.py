"""Property-based tests (hypothesis) for the autodiff core."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, concat, maximum
from repro.nn import functional as F

floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, width=64)


def arrays(shape_max=4):
    return hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=shape_max),
        elements=floats,
    )


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_add_commutes(x):
    a, b = Tensor(x), Tensor(x * 0.5 + 1.0)
    assert np.allclose((a + b).data, (b + a).data)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_mul_grad_is_other_operand(x):
    a = Tensor(x, requires_grad=True)
    b = Tensor(x * 2.0 + 1.0)
    (a * b).sum().backward()
    assert np.allclose(a.grad, b.data)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_sum_grad_is_ones(x):
    a = Tensor(x, requires_grad=True)
    a.sum().backward()
    assert np.array_equal(a.grad, np.ones_like(x))


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_exp_log_roundtrip(x):
    a = Tensor(np.abs(x) + 0.5)
    assert np.allclose(a.log().exp().data, a.data, rtol=1e-10)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_tanh_bounded(x):
    assert np.all(np.abs(Tensor(x).tanh().data) <= 1.0)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_sigmoid_complement(x):
    a = Tensor(x)
    assert np.allclose(a.sigmoid().data + (-a).sigmoid().data, 1.0, atol=1e-12)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_relu_idempotent(x):
    a = Tensor(x)
    once = a.relu().data
    twice = a.relu().relu().data
    assert np.array_equal(once, twice)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_maximum_ge_both(x):
    a, b = Tensor(x), Tensor(-x)
    m = maximum(a, b).data
    assert np.all(m >= a.data) and np.all(m >= b.data)


@given(arrays())
@settings(max_examples=50, deadline=None)
def test_double_backward_chain_linearity(x):
    """grad of (2x).sum() is exactly 2."""
    a = Tensor(x, requires_grad=True)
    (a * 2.0).sum().backward()
    assert np.allclose(a.grad, 2.0)


@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)), elements=floats))
@settings(max_examples=50, deadline=None)
def test_softmax_is_distribution(x):
    s = F.softmax(Tensor(x), axis=-1).data
    assert np.all(s >= 0)
    assert np.allclose(s.sum(axis=-1), 1.0)


@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 6)), elements=floats))
@settings(max_examples=50, deadline=None)
def test_log_softmax_le_zero(x):
    lp = F.log_softmax(Tensor(x), axis=-1).data
    assert np.all(lp <= 1e-12)


@given(
    hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=floats),
    hnp.arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 4)), elements=floats),
)
@settings(max_examples=50, deadline=None)
def test_concat_shapes(a, b):
    if a.shape[1] != b.shape[1]:
        b = np.resize(b, (b.shape[0], a.shape[1]))
    out = concat([Tensor(a), Tensor(b)], axis=0)
    assert out.shape == (a.shape[0] + b.shape[0], a.shape[1])
    assert np.array_equal(out.data[: a.shape[0]], a)
