"""Property-based contract tests for placers over random inputs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.placers import MLPPlacer, SegmentSeq2SeqPlacer, TransformerXLPlacer


def _make_placer(kind: str, in_dim: int, n_dev: int):
    if kind == "segment":
        return SegmentSeq2SeqPlacer(
            in_dim, n_dev, hidden_size=8, segment_size=4, action_embed_dim=4, rng=0
        )
    if kind == "txl":
        return TransformerXLPlacer(
            in_dim, n_dev, model_dim=8, n_layers=1, n_heads=2, segment_size=4, rng=0
        )
    return MLPPlacer(in_dim, n_dev, hidden_size=8, rng=0)


@st.composite
def placer_case(draw):
    kind = draw(st.sampled_from(["segment", "txl", "mlp"]))
    n_ops = draw(st.integers(1, 12))
    n_dev = draw(st.integers(2, 5))
    batch = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10))
    return kind, n_ops, n_dev, batch, seed


@given(placer_case())
@settings(max_examples=25, deadline=None)
def test_sample_contract(case):
    kind, n_ops, n_dev, batch, seed = case
    placer = _make_placer(kind, 6, n_dev)
    reps = Tensor(np.random.default_rng(seed).standard_normal((n_ops, 6)))
    out = placer.run(reps, n_samples=batch, rng=np.random.default_rng(seed))
    assert out.actions.shape == (batch, n_ops)
    assert out.actions.min() >= 0 and out.actions.max() < n_dev
    assert np.all(out.log_probs.data <= 1e-12)
    assert np.all(out.entropy.data >= -1e-9)
    assert np.all(out.entropy.data <= np.log(n_dev) + 1e-9)


@given(placer_case())
@settings(max_examples=25, deadline=None)
def test_teacher_forcing_consistency(case):
    kind, n_ops, n_dev, batch, seed = case
    placer = _make_placer(kind, 6, n_dev)
    reps = Tensor(np.random.default_rng(seed).standard_normal((n_ops, 6)))
    out = placer.run(reps, n_samples=batch, rng=np.random.default_rng(seed))
    rescored = placer.run(reps, actions=out.actions)
    assert np.allclose(out.log_probs.data, rescored.log_probs.data, atol=1e-10)


@given(placer_case())
@settings(max_examples=15, deadline=None)
def test_logp_sums_to_valid_probability(case):
    """Sum over all devices of exp(logp) for any single op is 1."""
    kind, n_ops, n_dev, _, seed = case
    placer = _make_placer(kind, 6, n_dev)
    reps = Tensor(np.random.default_rng(seed).standard_normal((n_ops, 6)))
    total = 0.0
    for device in range(n_dev):
        actions = np.full((1, n_ops), device, dtype=np.int64)
        out = placer.run(reps, actions=actions)
        total += np.exp(out.log_probs.data[0, 0])
    assert total == pytest.approx(1.0, abs=1e-9)
