"""Property-based tests for the stable graph content hash.

The fingerprint is the serving cache's identity, so the properties that
matter are exactly the cache's correctness conditions: equal content
hashes equal (regardless of construction order), different content hashes
different (any field the simulator reads must be covered), and the value
must be reproducible across runs and processes (no dependence on
Python's salted ``hash()``).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import graph_from_dict, graph_to_dict

from tests.property.test_graph_io_properties import random_graph


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_fingerprint(g):
    assert graph_from_dict(graph_to_dict(g)).fingerprint() == g.fingerprint()


@given(random_graph(), st.randoms())
@settings(max_examples=40, deadline=None)
def test_document_order_invariance(g, rnd):
    """Shuffling edge order and node attribute order must not change the
    hash (node order stays topological so the document remains loadable)."""
    doc = graph_to_dict(g)
    rnd.shuffle(doc["edges"])
    doc["nodes"] = [
        dict(sorted(n.items(), key=lambda _: rnd.random())) for n in doc["nodes"]
    ]
    assert graph_from_dict(doc).fingerprint() == g.fingerprint()


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_stability(g):
    """A graph serialized to JSON text and back hashes identically — what
    the HTTP layer does to every inline graph document."""
    doc = json.loads(json.dumps(graph_to_dict(g)))
    assert graph_from_dict(doc).fingerprint() == g.fingerprint()


@given(random_graph(), st.integers(0, 7))
@settings(max_examples=40, deadline=None)
def test_field_sensitivity(g, salt):
    """Perturbing any simulator-visible node field changes the hash."""
    base = g.fingerprint()
    doc = graph_to_dict(g)
    node = doc["nodes"][salt % len(doc["nodes"])]
    field = ["flops", "param_bytes", "activation_bytes"][salt % 3]
    node[field] = node[field] + 1.0
    assert graph_from_dict(doc).fingerprint() != base


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_fingerprint_is_canonical_hex(g):
    fp = g.fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0
    assert fp == g.fingerprint()  # pure: no hidden mutable state
