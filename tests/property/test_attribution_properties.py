"""Property-based tests for placement-attribution invariants.

Pins the contract the attribution engine promises over arbitrary DAGs:
the realized critical path tiles the schedule's span exactly, busy-time
accounting matches the evaluator's utilization definition, and the
attributed path never beats the scheduler's critical-path lower bound.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec, Placement, Scheduler, attribute_schedule

CLUSTER = ClusterSpec.default()
SCHED = Scheduler()


@st.composite
def random_dag(draw):
    """A random DAG of 2..16 ops with random costs; edges go forward only."""
    n = draw(st.integers(2, 16))
    g = CompGraph("random")
    for i in range(n):
        g.add_node(
            OpNode(
                f"op{i}",
                draw(st.sampled_from(["MatMul", "Conv2D", "ReLU", "Concat"])),
                output_shape=(draw(st.integers(1, 64)), draw(st.integers(1, 64))),
                flops=draw(st.floats(0, 1e9)),
                param_bytes=draw(st.floats(0, 1e6)),
                activation_bytes=draw(st.floats(0, 1e6)),
            )
        )
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                g.add_edge(f"op{u}", f"op{v}")
    return g


@st.composite
def dag_and_placement(draw):
    g = draw(random_dag())
    devices = draw(
        st.lists(
            st.integers(0, CLUSTER.num_devices - 1),
            min_size=g.num_nodes,
            max_size=g.num_nodes,
        )
    )
    return g, np.array(devices)


def attributed(case):
    g, devices = case
    placement = Placement(devices, g, CLUSTER)
    schedule = SCHED.run_step(placement, trace=True)
    return g, placement, schedule, attribute_schedule(placement, schedule)


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_path_tiles_span(case):
    """Critical-path segments are contiguous and sum exactly to the span."""
    g, _, schedule, attr = attributed(case)
    assert attr.path[0].start == pytest.approx(0.0, abs=1e-9)
    assert attr.path[-1].end == pytest.approx(attr.span)
    for a, b in zip(attr.path, attr.path[1:]):
        assert b.start == pytest.approx(a.end, abs=1e-9)
    assert attr.critical_path_time == pytest.approx(attr.span)
    assert attr.makespan == pytest.approx(schedule.makespan)


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_busy_time_matches_evaluator_utilization(case):
    """sum(busy) == utilization * makespan * D — the PureEvaluator identity."""
    g, _, schedule, attr = attributed(case)
    expected_util = float(np.mean(schedule.device_busy) / schedule.makespan)
    assert attr.utilization == pytest.approx(expected_util)
    assert attr.device_busy.sum() == pytest.approx(
        attr.utilization * attr.makespan * CLUSTER.num_devices
    )
    # Per-device interval sums reproduce the scheduler's busy vector.
    for d, ivals in enumerate(attr.device_intervals):
        assert sum(e - s for _, s, e in ivals) == pytest.approx(
            schedule.device_busy[d], abs=1e-9
        )


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_attributed_path_dominates_lower_bound(case):
    """The realized critical path (plus overhead) never beats the graph's
    placement-independent critical-path lower bound."""
    g, _, _, attr = attributed(case)
    lb = SCHED.lower_bound(g, CLUSTER)
    assert attr.critical_path_time + CLUSTER.step_overhead >= lb - 1e-9


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_traffic_matrix_consistent(case):
    g, _, schedule, attr = attributed(case)
    assert attr.traffic_bytes.sum() == pytest.approx(schedule.comm_bytes)
    assert np.all(np.diag(attr.traffic_bytes) == 0.0)
    assert 0.0 <= attr.comm_bound_fraction <= 1.0 + 1e-12


@given(dag_and_placement(), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_event_payload_bounded_and_json_safe(case, max_intervals):
    """Payload survives json round-trips and honours the interval cap."""
    g, _, _, attr = attributed(case)
    payload = attr.event_payload(g, max_intervals=max_intervals)
    reloaded = json.loads(json.dumps(payload))
    for dev in reloaded["devices"]:
        assert len(dev["intervals"]) <= max_intervals
        for s, e in dev["intervals"]:
            assert e >= s >= 0.0
    assert reloaded["path_ops"] >= 1


@given(dag_and_placement())
@settings(max_examples=30, deadline=None)
def test_trace_does_not_change_schedule(case):
    """trace=True is observation only: identical makespan and busy times."""
    g, devices = case
    plain = SCHED.run_step(Placement(devices, g, CLUSTER))
    traced = SCHED.run_step(Placement(devices, g, CLUSTER), trace=True)
    assert plain.makespan == traced.makespan
    np.testing.assert_array_equal(plain.device_busy, traced.device_busy)
    assert plain.comm_bytes == traced.comm_bytes
    assert traced.transfers is not None and plain.transfers is None
