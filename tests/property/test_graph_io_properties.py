"""Property-based round-trip tests for graph serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompGraph, OpNode, graph_from_dict, graph_to_dict
from repro.graph.features import CANONICAL_OP_TYPES


@st.composite
def random_graph(draw):
    n = draw(st.integers(1, 12))
    g = CompGraph(draw(st.sampled_from(["g1", "net", "workload"])))
    for i in range(n):
        g.add_node(
            OpNode(
                f"op{i}",
                draw(st.sampled_from(CANONICAL_OP_TYPES)),
                output_shape=tuple(
                    draw(st.lists(st.integers(1, 32), min_size=0, max_size=4))
                ),
                flops=draw(st.floats(0, 1e9)),
                param_bytes=draw(st.floats(0, 1e6)),
                activation_bytes=draw(st.floats(0, 1e6)),
                cpu_only=draw(st.booleans()),
                colocation_group=draw(st.sampled_from([None, "a", "b"])),
            )
        )
    for v in range(1, n):
        for u in range(v):
            if draw(st.integers(0, 3)) == 0:
                g.add_edge(f"op{u}", f"op{v}")
    return g


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_roundtrip_structure(g):
    loaded = graph_from_dict(graph_to_dict(g))
    assert loaded.name == g.name
    assert loaded.num_nodes == g.num_nodes
    assert sorted(loaded.edges()) == sorted(g.edges())


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_roundtrip_attributes(g):
    loaded = graph_from_dict(graph_to_dict(g))
    for a, b in zip(g.nodes, loaded.nodes):
        assert (a.name, a.op_type, a.output_shape) == (b.name, b.op_type, b.output_shape)
        assert a.flops == b.flops
        assert a.param_bytes == b.param_bytes
        assert a.cpu_only == b.cpu_only
        assert a.colocation_group == b.colocation_group


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_features_and_adjacency(g):
    from repro.graph import FeatureExtractor, normalized_adjacency

    loaded = graph_from_dict(graph_to_dict(g))
    fx = FeatureExtractor()
    assert np.allclose(fx(g), fx(loaded))
    assert (normalized_adjacency(g) != normalized_adjacency(loaded)).nnz == 0


@given(random_graph())
@settings(max_examples=40, deadline=None)
def test_roundtrip_is_idempotent(g):
    once = graph_to_dict(graph_from_dict(graph_to_dict(g)))
    assert once == graph_to_dict(g)
