"""Property-based tests for reward shaping and PPO algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, minimum
from repro.rl.reward import RewardConfig, RewardTracker, transform_runtime

runtimes = st.lists(
    st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


@given(runtimes)
@settings(max_examples=60, deadline=None)
def test_rewards_negative_and_ordered(rs):
    tracker = RewardTracker()
    rewards, _ = tracker.compute(rs)
    assert np.all(rewards < 0)
    # Faster runtime -> strictly larger reward.
    order = np.argsort(rs)
    assert np.all(np.diff(rewards[order]) <= 1e-12)


@given(runtimes)
@settings(max_examples=60, deadline=None)
def test_baseline_within_reward_hull(rs):
    """The EMA baseline stays within [min(R), max(R)] of all seen rewards."""
    tracker = RewardTracker()
    rewards, _ = tracker.compute(rs)
    assert rewards.min() - 1e-12 <= tracker.baseline <= rewards.max() + 1e-12


@given(runtimes)
@settings(max_examples=60, deadline=None)
def test_constant_runtimes_zero_advantage(rs):
    tracker = RewardTracker()
    _, adv = tracker.compute([rs[0]] * len(rs))
    assert np.allclose(adv, 0.0, atol=1e-12)


@given(runtimes)
@settings(max_examples=60, deadline=None)
def test_normalized_advantages_standardized(rs):
    if len(rs) < 2 or np.std([transform_runtime(r) for r in rs]) < 1e-8:
        return
    tracker = RewardTracker(RewardConfig(advantage_normalization=True))
    _, adv = tracker.compute(rs)
    assert adv.mean() == pytest.approx(0.0, abs=1e-9)
    assert adv.std() == pytest.approx(1.0, abs=1e-6)


@given(
    st.lists(st.floats(-3, 3), min_size=1, max_size=20),
    st.lists(st.floats(-2, 2), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_ppo_clipped_surrogate_never_exceeds_unclipped_positive(logr, advs):
    """For positive advantages the clipped objective <= unclipped."""
    k = min(len(logr), len(advs))
    ratio = Tensor(np.array(logr[:k])).exp()
    adv = np.abs(np.array(advs[:k]))
    clipped = ratio.clip(0.8, 1.2)
    surr = minimum(ratio * adv, clipped * adv)
    assert np.all(surr.data <= (ratio.data * adv) + 1e-12)


@given(st.lists(st.floats(-1, 1), min_size=2, max_size=20))
@settings(max_examples=60, deadline=None)
def test_ppo_ratio_one_at_sampling_policy(logps):
    """Evaluating the sampling policy itself gives ratio exactly 1."""
    lp = np.array(logps)
    ratio = (Tensor(lp) - Tensor(lp.copy())).exp()
    assert np.allclose(ratio.data, 1.0)
