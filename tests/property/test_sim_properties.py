"""Property-based tests for scheduler/memory/placement invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec, MemoryModel, Placement, Scheduler
from repro.sim.placement import resolve_placement

CLUSTER = ClusterSpec.default()
SCHED = Scheduler()


@st.composite
def random_dag(draw):
    """A random DAG of 2..16 ops with random costs; edges go forward only."""
    n = draw(st.integers(2, 16))
    g = CompGraph("random")
    for i in range(n):
        g.add_node(
            OpNode(
                f"op{i}",
                draw(st.sampled_from(["MatMul", "Conv2D", "ReLU", "Concat"])),
                output_shape=(draw(st.integers(1, 64)), draw(st.integers(1, 64))),
                flops=draw(st.floats(0, 1e9)),
                param_bytes=draw(st.floats(0, 1e6)),
                activation_bytes=draw(st.floats(0, 1e6)),
            )
        )
    for v in range(1, n):
        for u in range(v):
            if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
                g.add_edge(f"op{u}", f"op{v}")
    return g


@st.composite
def dag_and_placement(draw):
    g = draw(random_dag())
    devices = draw(
        st.lists(
            st.integers(0, CLUSTER.num_devices - 1),
            min_size=g.num_nodes,
            max_size=g.num_nodes,
        )
    )
    return g, np.array(devices)


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_makespan_lower_bounds(case):
    g, devices = case
    placement = Placement(devices, g, CLUSTER)
    res = SCHED.run_step(placement)
    # Makespan dominates the busiest device and the critical-path bound.
    assert res.makespan >= res.device_busy.max() - 1e-12
    assert res.makespan >= SCHED.lower_bound(g, CLUSTER) - 1e-9
    assert np.all(res.finish_times > 0)


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_single_device_is_serial_sum(case):
    g, _ = case
    placement = Placement(np.zeros(g.num_nodes, dtype=int), g, CLUSTER)
    res = SCHED.run_step(placement)
    times = SCHED.cost_model.op_time_matrix(g, CLUSTER)
    assert res.makespan == pytest.approx(times[:, 0].sum() + CLUSTER.step_overhead)
    assert res.comm_bytes == 0.0


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_comm_bytes_bounded_by_cut(case):
    g, devices = case
    placement = Placement(devices, g, CLUSTER)
    res = SCHED.run_step(placement)
    cut_bytes = sum(
        g.nodes[u].output_bytes for u, v in g.edges() if devices[u] != devices[v]
    )
    assert res.comm_bytes <= cut_bytes + 1e-9


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_memory_usage_conserved(case):
    g, devices = case
    placement = Placement(devices, g, CLUSTER)
    mm = MemoryModel()
    report = mm.check(placement)
    assert report.usage.sum() == pytest.approx(mm.op_bytes_vector(g).sum())
    assert np.all(report.usage >= 0)


@given(dag_and_placement())
@settings(max_examples=60, deadline=None)
def test_resolution_idempotent(case):
    g, devices = case
    once = resolve_placement(devices, g, CLUSTER)
    twice = resolve_placement(once.devices, g, CLUSTER)
    assert once == twice


@given(dag_and_placement())
@settings(max_examples=30, deadline=None)
def test_scheduler_deterministic(case):
    g, devices = case
    placement = Placement(devices, g, CLUSTER)
    assert SCHED.run_step(placement).makespan == SCHED.run_step(placement).makespan


@given(dag_and_placement())
@settings(max_examples=40, deadline=None)
def test_run_step_deterministic_and_lower_bounded(case):
    """Identical placements (even separately constructed, with or without
    precomputed op-times) give the same makespan, and that makespan never
    beats the critical-path lower bound."""
    g, devices = case
    a = SCHED.run_step(Placement(devices, g, CLUSTER))
    op_times = SCHED.cost_model.op_time_matrix(g, CLUSTER)
    b = SCHED.run_step(Placement(devices.copy(), g, CLUSTER), op_times)
    assert a.makespan == b.makespan
    assert a.makespan >= SCHED.lower_bound(g, CLUSTER) - 1e-9


@given(dag_and_placement(), st.integers(2, 8))
@settings(max_examples=25, deadline=None)
def test_evaluate_batch_matches_sequential(case, n_samples):
    """evaluate_batch == a sequential evaluate loop: same results, same
    cache contents, same EnvStats totals — including in-batch duplicates."""
    from repro.sim import BatchEvalConfig, PlacementEnv

    g, devices = case
    rng = np.random.default_rng(devices.sum() if devices.size else 0)
    batch = [rng.integers(0, CLUSTER.num_devices, g.num_nodes) for _ in range(n_samples)]
    batch.append(batch[0].copy())  # guaranteed duplicate

    seq_env = PlacementEnv(g, CLUSTER)
    batch_env = PlacementEnv(g, CLUSTER, batch=BatchEvalConfig(mode="serial"))
    sequential = [seq_env.evaluate(a) for a in batch]
    batched = batch_env.evaluate_batch(batch)

    assert batched == sequential
    assert batch_env.stats == seq_env.stats
    assert list(batch_env._cache.keys()) == list(seq_env._cache.keys())


@given(dag_and_placement(), st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_trace_does_not_change_results(case, num_gpus):
    """``run_step(trace=True)`` is observation, not intervention: every
    numeric field is identical to the untraced run, across random graphs
    and cluster sizes; only the ``transfers`` record appears."""
    g, devices = case
    cluster = ClusterSpec.default(num_gpus=num_gpus)
    placement = resolve_placement(devices % cluster.num_devices, g, cluster)
    plain = SCHED.run_step(placement)
    traced = SCHED.run_step(placement, trace=True)
    assert traced.makespan == plain.makespan
    assert np.array_equal(traced.start_times, plain.start_times)
    assert np.array_equal(traced.finish_times, plain.finish_times)
    assert np.array_equal(traced.device_busy, plain.device_busy)
    assert traced.comm_time == plain.comm_time
    assert traced.comm_bytes == plain.comm_bytes
    assert plain.transfers is None
    assert traced.transfers is not None
    assert sum(t.nbytes for t in traced.transfers) == traced.comm_bytes
