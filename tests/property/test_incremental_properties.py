"""Bit-identity properties for incremental re-evaluation.

The contract (docs/performance.md): whenever ``resume_schedule`` accepts
a placement, its ``StepResult`` is *bit-identical* — not approximately
equal — to a full ``Scheduler.run_step`` of the same placement, and the
environment produces identical ``MeasurementResult``s with the fast path
on or off. Hypothesis's tiny ``random_dag`` (2–16 ops) sits below the
``min_ops`` gate, so these tests roll their own numpy-seeded generator
of 33–72-op DAGs and parametrize over seeds: well over 200 randomized
(graph, delta, seed) cases per run, forced-fallback cases included.
"""

import numpy as np
import pytest

from repro.graph import CompGraph, OpNode
from repro.sim import (
    ClusterSpec,
    CostModel,
    IncrementalEvalConfig,
    MeasurementProtocol,
    Placement,
    PlacementEnv,
    Scheduler,
    ScheduleTables,
    build_baseline,
    resume_schedule,
)

OP_TYPES = ["MatMul", "Conv2D", "ReLU", "Concat"]


def random_graph(seed: int) -> CompGraph:
    """A 33–72-op DAG with forward-only random edges and random costs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(33, 73))
    g = CompGraph(f"rand{seed}")
    for i in range(n):
        g.add_node(
            OpNode(
                f"op{i}",
                OP_TYPES[int(rng.integers(0, len(OP_TYPES)))],
                output_shape=(int(rng.integers(1, 64)), int(rng.integers(1, 64))),
                flops=float(rng.uniform(0, 1e9)),
                param_bytes=float(rng.uniform(0, 1e6)),
                activation_bytes=float(rng.uniform(0, 1e6)),
            )
        )
    for v in range(1, n):
        for u in rng.choice(v, size=min(v, int(rng.integers(1, 4))), replace=False):
            g.add_edge(f"op{int(u)}", f"op{v}")
    return g


def random_cluster(rng) -> ClusterSpec:
    return ClusterSpec.default(num_gpus=int(rng.integers(2, 6)))


def mutate(anchor: np.ndarray, num_devices: int, rng, max_moves: int = 5) -> np.ndarray:
    devices = anchor.copy()
    for _ in range(int(rng.integers(1, max_moves + 1))):
        op = int(rng.integers(0, len(anchor)))
        devices[op] = (devices[op] + 1 + rng.integers(0, num_devices - 1)) % num_devices
    return devices


def assert_step_identical(resumed, full) -> None:
    """Every field the fast path reconstructs, compared exactly."""
    assert resumed.makespan == full.makespan
    assert np.array_equal(resumed.finish_times, full.finish_times)
    assert np.array_equal(resumed.start_times, full.start_times)
    assert np.array_equal(resumed.device_busy, full.device_busy)
    assert resumed.comm_time == full.comm_time
    assert resumed.comm_bytes == full.comm_bytes


@pytest.mark.parametrize("seed", range(25))
def test_resume_is_bit_identical(seed):
    """25 graphs x 8 deltas = 200 (graph, delta) cases of exact equality.

    ``max_dirty_fraction=1.0`` forces a resume whenever one is possible
    at all, so only source-op moves fall back and nearly every delta
    exercises the drain loop.
    """
    rng = np.random.default_rng(1000 + seed)
    graph = random_graph(seed)
    cluster = random_cluster(rng)
    cm = CostModel()
    scheduler = Scheduler(cm)
    op_times = cm.op_time_matrix(graph, cluster)
    config = IncrementalEvalConfig(max_dirty_fraction=1.0)
    tables = ScheduleTables(graph, cluster, cm, op_times)
    anchor = rng.integers(0, cluster.num_devices, graph.num_nodes)
    baseline = build_baseline(tables, anchor, config)

    hits = 0
    for _ in range(8):
        devices = mutate(anchor, cluster.num_devices, rng)
        resumed = resume_schedule(baseline, devices, config)
        if resumed is None:
            continue
        hits += 1
        full = scheduler.run_step(Placement(devices, graph, cluster), op_times)
        assert_step_identical(resumed, full)
    assert hits >= 4  # with max_dirty=1.0 only source moves can miss


@pytest.mark.parametrize("seed", range(10))
def test_forced_fallbacks_never_lie(seed):
    """Fallback cases return None — they never return a wrong result.

    Source-op moves (dirty from t=0) and a near-zero dirty budget both
    force the miss path; a miss must be an honest ``None``.
    """
    rng = np.random.default_rng(2000 + seed)
    graph = random_graph(100 + seed)
    cluster = random_cluster(rng)
    cm = CostModel()
    op_times = cm.op_time_matrix(graph, cluster)
    tables = ScheduleTables(graph, cluster, cm, op_times)
    anchor = rng.integers(0, cluster.num_devices, graph.num_nodes)

    strict = IncrementalEvalConfig(max_dirty_fraction=1e-9)
    baseline = build_baseline(tables, anchor, strict)
    for _ in range(5):
        devices = mutate(anchor, cluster.num_devices, rng)
        if np.array_equal(devices, anchor):
            continue
        assert resume_schedule(baseline, devices, strict) is None

    loose = IncrementalEvalConfig(max_dirty_fraction=1.0)
    baseline = build_baseline(tables, anchor, loose)
    sources = [i for i in range(graph.num_nodes) if not graph.predecessors(i)]
    for src in sources[:3]:
        devices = anchor.copy()
        devices[src] = (devices[src] + 1) % cluster.num_devices
        assert resume_schedule(baseline, devices, loose) is None


@pytest.mark.parametrize("seed", range(12))
def test_env_results_identical_with_and_without_fast_path(seed):
    """``PlacementEnv.evaluate`` returns the same MeasurementResult —
    noise, penalties and all — with incremental on vs off, across
    randomized measurement-noise seeds."""
    rng = np.random.default_rng(3000 + seed)
    graph = random_graph(200 + seed)
    cluster = random_cluster(rng)
    protocol = MeasurementProtocol(seed=int(rng.integers(0, 2**31)))

    on = PlacementEnv(graph, cluster, protocol=protocol)
    off = PlacementEnv(
        graph, cluster, protocol=protocol,
        incremental=IncrementalEvalConfig(enabled=False),
    )
    anchor = rng.integers(0, cluster.num_devices, graph.num_nodes)
    on.anchor_incremental(anchor)
    off.anchor_incremental(anchor)

    for _ in range(10):
        devices = mutate(anchor, cluster.num_devices, rng)
        assert on.evaluate(devices) == off.evaluate(devices)
    # The fast path must actually have fired for this test to mean much.
    assert on.stats.incremental_hits + on.stats.incremental_fallbacks > 0
    assert off.stats.incremental_hits == 0 and off.stats.incremental_fallbacks == 0


@pytest.mark.parametrize("seed", range(6))
def test_evaluate_batch_matches_sequential_with_fast_path(seed):
    """The batch ≡ sequential contract survives the fast path: identical
    results, cache contents, stats and incremental counters."""
    rng = np.random.default_rng(4000 + seed)
    graph = random_graph(300 + seed)
    cluster = random_cluster(rng)
    protocol = MeasurementProtocol(seed=int(rng.integers(0, 2**31)))
    anchor = rng.integers(0, cluster.num_devices, graph.num_nodes)
    batch = [mutate(anchor, cluster.num_devices, rng) for _ in range(9)]
    batch.append(batch[0].copy())  # in-batch duplicate

    seq_env = PlacementEnv(graph, cluster, protocol=protocol)
    seq_env.anchor_incremental(anchor)
    seq = [seq_env.evaluate(a) for a in batch]

    batch_env = PlacementEnv(graph, cluster, protocol=protocol)
    batch_env.anchor_incremental(anchor)
    batched = batch_env.evaluate_batch(batch)

    assert batched == seq
    assert batch_env.stats == seq_env.stats
