"""Tests for device and cluster specifications."""

import pytest

from repro.sim import ClusterSpec, DeviceSpec
from repro.sim.device import GB


class TestDeviceSpec:
    def test_p100_factory(self):
        gpu = DeviceSpec.p100(0)
        assert gpu.name == "gpu:0"
        assert gpu.is_gpu
        assert gpu.memory == pytest.approx(12 * GB)

    def test_xeon_factory(self):
        cpu = DeviceSpec.xeon()
        assert cpu.kind == "cpu" and not cpu.is_gpu

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "tpu", 1e12, 1e11, 1e9, 1e-5)

    def test_nonpositive_capability(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "gpu", 0, 1e11, 1e9, 1e-5)

    def test_efficiency_lookup_with_default(self):
        gpu = DeviceSpec.p100(0)
        assert gpu.efficiency_for("Conv2D") > gpu.efficiency_for("NeverSeenOp")

    def test_frozen(self):
        gpu = DeviceSpec.p100(0)
        with pytest.raises(Exception):
            gpu.memory = 0


class TestClusterSpec:
    def test_default_cluster_shape(self):
        c = ClusterSpec.default()
        assert c.num_devices == 5
        assert c.gpu_indices == [0, 1, 2, 3]
        assert c.devices[c.cpu_index].kind == "cpu"

    def test_needs_cpu(self):
        with pytest.raises(ValueError, match="CPU"):
            ClusterSpec(devices=(DeviceSpec.p100(0),))

    def test_needs_devices(self):
        with pytest.raises(ValueError):
            ClusterSpec(devices=())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec(devices=(DeviceSpec.p100(0), DeviceSpec.p100(0), DeviceSpec.xeon()))

    def test_transfer_time_monotone_in_bytes(self):
        c = ClusterSpec.default()
        assert c.transfer_time(2**20) < c.transfer_time(2**24)
        assert c.transfer_time(0) == pytest.approx(c.link_latency)

    def test_custom_gpu_count(self):
        c = ClusterSpec.default(num_gpus=2)
        assert len(c.gpu_indices) == 2
