"""Tests for heterogeneous link topologies (NVLink-style overrides)."""

import numpy as np
import pytest

from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec, CostModel, Placement, Scheduler
from repro.sim.device import GB


def two_op_chain():
    g = CompGraph("pair")
    g.add_node(OpNode("a", "MatMul", (4096, 4096), flops=1.0))
    g.add_node(OpNode("b", "ReLU", (4096, 4096)), inputs=["a"])
    return g


class TestLinkOverrides:
    def test_default_uniform(self):
        c = ClusterSpec.default()
        assert c.bandwidth_between(0, 1) == c.link_bandwidth
        assert c.bandwidth_between(2, 3) == c.link_bandwidth

    def test_nvlink_factory_pairs(self):
        c = ClusterSpec.nvlink(num_gpus=4, nvlink_bandwidth=20 * GB)
        assert c.bandwidth_between(0, 1) == 20 * GB
        assert c.bandwidth_between(1, 0) == 20 * GB  # order-insensitive
        assert c.bandwidth_between(2, 3) == 20 * GB
        assert c.bandwidth_between(1, 2) == c.link_bandwidth
        assert c.bandwidth_between(0, c.cpu_index) == c.link_bandwidth

    def test_transfer_time_uses_override(self):
        c = ClusterSpec.nvlink(num_gpus=2, nvlink_bandwidth=30 * GB)
        cm = CostModel()
        fast = cm.transfer_time(3 * GB, c, 0, 1)
        slow = cm.transfer_time(3 * GB, c, 0, c.cpu_index)
        assert fast < slow

    def test_scheduler_prefers_fast_link(self):
        """The same cut costs less across the NVLink pair."""
        g = two_op_chain()
        c = ClusterSpec.nvlink(num_gpus=4, nvlink_bandwidth=30 * GB)
        sched = Scheduler()
        nv = sched.run_step(Placement([0, 1], g, c))  # NVLink pair
        pcie = sched.run_step(Placement([1, 2], g, c))  # plain link
        assert nv.makespan < pcie.makespan

    def test_transfer_time_without_endpoints_uses_default(self):
        c = ClusterSpec.nvlink(num_gpus=2)
        assert c.transfer_time(c.link_bandwidth) == pytest.approx(
            c.link_latency + 1.0
        )
