"""Tests for the measurement protocol and the placement environment."""

import numpy as np
import pytest

from repro.sim import ClusterSpec, MeasurementProtocol, PlacementEnv
from tests.helpers import tiny_graph


class TestMeasurementProtocol:
    def test_invalid_placement_penalty(self):
        proto = MeasurementProtocol()
        res = proto.measure(1.0, valid=False, placement_key=1)
        assert not res.valid
        assert res.per_step_time == proto.invalid_penalty
        assert res.wall_clock == pytest.approx(proto.reinit_cost + proto.oom_detect_cost)

    def test_valid_measurement_near_makespan(self):
        proto = MeasurementProtocol(noise_std=0.01)
        res = proto.measure(2.0, valid=True, placement_key=7)
        assert res.valid and res.ok
        assert res.per_step_time == pytest.approx(2.0, rel=0.05)
        assert res.steps_run == proto.warmup_steps + proto.measure_steps

    def test_determinism_per_placement(self):
        proto = MeasurementProtocol()
        a = proto.measure(1.5, True, placement_key=42)
        b = proto.measure(1.5, True, placement_key=42)
        assert a.per_step_time == b.per_step_time

    def test_different_placements_get_different_noise(self):
        proto = MeasurementProtocol(noise_std=0.05)
        a = proto.measure(1.5, True, placement_key=1)
        b = proto.measure(1.5, True, placement_key=2)
        assert a.per_step_time != b.per_step_time

    def test_warmup_steps_increase_wall_clock(self):
        proto = MeasurementProtocol(warmup_slowdown=2.0, noise_std=0.0)
        res = proto.measure(1.0, True, placement_key=3)
        steady = proto.measure_steps * 1.0
        assert res.wall_clock > proto.reinit_cost + steady + proto.warmup_steps

    def test_cutoff_truncates_bad_placement(self):
        proto = MeasurementProtocol(bad_step_threshold=5.0)
        res = proto.measure(30.0, True, placement_key=4)
        assert res.truncated and not res.ok
        assert res.steps_run == 1  # first warm-up step already exceeds it
        assert res.wall_clock < proto.reinit_cost + 2 * 30.0 * 2

    def test_cutoff_not_triggered_for_good_placement(self):
        proto = MeasurementProtocol(bad_step_threshold=5.0)
        res = proto.measure(1.0, True, placement_key=5)
        assert not res.truncated

    def test_final_evaluation_close_to_makespan(self):
        proto = MeasurementProtocol()
        val = proto.final_evaluation(3.0, placement_key=6)
        assert val == pytest.approx(3.0, rel=0.02)


class TestPlacementEnv:
    @pytest.fixture
    def env(self):
        return PlacementEnv(tiny_graph(), ClusterSpec.default())

    def test_evaluate_returns_sensible_runtime(self, env):
        res = env.evaluate(np.zeros(6, dtype=int))
        assert res.valid
        assert 0 < res.per_step_time < 1.0

    def test_cache_hits_cost_only_reinit(self, env):
        actions = np.zeros(6, dtype=int)
        first = env.evaluate(actions)
        wall_after_first = env.stats.wall_clock
        second = env.evaluate(actions)
        assert env.stats.cache_hits == 1
        assert second.per_step_time == first.per_step_time
        assert env.stats.wall_clock == pytest.approx(
            wall_after_first + env.protocol.reinit_cost
        )

    def test_oom_counted_invalid(self):
        g = tiny_graph()
        g.nodes[1].param_bytes = 50 * 2**30
        env = PlacementEnv(g, ClusterSpec.default())
        res = env.evaluate(np.zeros(6, dtype=int))
        assert not res.valid
        assert env.stats.invalid == 1

    def test_constraint_resolution_applied(self, env):
        """cpu_only ops are placed on the CPU even if actions say otherwise."""
        p = env.resolve(np.zeros(6, dtype=int))
        assert p.device_of(0) == env.cluster.cpu_index

    def test_final_run_nan_on_oom(self):
        g = tiny_graph()
        g.nodes[1].param_bytes = 50 * 2**30
        env = PlacementEnv(g, ClusterSpec.default())
        assert np.isnan(env.final_run(np.zeros(6, dtype=int)))

    def test_makespan_deterministic(self, env):
        p = env.resolve(np.array([0, 1, 2, 1, 0, 3]))
        assert env.makespan(p) == env.makespan(p)

    def test_stats_accumulate(self, env):
        rng = np.random.default_rng(0)
        for _ in range(5):
            env.evaluate(rng.integers(0, 5, 6))
        assert env.stats.evaluations == 5
        assert env.stats.wall_clock > 0
