"""Focused tests of the measurement noise and warm-up models."""

import numpy as np
import pytest

from repro.sim import MeasurementProtocol


class TestNoiseModel:
    def test_zero_noise_reports_exact_makespan(self):
        proto = MeasurementProtocol(noise_std=0.0)
        res = proto.measure(2.5, valid=True, placement_key=0)
        assert res.per_step_time == pytest.approx(2.5)

    def test_noise_scale_matches_config(self):
        """Across many placements the measured dispersion tracks noise_std."""
        proto = MeasurementProtocol(noise_std=0.05)
        samples = np.array(
            [proto.measure(1.0, True, key).per_step_time for key in range(300)]
        )
        # The mean of 10 noisy steps has std ~ noise_std / sqrt(10).
        assert samples.std() == pytest.approx(0.05 / np.sqrt(10), rel=0.3)
        assert samples.mean() == pytest.approx(1.0, rel=0.01)

    def test_warmup_monotone_decay(self):
        """Warm-up inflation shrinks step by step (deterministic check)."""
        proto = MeasurementProtocol(noise_std=0.0, warmup_slowdown=2.0, warmup_steps=4)
        # Reconstruct warm-up factors from the model definition.
        factors = [
            1.0 + (proto.warmup_slowdown - 1.0) * (1.0 - s / proto.warmup_steps)
            for s in range(proto.warmup_steps)
        ]
        assert factors[0] == pytest.approx(2.0)
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_wall_clock_exceeds_sum_of_steady_steps(self):
        proto = MeasurementProtocol(noise_std=0.0)
        res = proto.measure(1.0, True, placement_key=5)
        steady = proto.measure_steps * 1.0
        warm = proto.warmup_steps * 1.0
        assert res.wall_clock > proto.reinit_cost + steady + warm

    def test_cutoff_saves_wall_clock(self):
        """Aborting a bad placement must cost less than measuring it fully."""
        with_cutoff = MeasurementProtocol(bad_step_threshold=5.0)
        without = MeasurementProtocol(bad_step_threshold=None)
        bad = 25.0
        aborted = with_cutoff.measure(bad, True, placement_key=9)
        full = without.measure(bad, True, placement_key=9)
        assert aborted.truncated and not full.truncated
        assert aborted.wall_clock < full.wall_clock / 3

    def test_invalid_cheaper_than_bad(self):
        """OOM is detected quickly; a slow placement wastes more time."""
        proto = MeasurementProtocol(bad_step_threshold=None)
        oom = proto.measure(float("inf"), valid=False, placement_key=1)
        slow = proto.measure(30.0, valid=True, placement_key=1)
        assert oom.wall_clock < slow.wall_clock

    def test_final_evaluation_long_run_tighter_than_short(self):
        proto = MeasurementProtocol(noise_std=0.05)
        vals = [proto.final_evaluation(2.0, key) for key in range(100)]
        assert np.std(vals) < 0.05  # averaging many steps tightens the estimate
