"""Tests for placement representation and constraint resolution."""

import numpy as np
import pytest

from repro.sim import ClusterSpec, Placement, resolve_placement
from repro.sim.placement import single_device_placement
from tests.helpers import tiny_graph


@pytest.fixture
def setup():
    return tiny_graph(), ClusterSpec.default()


class TestPlacement:
    def test_length_validation(self, setup):
        g, c = setup
        with pytest.raises(ValueError):
            Placement([0, 1], g, c)

    def test_device_range_validation(self, setup):
        g, c = setup
        with pytest.raises(ValueError):
            Placement([9] * g.num_nodes, g, c)

    def test_equality_and_hash(self, setup):
        g, c = setup
        a = Placement([0] * 6, g, c)
        b = Placement([0] * 6, g, c)
        assert a == b and hash(a) == hash(b)
        assert a != Placement([1] * 6, g, c)

    def test_ops_on(self, setup):
        g, c = setup
        p = Placement([0, 0, 1, 1, 1, 2], g, c)
        assert list(p.ops_on(1)) == [2, 3, 4]

    def test_num_cut_edges(self, setup):
        g, c = setup
        same = Placement([0] * 6, g, c)
        assert same.num_cut_edges() == 0
        p = Placement([0, 0, 0, 1, 0, 0], g, c)
        # Node "c"=3 has 1 in-edge and 1 out-edge crossing.
        assert p.num_cut_edges() == 2

    def test_describe(self, setup):
        g, c = setup
        text = Placement([0] * 6, g, c).describe()
        assert "gpu:0=6" in text


class TestResolvePlacement:
    def test_cpu_only_forced_to_cpu(self, setup):
        g, c = setup
        p = resolve_placement([0] * 6, g, c)
        assert p.device_of(g.index_of("in")) == c.cpu_index
        assert p.device_of(g.index_of("a")) == 0

    def test_colocation_follows_first_member(self):
        from repro.graph import CompGraph, OpNode

        g = CompGraph()
        g.add_node(OpNode("v", "Variable", colocation_group="w"))
        g.add_node(OpNode("m", "MatMul", colocation_group="w"), inputs=["v"])
        g.add_node(OpNode("cpu_op", "Input", cpu_only=True))
        c = ClusterSpec.default()
        p = resolve_placement([2, 3, 0], g, c)
        assert p.device_of(0) == p.device_of(1) == 2

    def test_actions_length_check(self, setup):
        g, c = setup
        with pytest.raises(ValueError):
            resolve_placement([0], g, c)

    def test_single_device_placement(self, setup):
        g, c = setup
        p = single_device_placement(g, c)
        non_cpu_ops = [i for i, n in enumerate(g.nodes) if not n.cpu_only]
        assert all(p.device_of(i) == 0 for i in non_cpu_ops)

    def test_does_not_mutate_input(self, setup):
        g, c = setup
        actions = np.ones(6, dtype=np.int64)
        resolve_placement(actions, g, c)
        assert np.all(actions == 1)
