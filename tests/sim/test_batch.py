"""Tests for batched placement evaluation and the bounded result cache."""

import numpy as np
import pytest

from repro.sim import BatchEvalConfig, ClusterSpec, PlacementEnv
from repro.sim.batch import BatchEvaluator, PureEvaluator
from repro.telemetry import Telemetry
from tests.helpers import tiny_graph

CLUSTER = ClusterSpec.default()


def random_batch(graph, n=8, seed=0, duplicates=True):
    rng = np.random.default_rng(seed)
    batch = [rng.integers(0, CLUSTER.num_devices, graph.num_nodes) for _ in range(n)]
    if duplicates and n >= 2:
        batch[-1] = batch[0].copy()
    return batch


class TestBatchEquivalence:
    """evaluate_batch must be indistinguishable from sequential evaluate."""

    def test_results_stats_and_cache_match_sequential(self):
        g = tiny_graph()
        batch = random_batch(g, n=10)
        seq_env = PlacementEnv(g, CLUSTER)
        batch_env = PlacementEnv(g, CLUSTER, batch=BatchEvalConfig(mode="serial"))

        sequential = [seq_env.evaluate(a) for a in batch]
        batched = batch_env.evaluate_batch(batch)

        assert batched == sequential
        assert [r.per_step_time for r in batched] == [r.per_step_time for r in sequential]
        assert batch_env.stats == seq_env.stats
        assert list(batch_env._cache.keys()) == list(seq_env._cache.keys())

    def test_thread_pool_matches_serial(self):
        g = tiny_graph()
        batch = random_batch(g, n=6)
        serial_env = PlacementEnv(g, CLUSTER, batch=BatchEvalConfig(mode="serial"))
        pool_env = PlacementEnv(
            g,
            CLUSTER,
            batch=BatchEvalConfig(mode="thread", max_workers=3, min_parallel=1, min_ops_parallel=0),
        )
        try:
            assert pool_env.evaluate_batch(batch) == serial_env.evaluate_batch(batch)
            assert pool_env.stats == serial_env.stats
        finally:
            pool_env.close_pool()

    def test_process_pool_matches_serial(self):
        g = tiny_graph()
        batch = random_batch(g, n=6)
        serial_env = PlacementEnv(g, CLUSTER, batch=BatchEvalConfig(mode="serial"))
        pool_env = PlacementEnv(
            g,
            CLUSTER,
            batch=BatchEvalConfig(mode="process", max_workers=2, min_parallel=1, min_ops_parallel=0),
        )
        try:
            assert pool_env.evaluate_batch(batch) == serial_env.evaluate_batch(batch)
            assert pool_env.stats == serial_env.stats
            # A second batch reuses the warm pool and the shared cache.
            batch2 = random_batch(g, n=6, seed=1)
            assert pool_env.evaluate_batch(batch2) == serial_env.evaluate_batch(batch2)
            assert pool_env.stats == serial_env.stats
        finally:
            pool_env.close_pool()

    def test_in_batch_duplicates_hit_cache(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER)
        actions = np.zeros(g.num_nodes, dtype=int)
        results = env.evaluate_batch([actions, actions.copy(), actions.copy()])
        assert env.stats.evaluations == 3
        assert env.stats.cache_hits == 2
        assert results[0] == results[1] == results[2]

    def test_cross_batch_cache_reuse(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER)
        batch = random_batch(g, n=4, duplicates=False)
        env.evaluate_batch(batch)
        wall = env.stats.wall_clock
        env.evaluate_batch(batch)
        assert env.stats.cache_hits == 4
        # Repeats cost only re-initialization.
        assert env.stats.wall_clock == pytest.approx(
            wall + 4 * env.protocol.reinit_cost
        )

    def test_empty_batch(self):
        env = PlacementEnv(tiny_graph(), CLUSTER)
        assert env.evaluate_batch([]) == []
        assert env.stats.evaluations == 0

    def test_oom_placements_match_sequential(self):
        g = tiny_graph()
        g.nodes[1].param_bytes = 50 * 2**30
        seq_env = PlacementEnv(g, CLUSTER)
        batch_env = PlacementEnv(g, CLUSTER)
        batch = random_batch(g, n=5)
        assert batch_env.evaluate_batch(batch) == [seq_env.evaluate(a) for a in batch]
        assert batch_env.stats.invalid == seq_env.stats.invalid > 0


class TestBatchTelemetry:
    def test_batch_metrics_recorded(self):
        tel = Telemetry(name="test")
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, telemetry=tel)
        env.evaluate_batch(random_batch(g, n=8))  # one duplicate -> dedupe
        snap = tel.metrics.snapshot()
        assert snap["counters"]["env.batches"]["value"] == 1
        assert snap["histograms"]["env.batch_size"]["count"] == 1
        assert snap["histograms"]["env.batch_size"]["max"] == 8.0
        dedupe = snap["histograms"]["env.batch_dedupe_rate"]
        assert dedupe["max"] == pytest.approx(1 / 8)
        assert snap["gauges"]["env.cache_size"]["value"] == 7.0

    def test_pool_utilization_recorded(self):
        tel = Telemetry(name="test")
        g = tiny_graph()
        env = PlacementEnv(
            g,
            CLUSTER,
            telemetry=tel,
            batch=BatchEvalConfig(mode="thread", max_workers=4, min_parallel=1, min_ops_parallel=0),
        )
        try:
            env.evaluate_batch(random_batch(g, n=9, duplicates=False))
            snap = tel.metrics.snapshot()
            assert snap["gauges"]["env.eval_pool_workers"]["value"] == 4.0
            util = snap["histograms"]["env.batch_pool_utilization"]
            assert util["count"] == 1
            # 9 unique jobs over 4 workers -> 3 waves of 4 slots.
            assert util["max"] == pytest.approx(9 / 12)
        finally:
            env.close_pool()


class TestBoundedCache:
    def test_cache_never_exceeds_capacity(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, cache_capacity=4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            env.evaluate(rng.integers(0, CLUSTER.num_devices, g.num_nodes))
        assert env.cache_size <= 4
        assert env.stats.cache_evictions > 0

    def test_lru_keeps_recent_entries(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, cache_capacity=2)
        a = np.zeros(g.num_nodes, dtype=int)
        b = np.ones(g.num_nodes, dtype=int)
        c = np.full(g.num_nodes, 2)
        env.evaluate(a)
        env.evaluate(b)
        env.evaluate(a)  # refresh a -> b is now least recently used
        env.evaluate(c)  # evicts b
        hits = env.stats.cache_hits
        env.evaluate(a)
        assert env.stats.cache_hits == hits + 1
        env.evaluate(b)  # evicted: recomputed, not a hit
        assert env.stats.cache_hits == hits + 1

    def test_evicted_entry_remeasures_identically(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, cache_capacity=1)
        a = np.zeros(g.num_nodes, dtype=int)
        first = env.evaluate(a)
        env.evaluate(np.ones(g.num_nodes, dtype=int))  # evicts a
        again = env.evaluate(a)
        assert again == first  # measurement noise is a function of the placement

    def test_zero_capacity_means_unbounded(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, cache_capacity=0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            env.evaluate(rng.integers(0, CLUSTER.num_devices, g.num_nodes))
        assert env.stats.cache_evictions == 0

    def test_cache_size_gauge_tracks_evictions(self):
        tel = Telemetry(name="test")
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER, telemetry=tel, cache_capacity=3)
        rng = np.random.default_rng(0)
        for _ in range(10):
            env.evaluate(rng.integers(0, CLUSTER.num_devices, g.num_nodes))
        snap = tel.metrics.snapshot()
        assert snap["gauges"]["env.cache_size"]["value"] <= 3.0
        assert snap["counters"]["env.cache_evictions"]["value"] == env.stats.cache_evictions


class TestBatchEvaluatorInternals:
    def _evaluator(self, g):
        env = PlacementEnv(g, CLUSTER)
        return env._evaluator

    def test_serial_fallback_for_small_batches(self):
        g = tiny_graph()
        ev = BatchEvaluator(self._evaluator(g), BatchEvalConfig(mode="auto", max_workers=4))
        # Below min_parallel and below min_ops_parallel -> serial.
        assert ev._pick_mode(2) == "serial"
        assert ev._pick_mode(10) == "serial"  # graph too small for auto

    def test_auto_uses_pool_on_big_graphs(self):
        g = tiny_graph()
        cfg = BatchEvalConfig(mode="auto", max_workers=4, min_parallel=4, min_ops_parallel=1)
        ev = BatchEvaluator(self._evaluator(g), cfg)
        assert ev._pick_mode(10) == "process"
        assert ev._pick_mode(2) == "serial"

    def test_single_worker_is_serial(self):
        g = tiny_graph()
        ev = BatchEvaluator(self._evaluator(g), BatchEvalConfig(mode="process", max_workers=1))
        assert ev._pick_mode(10) == "serial"

    def test_broken_pool_degrades_to_serial(self):
        g = tiny_graph()
        cfg = BatchEvalConfig(mode="thread", max_workers=2, min_parallel=1, min_ops_parallel=0)
        ev = BatchEvaluator(self._evaluator(g), cfg)

        def boom(*args, **kwargs):
            raise RuntimeError("pool refused")

        ev._ensure_executor = boom
        jobs = [(np.zeros(g.num_nodes, dtype=np.int64), 1)]
        outcomes, workers = ev.compute_many(jobs + jobs)
        assert workers == 0 and len(outcomes) == 2
        assert ev._pool_broken
        assert ev._pick_mode(10) == "serial"

    def test_broken_pool_mid_batch_rebuilds_then_degrades(self):
        from concurrent.futures.process import BrokenProcessPool

        g = tiny_graph()
        cfg = BatchEvalConfig(
            mode="thread", max_workers=2, min_parallel=1, min_ops_parallel=0,
            max_pool_rebuilds=1,
        )
        ev = BatchEvaluator(self._evaluator(g), cfg)
        serial = BatchEvaluator(self._evaluator(g), BatchEvalConfig(mode="serial"))

        class DyingExecutor:
            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker killed mid-batch")

        ev._ensure_executor = lambda kind: DyingExecutor()
        jobs = [(np.full(g.num_nodes, i % 2, dtype=np.int64), i) for i in range(4)]

        # First failure: the batch finishes serially (identical results)
        # and the pool stays eligible for a rebuild next batch.
        outcomes, workers = ev.compute_many(jobs)
        assert workers == 0
        assert outcomes == serial.compute_many(jobs)[0]
        assert ev.pool_failures == 1
        assert not ev._pool_broken
        assert ev._pick_mode(len(jobs)) == "thread"  # rebuild allowed

        # Second failure exceeds max_pool_rebuilds=1: permanent serial.
        outcomes, workers = ev.compute_many(jobs)
        assert workers == 0 and outcomes == serial.compute_many(jobs)[0]
        assert ev.pool_failures == 2
        assert ev._pool_broken
        assert ev._pick_mode(len(jobs)) == "serial"

    def test_env_counts_pool_failures(self):
        from concurrent.futures.process import BrokenProcessPool

        tel = Telemetry(name="test")
        g = tiny_graph()
        env = PlacementEnv(
            g,
            CLUSTER,
            telemetry=tel,
            batch=BatchEvalConfig(
                mode="thread", max_workers=2, min_parallel=1, min_ops_parallel=0
            ),
        )
        serial_env = PlacementEnv(g, CLUSTER, batch=BatchEvalConfig(mode="serial"))

        class DyingExecutor:
            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker killed mid-batch")

        env._batcher._ensure_executor = lambda kind: DyingExecutor()
        batch = random_batch(g, n=6, duplicates=False)
        results = env.evaluate_batch(batch)
        # The batch still completes, identical to the serial path.
        assert results == serial_env.evaluate_batch(batch)
        assert env.stats.eval_pool_failures == 1
        snap = tel.metrics.snapshot()
        assert snap["counters"]["env.eval_pool_failures"]["value"] == 1.0
        # The failure count survives a snapshot round-trip.
        state = env.state_dict()
        env2 = PlacementEnv(g, CLUSTER)
        env2.load_state_dict(state)
        assert env2.stats.eval_pool_failures == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BatchEvalConfig(mode="gpu")

    def test_resolved_workers_cpu_aware(self):
        assert BatchEvalConfig().resolved_workers() >= 1
        assert BatchEvalConfig(max_workers=6).resolved_workers() == 6
        assert BatchEvalConfig(max_workers=0).resolved_workers() == 1

    def test_pure_evaluator_is_picklable(self):
        import pickle

        ev = self._evaluator(tiny_graph())
        clone = pickle.loads(pickle.dumps(ev))
        devices = np.zeros(tiny_graph().num_nodes, dtype=np.int64)
        a = ev.compute(devices, 123)
        b = clone.compute(devices, 123)
        assert a.result == b.result and a.makespan == b.makespan
