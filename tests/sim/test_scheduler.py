"""Tests for the discrete-event list scheduler."""

import numpy as np
import pytest

from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec, CostModel, Placement, Scheduler
from tests.helpers import tiny_graph


def chain_graph(n: int, flops: float = 1e9) -> CompGraph:
    g = CompGraph("chain")
    prev = None
    for i in range(n):
        g.add_node(
            OpNode(f"op{i}", "MatMul", (64, 64), flops=flops),
            inputs=[prev] if prev else [],
        )
        prev = f"op{i}"
    return g


@pytest.fixture
def cluster():
    return ClusterSpec.default()


class TestScheduler:
    def test_single_device_makespan_is_sum(self, cluster):
        g = chain_graph(5)
        sched = Scheduler()
        times = sched.cost_model.op_time_matrix(g, cluster)
        res = sched.run_step(Placement([0] * 5, g, cluster))
        assert res.makespan == pytest.approx(times[:, 0].sum() + cluster.step_overhead)

    def test_chain_on_two_devices_adds_transfers(self, cluster):
        g = chain_graph(4)
        sched = Scheduler()
        same = sched.run_step(Placement([0, 0, 0, 0], g, cluster))
        split = sched.run_step(Placement([0, 1, 0, 1], g, cluster))
        assert split.makespan > same.makespan
        assert split.comm_bytes == pytest.approx(3 * 64 * 64 * 4)

    def test_parallel_branches_overlap(self, cluster):
        """Two independent heavy branches finish faster on two devices."""
        g = CompGraph("fork")
        g.add_node(OpNode("src", "Input", (1,)))
        g.add_node(OpNode("a", "Conv2D", (1,), flops=5e10), inputs=["src"])
        g.add_node(OpNode("b", "Conv2D", (1,), flops=5e10), inputs=["src"])
        g.add_node(OpNode("join", "Concat", (2,)), inputs=["a", "b"])
        sched = Scheduler()
        one = sched.run_step(Placement([0, 0, 0, 0], g, cluster))
        two = sched.run_step(Placement([0, 0, 1, 0], g, cluster))
        assert two.makespan < one.makespan

    def test_transfer_shipped_once_per_consumer_device(self, cluster):
        g = CompGraph("fanout")
        g.add_node(OpNode("src", "MatMul", (256, 256), flops=1e8))
        g.add_node(OpNode("c1", "ReLU", (256, 256)), inputs=["src"])
        g.add_node(OpNode("c2", "ReLU", (256, 256)), inputs=["src"])
        sched = Scheduler()
        res = sched.run_step(Placement([0, 1, 1], g, cluster))
        assert res.comm_bytes == pytest.approx(256 * 256 * 4)  # one shipment

    def test_link_serialization(self, cluster):
        """Two transfers on the same link queue; on different links they don't."""
        g = CompGraph("links")
        g.add_node(OpNode("a", "MatMul", (4096, 4096), flops=1.0))
        g.add_node(OpNode("b", "MatMul", (4096, 4096), flops=1.0))
        g.add_node(OpNode("c1", "ReLU", (1,)), inputs=["a"])
        g.add_node(OpNode("c2", "ReLU", (1,)), inputs=["b"])
        sched = Scheduler()
        same_link = sched.run_step(Placement([0, 0, 1, 1], g, cluster))
        diff_link = sched.run_step(Placement([0, 0, 1, 2], g, cluster))
        assert same_link.makespan > diff_link.makespan

    def test_makespan_at_least_critical_path(self, cluster):
        g = tiny_graph()
        sched = Scheduler()
        lb = sched.lower_bound(g, cluster)
        rng = np.random.default_rng(0)
        for _ in range(20):
            placement = Placement(rng.integers(0, 5, g.num_nodes), g, cluster)
            assert sched.run_step(placement).makespan >= lb - 1e-12

    def test_makespan_at_least_busiest_device(self, cluster):
        g = tiny_graph()
        sched = Scheduler()
        res = sched.run_step(Placement([0, 0, 1, 1, 0, 2], g, cluster))
        assert res.makespan >= res.device_busy.max()

    def test_device_busy_accounts_all_ops(self, cluster):
        g = tiny_graph()
        sched = Scheduler()
        times = sched.cost_model.op_time_matrix(g, cluster)
        placement = Placement([0, 1, 2, 3, 4, 0], g, cluster)
        res = sched.run_step(placement)
        expected = sum(times[i, placement.device_of(i)] for i in range(6))
        assert res.device_busy.sum() == pytest.approx(expected)

    def test_empty_graph(self, cluster):
        g = CompGraph("empty")
        res = Scheduler().run_step(Placement([], g, cluster))
        assert res.makespan == 0.0

    def test_precomputed_op_times_match(self, cluster):
        g = tiny_graph()
        sched = Scheduler()
        placement = Placement([0, 1, 0, 1, 0, 1], g, cluster)
        times = sched.cost_model.op_time_matrix(g, cluster)
        a = sched.run_step(placement)
        b = sched.run_step(placement, op_times=times)
        assert a.makespan == pytest.approx(b.makespan)

    def test_custom_cost_model(self, cluster):
        g = chain_graph(3)
        fast = Scheduler(CostModel(backward_factor=1.0))
        slow = Scheduler(CostModel(backward_factor=10.0))
        p = Placement([0, 0, 0], g, cluster)
        assert fast.run_step(p).makespan < slow.run_step(p).makespan
