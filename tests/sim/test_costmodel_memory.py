"""Tests for the cost model and memory accounting."""

import numpy as np
import pytest

from repro.graph import OpNode
from repro.sim import ClusterSpec, CostModel, DeviceSpec, MemoryModel, Placement
from tests.helpers import tiny_graph


class TestCostModel:
    def test_launch_overhead_floor(self):
        cm = CostModel()
        gpu = DeviceSpec.p100(0)
        node = OpNode("noop", "Identity", output_shape=(1,))
        assert cm.op_time(node, gpu) == pytest.approx(gpu.launch_overhead)

    def test_compute_bound_op(self):
        cm = CostModel()
        gpu = DeviceSpec.p100(0)
        node = OpNode("big", "Conv2D", output_shape=(1,), flops=1e12)
        expected = gpu.launch_overhead + 3e12 / (gpu.peak_flops * 0.45)
        assert cm.op_time(node, gpu) == pytest.approx(expected)

    def test_memory_bound_op(self):
        cm = CostModel()
        gpu = DeviceSpec.p100(0)
        node = OpNode("bw", "ReLU", output_shape=(1,), flops=1.0, activation_bytes=1e9)
        expected = gpu.launch_overhead + 3e9 / gpu.mem_bandwidth
        assert cm.op_time(node, gpu) == pytest.approx(expected)

    def test_gpu_faster_than_cpu_on_heavy_op(self):
        cm = CostModel()
        node = OpNode("conv", "Conv2D", output_shape=(1,), flops=1e10)
        assert cm.op_time(node, DeviceSpec.p100(0)) < cm.op_time(node, DeviceSpec.xeon())

    def test_cpu_faster_on_tiny_op(self):
        """The effect the paper observes: small ops run better on the CPU."""
        cm = CostModel()
        node = OpNode("tiny", "Identity", output_shape=(4,), flops=10.0)
        assert cm.op_time(node, DeviceSpec.xeon()) < cm.op_time(node, DeviceSpec.p100(0))

    def test_matrix_shape_and_consistency(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        cm = CostModel()
        m = cm.op_time_matrix(g, c)
        assert m.shape == (6, 5)
        assert m[1, 0] == pytest.approx(cm.op_time(g.nodes[1], c.devices[0]))

    def test_transfer_counts_both_directions(self):
        cm = CostModel()
        c = ClusterSpec.default()
        t = cm.transfer_time(c.link_bandwidth, c)  # 1 second of payload
        assert t == pytest.approx(c.link_latency + 2.0)


class TestMemoryModel:
    def test_op_bytes(self):
        mm = MemoryModel(param_multiplier=4.0, activation_multiplier=1.0)
        node = OpNode("x", "MatMul", output_shape=(1,), param_bytes=100, activation_bytes=50)
        assert mm.op_bytes(node) == pytest.approx(450)

    def test_check_detects_oom(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        # Inflate one op beyond GPU memory.
        g.nodes[1].param_bytes = 20 * 2**30
        mm = MemoryModel()
        report = mm.check(Placement([0, 0, 0, 0, 0, 0], g, c))
        assert not report.fits and 0 in report.oom_devices

    def test_fits_when_spread(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        mm = MemoryModel()
        report = mm.check(Placement([0, 1, 2, 3, 0, 1], g, c))
        assert report.fits
        assert report.usage.sum() == pytest.approx(mm.op_bytes_vector(g).sum())

    def test_describe_mentions_oom(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        g.nodes[1].param_bytes = 20 * 2**30
        report = MemoryModel().check(Placement([0] * 6, g, c))
        assert "OOM" in report.describe(c)

    def test_utilization_bounded_when_fitting(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        report = MemoryModel().check(Placement([0] * 6, g, c))
        assert np.all(report.utilization() <= 1.0)
