"""Tests for the placement attribution engine."""

import json

import numpy as np
import pytest

from repro.sim import (
    ClusterSpec,
    Placement,
    PlacementEnv,
    Scheduler,
    attribute_schedule,
    coalesce_intervals,
)
from repro.telemetry import Telemetry, start_run, read_events, validate_event
from tests.helpers import tiny_graph

CLUSTER = ClusterSpec.default()
SCHED = Scheduler()


def traced(graph, devices):
    placement = Placement(np.asarray(devices), graph, CLUSTER)
    return placement, SCHED.run_step(placement, trace=True)


class TestAttributeSchedule:
    def test_untraced_schedule_rejected(self):
        g = tiny_graph()
        placement = Placement(np.zeros(g.num_nodes, dtype=int), g, CLUSTER)
        schedule = SCHED.run_step(placement)  # no trace
        with pytest.raises(ValueError, match="trace"):
            attribute_schedule(placement, schedule)

    def test_single_device_path_is_all_compute(self):
        g = tiny_graph()
        placement, schedule = traced(g, np.zeros(g.num_nodes, dtype=int))
        attr = attribute_schedule(placement, schedule)
        assert attr.comm_bound_fraction == 0.0
        assert all(s.kind == "op" for s in attr.path)
        # With one device and no comm, every op is on the critical path.
        assert len(attr.path) == g.num_nodes
        assert attr.critical_path_time == pytest.approx(attr.span)
        assert attr.makespan == pytest.approx(schedule.makespan)
        assert attr.makespan == pytest.approx(attr.span + CLUSTER.step_overhead)

    def test_path_tiles_span_contiguously(self):
        g = tiny_graph()
        rng = np.random.default_rng(0)
        for _ in range(10):
            devices = rng.integers(0, CLUSTER.num_devices, g.num_nodes)
            placement, schedule = traced(g, devices)
            attr = attribute_schedule(placement, schedule)
            assert attr.path, "non-empty graph must yield a path"
            assert attr.path[0].start == pytest.approx(0.0, abs=1e-9)
            assert attr.path[-1].end == pytest.approx(attr.span)
            for a, b in zip(attr.path, attr.path[1:]):
                assert b.start == pytest.approx(a.end, abs=1e-9)
            assert attr.critical_path_time == pytest.approx(attr.span)

    def test_cross_device_placement_has_comm_segments(self):
        g = tiny_graph()
        # Alternate devices along the chain: every edge crosses devices.
        devices = np.arange(g.num_nodes) % 2
        placement, schedule = traced(g, devices)
        attr = attribute_schedule(placement, schedule)
        kinds = {s.kind for s in attr.path}
        assert "comm" in kinds
        assert attr.comm_bound_fraction > 0.0
        comm_segments = [s for s in attr.path if s.kind == "comm"]
        for s in comm_segments:
            assert s.dst_device >= 0 and s.dst_device != s.device

    def test_traffic_matrix_totals_match_schedule(self):
        g = tiny_graph()
        devices = np.arange(g.num_nodes) % 3
        placement, schedule = traced(g, devices)
        attr = attribute_schedule(placement, schedule)
        assert attr.traffic_bytes.sum() == pytest.approx(schedule.comm_bytes)
        assert np.all(np.diag(attr.traffic_bytes) == 0.0)
        assert attr.comm_bytes == pytest.approx(schedule.comm_bytes)
        assert attr.comm_time == pytest.approx(schedule.comm_time)

    def test_busy_idle_accounting(self):
        g = tiny_graph()
        devices = np.arange(g.num_nodes) % 2
        placement, schedule = traced(g, devices)
        attr = attribute_schedule(placement, schedule)
        np.testing.assert_allclose(attr.device_busy, schedule.device_busy)
        np.testing.assert_allclose(
            attr.device_idle, np.maximum(attr.span - schedule.device_busy, 0.0)
        )
        assert attr.device_op_counts.sum() == g.num_nodes
        for d, ivals in enumerate(attr.device_intervals):
            busy = sum(e - s for _, s, e in ivals)
            assert busy == pytest.approx(attr.device_busy[d])

    def test_top_critical_ops_sorted_desc(self):
        g = tiny_graph()
        placement, schedule = traced(g, np.zeros(g.num_nodes, dtype=int))
        attr = attribute_schedule(placement, schedule)
        top = attr.top_critical_ops(3)
        durations = [s.duration for s in top]
        assert durations == sorted(durations, reverse=True)
        assert len(top) == 3

    def test_event_payload_is_json_safe_and_complete(self):
        g = tiny_graph()
        devices = np.arange(g.num_nodes) % 2
        placement, schedule = traced(g, devices)
        attr = attribute_schedule(placement, schedule)
        payload = attr.event_payload(g, iteration=4, top_k=5)
        text = json.dumps(payload)  # must not raise on numpy leftovers
        reloaded = json.loads(text)
        for key in (
            "iteration", "makespan", "critical_path_time", "comm_bound_fraction",
            "utilization", "comm_time", "comm_bytes", "path_ops", "path_comms",
            "devices", "top_ops", "traffic_bytes",
        ):
            assert key in reloaded
        assert reloaded["iteration"] == 4
        assert reloaded["top_ops"][0]["name"] in {n.name for n in g.nodes}
        assert len(reloaded["devices"]) == CLUSTER.num_devices

    def test_empty_graph(self):
        from repro.graph import CompGraph

        g = CompGraph("empty")
        placement, schedule = traced(g, np.zeros(0, dtype=int))
        attr = attribute_schedule(placement, schedule)
        assert attr.path == []
        assert attr.critical_path_time == 0.0
        assert attr.comm_bound_fraction == 0.0


class TestCoalesceIntervals:
    def test_merges_touching_and_overlapping(self):
        spans = [(0.0, 1.0), (1.0, 2.0), (1.5, 3.0), (5.0, 6.0)]
        assert coalesce_intervals(spans) == [(0.0, 3.0), (5.0, 6.0)]

    def test_unsorted_input(self):
        assert coalesce_intervals([(2.0, 3.0), (0.0, 1.0)]) == [(0.0, 1.0), (2.0, 3.0)]

    def test_coarsens_smallest_gaps_first(self):
        # gaps: 0.1 (after first) and 10 (after second) — the small one merges.
        spans = [(0.0, 1.0), (1.1, 2.0), (12.0, 13.0)]
        out = coalesce_intervals(spans, max_intervals=2)
        assert out == [(0.0, 2.0), (12.0, 13.0)]

    def test_empty(self):
        assert coalesce_intervals([]) == []


class TestEnvAttribution:
    def test_env_attribute_matches_env_makespan(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER)
        actions = np.arange(g.num_nodes) % 2
        attr = env.attribute(actions)
        placement = env.resolve(actions)
        assert attr.makespan == pytest.approx(env.makespan(placement))
        # Utilization definition matches the evaluator's.
        schedule = env.scheduler.run_step(placement, env._op_times, env._order)
        expected = float(np.mean(schedule.device_busy) / schedule.makespan)
        assert attr.utilization == pytest.approx(expected)

    def test_attribute_does_not_touch_cache_or_stats(self):
        g = tiny_graph()
        env = PlacementEnv(g, CLUSTER)
        env.attribute(np.zeros(g.num_nodes, dtype=int))
        assert env.stats.evaluations == 0
        assert len(env._cache) == 0

    def test_record_attribution_emits_validating_event(self, tmp_path):
        g = tiny_graph()
        tel = start_run("attr", str(tmp_path))
        env = PlacementEnv(g, CLUSTER, telemetry=tel)
        env.record_attribution(np.arange(g.num_nodes) % 2, iteration=7)
        tel.close()
        events = list(read_events(tel.run_dir, types=("attribution",)))
        assert len(events) == 1
        assert validate_event(events[0]) == []
        assert events[0]["iteration"] == 7
        assert events[0]["critical_path_time"] > 0

    def test_record_attribution_sets_gauges(self):
        g = tiny_graph()
        tel = Telemetry()
        env = PlacementEnv(g, CLUSTER, telemetry=tel)
        attr = env.record_attribution(np.arange(g.num_nodes) % 2)
        snap = tel.metrics.snapshot()
        gauges = snap["gauges"]
        assert gauges["env.critical_path_time"]["value"] == pytest.approx(
            attr.critical_path_time
        )
        assert gauges["env.critical_path_ops"]["value"] == sum(
            1 for s in attr.path if s.kind == "op"
        )
        assert gauges["env.comm_bound_fraction"]["value"] == pytest.approx(
            attr.comm_bound_fraction
        )
