"""Unit tests for incremental makespan re-evaluation (sim/incremental.py).

The bit-identity contract itself is hammered by
``tests/property/test_incremental_properties.py``; this file pins the
surrounding machinery — fallback decisions, the environment wiring,
counters, config gates and the run-state round trip.
"""

import numpy as np
import pytest

from repro.graph import CompGraph, OpNode
from repro.sim import (
    ClusterSpec,
    CostModel,
    IncrementalEvalConfig,
    IncrementalEvaluator,
    Placement,
    PlacementEnv,
    Scheduler,
    ScheduleTables,
    build_baseline,
    resume_schedule,
)
from repro.telemetry import Telemetry


def layered_graph(layers: int = 12, width: int = 3) -> CompGraph:
    """A ~40-op layered DAG: above the default ``min_ops`` gate."""
    g = CompGraph("layered")
    g.add_node(OpNode("in", "Input", (4, 8)))
    prev = ["in"]
    for layer in range(layers):
        names = []
        for j in range(width):
            name = f"l{layer}/op{j}"
            g.add_node(
                OpNode(name, "MatMul", (16, 32), flops=1e7, param_bytes=4096),
                inputs=prev if j == 0 else [prev[0], f"l{layer}/op{j - 1}"],
            )
            names.append(name)
        prev = names
    g.add_node(OpNode("out", "Concat", (4,)), inputs=prev)
    return g


CLUSTER = ClusterSpec.default()
GRAPH = layered_graph()


def make_baseline(config=None, anchor=None):
    cm = CostModel()
    op_times = cm.op_time_matrix(GRAPH, CLUSTER)
    tables = ScheduleTables(GRAPH, CLUSTER, cm, op_times)
    if anchor is None:
        anchor = np.random.default_rng(0).integers(0, CLUSTER.num_devices, GRAPH.num_nodes)
    cfg = config if config is not None else IncrementalEvalConfig()
    return build_baseline(tables, anchor, cfg), cfg, op_times


class TestConfig:
    def test_rejects_bad_dirty_fraction(self):
        with pytest.raises(ValueError):
            IncrementalEvalConfig(max_dirty_fraction=0.0)
        with pytest.raises(ValueError):
            IncrementalEvalConfig(max_dirty_fraction=1.5)

    def test_rejects_bad_checkpoints(self):
        with pytest.raises(ValueError):
            IncrementalEvalConfig(checkpoints=0)


class TestResume:
    def test_unchanged_placement_returns_baseline_result(self):
        baseline, cfg, _ = make_baseline()
        res = resume_schedule(baseline, baseline.devices.copy(), cfg)
        assert res is baseline.result

    def test_source_move_falls_back(self):
        """Moving a zero-indegree op dirties t=0; no resume point exists."""
        baseline, cfg, _ = make_baseline()
        devices = baseline.devices.copy()
        devices[0] = (devices[0] + 1) % CLUSTER.num_devices  # "in" is a source
        assert resume_schedule(baseline, devices, cfg) is None

    def test_tiny_dirty_threshold_falls_back(self):
        cfg = IncrementalEvalConfig(max_dirty_fraction=1e-9)
        baseline, _, _ = make_baseline(cfg)
        devices = baseline.devices.copy()
        devices[-1] = (devices[-1] + 1) % CLUSTER.num_devices
        assert resume_schedule(baseline, devices, cfg) is None

    def test_resume_matches_full_simulation(self):
        baseline, cfg, op_times = make_baseline()
        sched = Scheduler()
        rng = np.random.default_rng(7)
        hits = 0
        for _ in range(20):
            devices = baseline.devices.copy()
            devices[rng.integers(1, GRAPH.num_nodes)] = rng.integers(0, CLUSTER.num_devices)
            res = resume_schedule(baseline, devices, cfg)
            if res is None:
                continue
            hits += 1
            full = sched.run_step(Placement(devices, GRAPH, CLUSTER), op_times)
            assert res.makespan == full.makespan
            assert np.array_equal(res.finish_times, full.finish_times)
            assert np.array_equal(res.device_busy, full.device_busy)
            assert res.comm_time == full.comm_time
            assert res.comm_bytes == full.comm_bytes
        assert hits > 0

    def test_checkpoint_count_bounds_snapshots(self):
        cfg = IncrementalEvalConfig(checkpoints=4)
        baseline, _, _ = make_baseline(cfg)
        # initial state + at most `checkpoints` periodic snapshots
        assert 1 <= len(baseline.snapshots) <= 5


class TestEvaluator:
    def test_not_ready_before_anchor(self):
        cm = CostModel()
        op_times = cm.op_time_matrix(GRAPH, CLUSTER)
        ev = IncrementalEvaluator(GRAPH, CLUSTER, cm, op_times)
        assert not ev.ready
        assert ev.reschedule(np.zeros(GRAPH.num_nodes, dtype=np.int64)) is None

    def test_would_resume_matches_reschedule(self):
        cm = CostModel()
        op_times = cm.op_time_matrix(GRAPH, CLUSTER)
        ev = IncrementalEvaluator(GRAPH, CLUSTER, cm, op_times)
        rng = np.random.default_rng(3)
        anchor = rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)
        ev.anchor(anchor)
        for _ in range(15):
            devices = anchor.copy()
            for _ in range(int(rng.integers(1, 6))):
                devices[rng.integers(0, GRAPH.num_nodes)] = rng.integers(0, CLUSTER.num_devices)
            assert ev.would_resume(devices) == (ev.reschedule(devices) is not None)

    def test_min_ops_gate(self):
        small = CompGraph("small")
        small.add_node(OpNode("a", "MatMul", (4, 4), flops=1e6))
        small.add_node(OpNode("b", "ReLU", (4, 4)), inputs=["a"])
        cm = CostModel()
        ev = IncrementalEvaluator(small, CLUSTER, cm, cm.op_time_matrix(small, CLUSTER))
        ev.anchor(np.zeros(2, dtype=np.int64))
        assert not ev.ready

    def test_disabled_gate(self):
        cm = CostModel()
        op_times = cm.op_time_matrix(GRAPH, CLUSTER)
        ev = IncrementalEvaluator(
            GRAPH, CLUSTER, cm, op_times, IncrementalEvalConfig(enabled=False)
        )
        ev.anchor(np.zeros(GRAPH.num_nodes, dtype=np.int64))
        assert not ev.ready

    def test_custom_transfer_time_disables_fast_path(self):
        """Tables bake in the stock transfer formula; a subclass that
        overrides it must silently fall back to full simulation."""

        class WeirdCostModel(CostModel):
            def transfer_time(self, nbytes, cluster, src=None, dst=None):
                return 42.0

        cm = WeirdCostModel()
        ev = IncrementalEvaluator(GRAPH, CLUSTER, cm, cm.op_time_matrix(GRAPH, CLUSTER))
        ev.anchor(np.zeros(GRAPH.num_nodes, dtype=np.int64))
        assert not ev.ready

    def test_maybe_anchor_tracks_improvement(self):
        cm = CostModel()
        op_times = cm.op_time_matrix(GRAPH, CLUSTER)
        ev = IncrementalEvaluator(GRAPH, CLUSTER, cm, op_times)
        rng = np.random.default_rng(5)
        a = rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)
        b = rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)
        ev.maybe_anchor(a, 10.0)
        ev.reschedule(a)  # builds the baseline, pins anchor_makespan
        ev.maybe_anchor(b, ev.anchor_makespan * 2)  # worse: ignored
        assert np.array_equal(ev.baseline.devices, np.asarray(a, dtype=np.int64))
        ev.maybe_anchor(b, ev.anchor_makespan / 2)  # better: re-anchors
        ev.reschedule(b)
        assert np.array_equal(ev.baseline.devices, np.asarray(b, dtype=np.int64))


class TestEnvWiring:
    def test_anchor_then_neighbour_hits(self):
        tel = Telemetry()
        env = PlacementEnv(GRAPH, CLUSTER, telemetry=tel)
        rng = np.random.default_rng(11)
        anchor = env.resolve(rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)).devices
        env.anchor_incremental(anchor)
        neighbour = anchor.copy()
        neighbour[-1] = (neighbour[-1] + 1) % CLUSTER.num_devices
        env.evaluate(neighbour)
        assert env.stats.incremental_hits + env.stats.incremental_fallbacks == 1
        assert (
            tel.counter("env.incremental_hits").value
            == env.stats.incremental_hits
        )
        assert (
            tel.counter("env.incremental_fallbacks").value
            == env.stats.incremental_fallbacks
        )

    def test_disabled_env_counts_nothing(self):
        env = PlacementEnv(
            GRAPH, CLUSTER, incremental=IncrementalEvalConfig(enabled=False)
        )
        rng = np.random.default_rng(12)
        anchor = env.resolve(rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)).devices
        env.anchor_incremental(anchor)
        for _ in range(5):
            d = anchor.copy()
            d[rng.integers(0, GRAPH.num_nodes)] = rng.integers(0, CLUSTER.num_devices)
            env.evaluate(d)
        assert env.stats.incremental_hits == 0
        assert env.stats.incremental_fallbacks == 0

    def test_oom_placements_never_attempt(self):
        tiny = ClusterSpec.default(gpu_memory_gb=1e-12)
        env = PlacementEnv(GRAPH, tiny)
        anchor = np.zeros(GRAPH.num_nodes, dtype=np.int64)  # all on GPU 0: OOM
        env.anchor_incremental(anchor)
        result = env.evaluate(anchor)
        assert not result.valid
        assert env.stats.incremental_hits == 0
        assert env.stats.incremental_fallbacks == 0

    def test_state_roundtrip_preserves_anchor_and_counters(self):
        rng = np.random.default_rng(13)
        anchor = rng.integers(0, CLUSTER.num_devices, GRAPH.num_nodes)
        moves = []
        for _ in range(12):
            d = anchor.copy()
            d[rng.integers(1, GRAPH.num_nodes)] = rng.integers(0, CLUSTER.num_devices)
            moves.append(d)

        straight = PlacementEnv(GRAPH, CLUSTER)
        straight.anchor_incremental(anchor)
        for d in moves:
            straight.evaluate(d)

        first = PlacementEnv(GRAPH, CLUSTER)
        first.anchor_incremental(anchor)
        for d in moves[:6]:
            first.evaluate(d)
        resumed = PlacementEnv(GRAPH, CLUSTER)
        resumed.load_state_dict(first.state_dict())
        for d in moves[6:]:
            resumed.evaluate(d)

        assert resumed.stats == straight.stats
        assert resumed.stats.incremental_hits > 0

    def test_old_snapshot_without_incremental_keys_loads(self):
        env = PlacementEnv(GRAPH, CLUSTER)
        state = env.state_dict()
        del state["stats"]["incremental_hits"]
        del state["stats"]["incremental_fallbacks"]
        del state["incremental"]
        fresh = PlacementEnv(GRAPH, CLUSTER)
        fresh.load_state_dict(state)
        assert fresh.stats.incremental_hits == 0
