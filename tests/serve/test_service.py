"""Tests for the placement service core (request -> response)."""

import math

import pytest

from repro.graph import graph_to_dict
from repro.serve import (
    BadRequest,
    PlacementRequest,
    PlacementService,
    PolicyNotFound,
    PolicyRegistry,
    ServeConfig,
)
from repro.telemetry import Telemetry, read_events, start_run, validate_event
from tests.helpers import tiny_graph
from tests.serve.conftest import chain_graph


@pytest.fixture(scope="module")
def service(serve_setup):
    ckpt_dir, _, _ = serve_setup
    svc = PlacementService(PolicyRegistry(ckpt_dir))
    yield svc
    svc.close()


def tiny_request(**overrides) -> PlacementRequest:
    doc = dict(graph=graph_to_dict(tiny_graph()))
    doc.update(overrides)
    return PlacementRequest(**doc)


class TestHappyPath:
    def test_greedy_response_fields(self, service):
        response = service.handle(tiny_request())
        assert response.policy_id == "mars__tiny"
        assert response.agent_kind == "mars"
        assert response.workload == "tiny"
        assert response.request_id.startswith("req-")
        assert len(response.fingerprint) == 64
        assert set(response.placement) == {n.name for n in tiny_graph().nodes}
        assert len(response.device_names) == len(set(response.device_names))
        assert response.candidates_evaluated == 1
        assert response.latency_ms > 0
        assert response.budget == 0
        if response.valid:
            assert math.isfinite(response.predicted_step_time)
            assert response.predicted_step_time > 0

    def test_cpu_only_ops_stay_on_host(self, service):
        response = service.handle(tiny_request(use_cache=False))
        # resolve() pins cpu_only nodes to the CPU (the last device).
        assert response.placement["in"] == len(response.device_names) - 1

    def test_miss_then_hit_identical_placement(self, service):
        first = service.handle(tiny_request())
        second = service.handle(tiny_request())
        assert second.cache == "hit"
        assert second.placement == first.placement
        assert second.fingerprint == first.fingerprint
        assert second.policy_id == first.policy_id
        assert second.request_id != first.request_id  # per-request identity
        assert second.latency_ms > 0

    def test_use_cache_false_always_misses(self, service):
        service.handle(tiny_request())  # warm
        response = service.handle(tiny_request(use_cache=False))
        assert response.cache == "miss"

    def test_budget_evaluates_candidates(self, service):
        response = service.handle(tiny_request(budget=4, use_cache=False))
        assert response.candidates_evaluated == 5  # greedy + 4 samples
        assert response.budget == 4

    def test_budget_recompute_is_deterministic(self, service):
        a = service.handle(tiny_request(budget=3, use_cache=False))
        b = service.handle(tiny_request(budget=3, use_cache=False))
        assert a.placement == b.placement

    def test_budget_is_part_of_cache_key(self, service):
        a = service.handle(tiny_request(budget=0))
        b = service.handle(tiny_request(budget=2))
        assert a.fingerprint == b.fingerprint  # same graph content
        assert b.cache == "miss"  # but a different cache entry

    def test_workload_by_name(self, service):
        response = service.handle(
            PlacementRequest(workload="vgg16", workload_kwargs={"scale": 0.25})
        )
        # No vgg16 policy is registered: a transfer policy serves it.
        assert response.workload.startswith("vgg16")
        assert response.placement

    def test_pinned_policy(self, service):
        response = service.handle(
            tiny_request(policy_id="mars__chain", use_cache=False)
        )
        assert response.policy_id == "mars__chain"  # transfer serve


class TestErrors:
    def test_graph_and_workload_both_set(self, service):
        with pytest.raises(BadRequest, match="exactly one"):
            service.handle(tiny_request(workload="vgg16"))

    def test_neither_graph_nor_workload(self, service):
        with pytest.raises(BadRequest, match="exactly one"):
            service.handle(PlacementRequest())

    def test_unknown_workload(self, service):
        with pytest.raises(BadRequest):
            service.handle(PlacementRequest(workload="not-a-workload"))

    def test_invalid_graph_document(self, service):
        doc = graph_to_dict(tiny_graph())
        doc["edges"].append(["ghost", "loss"])
        with pytest.raises(BadRequest, match="unknown node"):
            service.handle(PlacementRequest(graph=doc))

    def test_unknown_cluster_kind(self, service):
        with pytest.raises(BadRequest, match="cluster kind"):
            service.handle(tiny_request(cluster={"kind": "tpu-pod"}))

    def test_no_policy_for_device_count(self, service):
        with pytest.raises(PolicyNotFound):
            service.handle(tiny_request(cluster={"num_gpus": 2}))

    def test_unknown_pinned_policy(self, service):
        with pytest.raises(PolicyNotFound, match="nope"):
            service.handle(tiny_request(policy_id="nope"))

    def test_pinned_policy_device_mismatch(self, service):
        with pytest.raises(BadRequest, match="devices"):
            service.handle(
                tiny_request(policy_id="mars__tiny", cluster={"num_gpus": 2})
            )

    def test_budget_out_of_range(self, service):
        with pytest.raises(BadRequest, match="budget"):
            service.handle(tiny_request(budget=-1))
        with pytest.raises(BadRequest, match="budget"):
            service.handle(tiny_request(budget=service.config.max_budget + 1))

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(BadRequest, match="unknown request field"):
            PlacementRequest.from_json({"workload": "vgg16", "bogus": 1})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(BadRequest, match="JSON object"):
            PlacementRequest.from_json([1, 2])


class TestEnvCache:
    def test_env_for_builds_once_under_concurrency(self, serve_setup, monkeypatch):
        """Regression: two threads missing the same env key must not both
        construct a PlacementEnv (the loser's eval pool leaked)."""
        import threading
        import time as time_mod

        import repro.serve.service as service_mod
        from repro.sim import ClusterSpec

        real_env = service_mod.PlacementEnv
        builds = []

        class CountingEnv(real_env):
            def __init__(self, *args, **kwargs):
                builds.append(threading.get_ident())
                time_mod.sleep(0.05)  # hold the build window open
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(service_mod, "PlacementEnv", CountingEnv)
        ckpt_dir, _, _ = serve_setup
        svc = PlacementService(PolicyRegistry(ckpt_dir))
        try:
            graph, cluster = tiny_graph(), ClusterSpec.default()
            envs, barrier = [], threading.Barrier(8)
            lock = threading.Lock()

            def build():
                barrier.wait(timeout=5.0)
                env = svc._env_for(graph, cluster, "shared-key")
                with lock:
                    envs.append(env)

            threads = [threading.Thread(target=build) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(builds) == 1  # exactly one construction
            assert len(envs) == 8
            assert all(env is envs[0] for env in envs)
            assert "shared-key" not in svc._env_builds  # lock table stays clean
        finally:
            svc.close()


class TestTelemetry:
    def test_serve_request_events_validate(self, serve_setup, tmp_path):
        ckpt_dir, _, _ = serve_setup
        tel = start_run("serve-test", str(tmp_path))
        svc = PlacementService(PolicyRegistry(ckpt_dir), telemetry=tel)
        svc.handle(tiny_request())
        svc.handle(tiny_request())
        with pytest.raises(BadRequest):
            svc.handle(PlacementRequest())
        svc.close()
        tel.close()

        events = list(read_events(tel.run_dir, types=("serve_request",)))
        assert len(events) == 3
        assert all(validate_event(e) == [] for e in events)
        statuses = [e["status"] for e in events]
        caches = [e["cache"] for e in events]
        assert statuses == ["ok", "ok", "bad_request"]
        assert caches == ["miss", "hit", "none"]
        assert all(e["latency_ms"] > 0 for e in events)
        ok = [e for e in events if e["status"] == "ok"]
        assert all(e["policy_id"] and len(e["fingerprint"]) == 64 for e in ok)

    def test_counters_and_cache_metrics(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        tel = Telemetry()  # in-memory metrics, null events
        svc = PlacementService(PolicyRegistry(ckpt_dir), telemetry=tel)
        svc.note_admission(rejected=False)
        svc.handle(tiny_request())
        svc.note_admission(rejected=False)
        svc.handle(tiny_request())
        svc.note_admission(rejected=True)
        svc.close()

        snapshot = tel.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["serve.requests"]["value"] == 3
        assert counters["serve.rejected"]["value"] == 1
        assert counters["serve.cache_hits"]["value"] == 1
        assert snapshot["gauges"]["serve.cache_size"]["value"] == 1
        assert snapshot["histograms"]["serve.latency_ms"]["count"] == 2
