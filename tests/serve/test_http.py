"""End-to-end tests over the HTTP endpoint (real sockets, loopback)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.graph import graph_to_dict
from repro.serve import PlacementServer, PlacementService, PolicyRegistry
from tests.helpers import tiny_graph


@pytest.fixture(scope="module")
def server(serve_setup):
    ckpt_dir, _, _ = serve_setup
    service = PlacementService(PolicyRegistry(ckpt_dir))
    srv = PlacementServer(service, port=0).start()  # ephemeral port
    yield srv
    srv.shutdown()


def get(server, path):
    with urllib.request.urlopen(server.address + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def post(server, path, doc):
    req = urllib.request.Request(
        server.address + path,
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRoutes:
    def test_healthz(self, server):
        status, doc = get(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["policies"] == 2
        assert "queue_depth" in doc and "cache" in doc

    def test_healthz_liveness_and_slo_fields(self, server):
        import os

        from repro.telemetry.events import SCHEMA_VERSION

        status, doc = get(server, "/healthz")
        assert status == 200
        assert doc["uptime_s"] > 0
        assert doc["pid"] == os.getpid()
        assert doc["schema_version"] == SCHEMA_VERSION
        slo = doc["slo"]
        assert slo["latency_slo_ms"] > 0
        assert slo["latency_ok"] and slo["errors_ok"] and slo["rejects_ok"]
        assert slo["alerts"] == 0

    def test_metrics_prometheus_exposition(self, server):
        # Drive one request so serve.* metrics exist, then scrape.
        post(server, "/place", {"graph": graph_to_dict(tiny_graph()), "budget": 0})
        import re

        with urllib.request.urlopen(server.address + "/metrics", timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        assert text.endswith("\n")
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$"
        )
        names = set()
        for line in text.splitlines():
            if not line or line.startswith(("# HELP ", "# TYPE ")):
                continue
            assert sample_re.match(line), line
            names.add(line.split("{", 1)[0].split(" ", 1)[0])
        assert any(n.startswith("serve_") for n in names)

    def test_place_response_echoes_unique_trace_id(self, server):
        body = {"graph": graph_to_dict(tiny_graph()), "budget": 0}
        _, first = post(server, "/place", body)
        _, second = post(server, "/place", body)  # cache hit path
        assert first["trace_id"] and second["trace_id"]
        assert first["trace_id"] != second["trace_id"]
        assert second["cache"] == "hit"

    def test_policies(self, server):
        status, doc = get(server, "/policies")
        assert status == 200
        ids = [p["policy_id"] for p in doc["policies"]]
        assert ids == ["mars__chain", "mars__tiny"]

    def test_unknown_path(self, server):
        status, doc = get_error(server, "/nope")
        assert status == 404 and doc["error"] == "not_found"

    def test_place_and_cache_hit(self, server):
        body = {"graph": graph_to_dict(tiny_graph()), "budget": 0}
        status, first = post(server, "/place", body)
        assert status == 200
        assert first["policy_id"] == "mars__tiny"
        assert first["latency_ms"] > 0
        assert set(first["placement"]) == {n.name for n in tiny_graph().nodes}
        status, second = post(server, "/place", body)
        assert status == 200
        assert second["cache"] == "hit"
        assert second["placement"] == first["placement"]

    def test_place_by_workload_name(self, server):
        status, doc = post(
            server, "/place", {"workload": "vgg16", "workload_kwargs": {"scale": 0.25}}
        )
        assert status == 200 and doc["placement"]

    def test_bad_json_body(self, server):
        req = urllib.request.Request(
            server.address + "/place", data=b"{oops", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "bad_request"

    def test_empty_body_rejected(self, server):
        req = urllib.request.Request(
            server.address + "/place", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_typed_errors_surface_with_status(self, server):
        status, doc = post(server, "/place", {"workload": "not-a-workload"})
        assert status == 400 and doc["error"] == "bad_request"
        status, doc = post(
            server, "/place", {"workload": "vgg16", "cluster": {"num_gpus": 2}}
        )
        assert status == 404 and doc["error"] == "policy_not_found"
        status, doc = post(server, "/place", {"workload": "vgg16", "bogus": 1})
        assert status == 400 and "bogus" in doc["message"]

    def test_reload_clears_cache(self, server):
        body = {"graph": graph_to_dict(tiny_graph())}
        post(server, "/place", body)
        status, doc = post(server, "/reload", {})
        assert status == 200
        assert doc["policies"] == 2
        status, after = post(server, "/place", body)
        assert after["cache"] == "miss"  # cache was cleared


def get_error(server, path):
    try:
        with urllib.request.urlopen(server.address + path, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
