"""Tests for the micro-batching request queue and admission control.

A stub service (instant or gated ``handle``) keeps these deterministic —
the queue only needs ``config``, ``_lock``, ``_tel``, ``note_admission``
and ``handle`` from its service.
"""

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout

import pytest

from repro.serve import (
    PlacementRequest,
    RequestQueue,
    ServeConfig,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)
from repro.telemetry import Telemetry


class StubService:
    """Duck-typed PlacementService: echoes requests after an optional gate."""

    def __init__(self, config: ServeConfig, gated: bool = False):
        self.config = config
        self._lock = threading.Lock()
        self._telemetry = Telemetry()  # in-memory metrics
        self.handled = []
        self.admissions = []
        self.entered = threading.Event()  # a worker is inside handle()
        self.gate = threading.Event()  # blocks handle() until set
        if not gated:
            self.gate.set()

    def _tel(self) -> Telemetry:
        return self._telemetry

    def note_admission(self, rejected: bool) -> None:
        self.admissions.append(rejected)

    def handle(self, request: PlacementRequest):
        self.entered.set()
        assert self.gate.wait(timeout=10.0), "test gate never opened"
        if request.workload == "boom":
            raise ServiceError("synthetic failure")
        self.handled.append(request.request_id)
        return request.request_id


def make_request(i: int) -> PlacementRequest:
    return PlacementRequest(workload="w", request_id=f"req-{i:03d}")


class TestAdmission:
    def test_round_trip(self):
        service = StubService(ServeConfig(workers=2, max_queue=4))
        q = RequestQueue(service)
        assert q.submit_and_wait(make_request(0), timeout=10.0) == "req-000"
        assert service.admissions == [False]
        q.shutdown()

    def test_overload_rejects_with_typed_error(self):
        service = StubService(ServeConfig(workers=1, max_queue=2, max_batch=1), gated=True)
        q = RequestQueue(service)
        futures = [q.submit(make_request(0))]
        assert service.entered.wait(timeout=10.0)  # worker holds request 0
        futures.append(q.submit(make_request(1)))  # queue slot 1
        futures.append(q.submit(make_request(2)))  # queue slot 2: full
        with pytest.raises(ServiceOverloaded, match="full"):
            q.submit(make_request(3))
        assert service.admissions == [False, False, False, True]
        service.gate.set()
        assert sorted(f.result(timeout=10.0) for f in futures) == [
            "req-000",
            "req-001",
            "req-002",
        ]
        q.shutdown()

    def test_overload_does_not_hang(self):
        service = StubService(ServeConfig(workers=1, max_queue=1, max_batch=1), gated=True)
        q = RequestQueue(service)
        q.submit(make_request(0))
        assert service.entered.wait(timeout=10.0)
        q.submit(make_request(1))
        start = time.perf_counter()
        with pytest.raises(ServiceOverloaded):
            q.submit(make_request(2))
        assert time.perf_counter() - start < 1.0  # immediate, not parked
        service.gate.set()
        q.shutdown()

    def test_submit_after_shutdown_raises_closed(self):
        service = StubService(ServeConfig(workers=1, max_queue=4))
        q = RequestQueue(service)
        q.shutdown()
        with pytest.raises(ServiceClosed):
            q.submit(make_request(0))
        assert service.admissions[-1] is True  # counted as a rejection


class TestWorkers:
    def test_micro_batching_drains_backlog(self):
        service = StubService(ServeConfig(workers=1, max_queue=16, max_batch=8), gated=True)
        q = RequestQueue(service)
        futures = [q.submit(make_request(i)) for i in range(6)]
        assert service.entered.wait(timeout=10.0)
        service.gate.set()
        for f in futures:
            f.result(timeout=10.0)
        assert sorted(service.handled) == [f"req-{i:03d}" for i in range(6)]
        # The worker was held at the gate while the backlog built up, so
        # some drained micro-batch must have carried several requests.
        hist = service._telemetry.metrics.snapshot()["histograms"]["serve.batch_size"]
        assert hist["count"] >= 1 and hist["max"] > 1
        q.shutdown()

    def test_service_error_propagates_to_caller(self):
        service = StubService(ServeConfig(workers=1, max_queue=4))
        q = RequestQueue(service)
        with pytest.raises(ServiceError, match="synthetic"):
            q.submit_and_wait(
                PlacementRequest(workload="boom", request_id="req-boom"), timeout=10.0
            )
        # The worker survives a failing request.
        assert q.submit_and_wait(make_request(1), timeout=10.0) == "req-001"
        q.shutdown()

    def test_shutdown_drains_admitted_requests(self):
        service = StubService(ServeConfig(workers=2, max_queue=32, max_batch=4))
        q = RequestQueue(service)
        futures = [q.submit(make_request(i)) for i in range(12)]
        q.shutdown()
        assert not q.running
        assert sorted(f.result(timeout=1.0) for f in futures) == sorted(
            f"req-{i:03d}" for i in range(12)
        )

    def test_timeout_cancels_queued_request(self):
        """Satellite fix: a timed-out submit_and_wait must cancel its
        future so workers skip the stale request instead of computing a
        result nobody will read."""
        service = StubService(ServeConfig(workers=1, max_queue=8, max_batch=1), gated=True)
        q = RequestQueue(service)
        q.submit(make_request(0))  # occupies the only worker at the gate
        assert service.entered.wait(timeout=10.0)
        with pytest.raises(FutureTimeout):
            q.submit_and_wait(make_request(1), timeout=0.1)
        service.gate.set()
        q.shutdown()
        # Request 0 was computed; the timed-out request 1 was skipped.
        assert service.handled == ["req-000"]

    def test_queue_depth_gauge(self):
        service = StubService(ServeConfig(workers=1, max_queue=8, max_batch=1), gated=True)
        q = RequestQueue(service)
        q.submit(make_request(0))
        assert service.entered.wait(timeout=10.0)
        q.submit(make_request(1))
        q.submit(make_request(2))
        assert q.depth == 2
        gauges = service._telemetry.metrics.snapshot()["gauges"]
        assert gauges["serve.queue_depth"]["value"] == 2
        service.gate.set()
        q.shutdown()
        assert q.depth == 0


class RacingQueue:
    """Queue proxy whose ``put_nowait`` parks until told to proceed —
    deterministically widens the submit/shutdown race window."""

    def __init__(self, real):
        self._real = real
        self.hold = threading.Event()  # a put is parked inside submit
        self.proceed = threading.Event()  # release the parked put

    def put_nowait(self, item):
        self.hold.set()
        assert self.proceed.wait(timeout=10.0), "racing put never released"
        return self._real.put_nowait(item)

    def __getattr__(self, name):
        return getattr(self._real, name)


class TestShutdownRace:
    """Regression: a request admitted between the closed check and the
    enqueue after the workers exited must fail with ServiceClosed — its
    future can never be left unresolved (the pre-fix behavior)."""

    def test_item_enqueued_after_shutdown_completes_is_failed(self):
        service = StubService(ServeConfig(workers=1, max_queue=4))
        q = RequestQueue(service)
        racing = RacingQueue(q._queue)
        q._queue = racing

        futures = []

        def racy_submit():
            futures.append(q.submit(make_request(0)))

        submitter = threading.Thread(target=racy_submit)
        submitter.start()
        # The submitter has passed the closed check and is parked inside
        # put_nowait; run the entire shutdown (workers exit, residual
        # drain finds nothing), then let the put land in the dead queue.
        assert racing.hold.wait(timeout=10.0)
        q.shutdown()
        racing.proceed.set()
        submitter.join(timeout=10.0)

        assert len(futures) == 1
        with pytest.raises(ServiceClosed, match="shut down"):
            futures[0].result(timeout=5.0)

    def test_items_stranded_before_final_drain_are_failed(self):
        """Items the dead workers never picked up are failed by
        shutdown's residual drain itself."""
        service = StubService(ServeConfig(workers=1, max_queue=4))
        q = RequestQueue(service, start=False)  # no workers ever ran
        future = q.submit(make_request(0))
        q.shutdown()
        with pytest.raises(ServiceClosed):
            future.result(timeout=5.0)
        assert q.depth == 0

    def test_submit_shutdown_stress_never_strands_a_future(self):
        """Probabilistic sweep over the interleavings: every future from
        a successful submit resolves — a response or a typed error —
        within the join timeout."""
        for _ in range(10):
            service = StubService(ServeConfig(workers=2, max_queue=64, max_batch=4))
            q = RequestQueue(service)
            futures, lock = [], threading.Lock()
            stop = threading.Event()

            def hammer():
                i = 0
                while not stop.is_set():
                    try:
                        f = q.submit(make_request(i))
                    except (ServiceClosed, ServiceOverloaded):
                        return
                    with lock:
                        futures.append(f)
                    i += 1

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.01)
            q.shutdown()
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            for f in futures:
                try:
                    f.result(timeout=5.0)  # resolved either way is a pass
                except ServiceClosed:
                    pass
