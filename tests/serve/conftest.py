"""Shared fixtures for the serving tests.

Building agents is the expensive part, so one session-scoped checkpoint
directory with two small policies (an exact-workload one for ``tiny``
and a transfer one trained on a different graph) backs every test that
needs a populated registry.
"""

from __future__ import annotations

import pytest

from repro.config import fast_profile
from repro.core import save_agent
from repro.core.search import build_agent
from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec
from tests.helpers import tiny_graph


def chain_graph(name: str = "chain", length: int = 5) -> CompGraph:
    """A small linear graph distinct from ``tiny_graph`` (transfer target)."""
    g = CompGraph(name)
    g.add_node(OpNode("in", "Input", (4, 8), cpu_only=True))
    prev = "in"
    for i in range(length):
        node = f"op{i}"
        g.add_node(
            OpNode(node, "MatMul", (4, 16), flops=1e6, param_bytes=256),
            inputs=[prev],
        )
        prev = node
    g.add_node(OpNode("loss", "CrossEntropy", (1,), flops=64), inputs=[prev])
    return g


@pytest.fixture(scope="session")
def serve_setup(tmp_path_factory):
    """(checkpoint_dir, cluster, config) with two servable policies."""
    ckpt_dir = tmp_path_factory.mktemp("checkpoints")
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)

    tiny = tiny_graph()
    agent, _ = build_agent("mars_no_pretrain", tiny, cluster, cfg, None)
    save_agent(
        str(ckpt_dir / "mars__tiny"), agent, "mars", workload=tiny.name, config=cfg
    )

    chain = chain_graph()
    agent2, _ = build_agent("mars_no_pretrain", chain, cluster, cfg, None)
    save_agent(
        str(ckpt_dir / "mars__chain"), agent2, "mars", workload=chain.name, config=cfg
    )
    return str(ckpt_dir), cluster, cfg
