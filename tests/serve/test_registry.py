"""Tests for the checkpoint-directory policy registry."""

import json
import os
import shutil

import numpy as np
import pytest

from repro.serve import PolicyRegistry
from tests.helpers import tiny_graph
from tests.serve.conftest import chain_graph


class TestScan:
    def test_finds_servable_checkpoints(self, serve_setup):
        ckpt_dir, cluster, cfg = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        ids = [s.policy_id for s in registry.policies()]
        assert ids == ["mars__chain", "mars__tiny"]
        spec = registry.get("mars__tiny")
        assert spec.agent_kind == "mars"
        assert spec.workload == "tiny"
        assert spec.num_devices == cluster.num_devices
        assert spec.feature_dim > 0
        assert spec.num_ops == tiny_graph().num_nodes

    def test_sidecar_without_npz_skipped(self, serve_setup, tmp_path):
        ckpt_dir, _, _ = serve_setup
        shutil.copy(
            os.path.join(ckpt_dir, "mars__tiny.json"), tmp_path / "orphan.json"
        )
        assert len(PolicyRegistry(str(tmp_path))) == 0

    def test_corrupt_sidecar_skipped(self, serve_setup, tmp_path):
        ckpt_dir, _, _ = serve_setup
        for ext in (".json", ".npz"):
            shutil.copy(
                os.path.join(ckpt_dir, "mars__tiny" + ext),
                str(tmp_path / ("good" + ext)),
            )
        (tmp_path / "bad.json").write_text("{not json")
        (tmp_path / "bad.npz").write_bytes(b"\x00")
        registry = PolicyRegistry(str(tmp_path))
        assert [s.policy_id for s in registry.policies()] == ["good"]

    def test_empty_directory(self, tmp_path):
        registry = PolicyRegistry(str(tmp_path))
        assert len(registry) == 0
        assert registry.select(num_devices=5) is None


class TestSelect:
    def test_exact_workload_preferred(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        n = cluster.num_devices
        assert registry.select(n, workload="tiny").policy_id == "mars__tiny"
        assert registry.select(n, workload="chain").policy_id == "mars__chain"

    def test_unknown_workload_falls_back_to_transfer(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        spec = registry.select(cluster.num_devices, workload="resnet-from-mars")
        assert spec is not None  # deterministic transfer pick

    def test_device_count_is_a_hard_filter(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        assert registry.select(cluster.num_devices + 3) is None

    def test_agent_kind_filter(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        assert registry.select(cluster.num_devices, agent_kind="mars") is not None
        assert registry.select(cluster.num_devices, agent_kind="grouper") is None


class TestLoad:
    def test_load_caches_by_fingerprint(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        graph = tiny_graph()
        spec = registry.get("mars__tiny")
        first = registry.load(spec, graph, cluster)
        again = registry.load(spec, tiny_graph(), cluster)  # same fingerprint
        assert again is first

    def test_loaded_agent_places_deterministically(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        graph = tiny_graph()
        loaded = registry.load(registry.get("mars__tiny"), graph, cluster)
        a = loaded.agent.sample(1, np.random.default_rng(0), greedy=True)
        b = loaded.agent.sample(1, np.random.default_rng(0), greedy=True)
        assert np.array_equal(a.placements, b.placements)

    def test_transfer_load_onto_other_graph(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir)
        other = chain_graph("other", length=7)
        loaded = registry.load(registry.get("mars__tiny"), other, cluster)
        rollout = loaded.agent.sample(1, np.random.default_rng(0), greedy=True)
        assert rollout.placements.shape[1] == other.num_nodes

    def test_agent_cache_bounded(self, serve_setup):
        ckpt_dir, cluster, _ = serve_setup
        registry = PolicyRegistry(ckpt_dir, agent_cache_size=1)
        tiny = tiny_graph()
        spec = registry.get("mars__tiny")
        first = registry.load(spec, tiny, cluster)
        registry.load(spec, chain_graph("evictor"), cluster)
        assert registry.load(spec, tiny, cluster) is not first  # rebuilt


class TestHotReload:
    def test_new_checkpoint_appears(self, serve_setup, tmp_path):
        ckpt_dir, _, _ = serve_setup
        for ext in (".json", ".npz"):
            shutil.copy(
                os.path.join(ckpt_dir, "mars__tiny" + ext),
                str(tmp_path / ("mars__tiny" + ext)),
            )
        registry = PolicyRegistry(str(tmp_path))
        assert len(registry) == 1
        for ext in (".json", ".npz"):
            shutil.copy(
                os.path.join(ckpt_dir, "mars__chain" + ext),
                str(tmp_path / ("mars__chain" + ext)),
            )
        assert registry.refresh() == 2
        assert registry.get("mars__chain") is not None

    def test_removed_checkpoint_disappears(self, serve_setup, tmp_path):
        ckpt_dir, _, _ = serve_setup
        for stem in ("mars__tiny", "mars__chain"):
            for ext in (".json", ".npz"):
                shutil.copy(
                    os.path.join(ckpt_dir, stem + ext), str(tmp_path / (stem + ext))
                )
        registry = PolicyRegistry(str(tmp_path))
        os.remove(tmp_path / "mars__chain.json")
        assert registry.refresh() == 1
        assert registry.get("mars__chain") is None

    def test_mtime_change_invalidates_loaded_agent(self, serve_setup, tmp_path):
        ckpt_dir, cluster, _ = serve_setup
        for ext in (".json", ".npz"):
            shutil.copy(
                os.path.join(ckpt_dir, "mars__tiny" + ext),
                str(tmp_path / ("mars__tiny" + ext)),
            )
        registry = PolicyRegistry(str(tmp_path))
        graph = tiny_graph()
        spec = registry.get("mars__tiny")
        first = registry.load(spec, graph, cluster)
        # Simulate a retrain saved over the same stem.
        sidecar = tmp_path / "mars__tiny.json"
        meta = json.loads(sidecar.read_text())
        sidecar.write_text(json.dumps(meta))
        os.utime(sidecar, (os.path.getmtime(sidecar) + 5, os.path.getmtime(sidecar) + 5))
        registry.refresh()
        fresh_spec = registry.get("mars__tiny")
        assert registry.load(fresh_spec, graph, cluster) is not first
