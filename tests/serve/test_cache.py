"""Tests for the fingerprint result cache (LRU + TTL)."""

from repro.serve import FingerprintCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestFingerprintCache:
    def test_miss_then_hit(self):
        cache = FingerprintCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert 0 < stats.hit_rate < 1

    def test_lru_eviction_order(self):
        cache = FingerprintCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b is now least-recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = FingerprintCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(9.9)
        assert cache.get("k") == 1
        clock.advance(0.2)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = FingerprintCache(capacity=4, ttl=None, clock=clock)
        cache.put("k", 1)
        clock.advance(1e9)
        assert cache.get("k") == 1

    def test_put_overwrites_and_refreshes(self):
        clock = FakeClock()
        cache = FingerprintCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("k", 1)
        clock.advance(8.0)
        cache.put("k", 2)  # rewrite restarts the TTL
        clock.advance(8.0)
        assert cache.get("k") == 2

    def test_clear_returns_count(self):
        cache = FingerprintCache(capacity=8)
        for i in range(3):
            cache.put(str(i), i)
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.get("0") is None

    def test_unbounded_capacity(self):
        cache = FingerprintCache(capacity=0)
        for i in range(100):
            cache.put(str(i), i)
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_stats_to_dict(self):
        cache = FingerprintCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        doc = cache.stats.to_dict()
        assert doc["hits"] == 1 and doc["misses"] == 1
        assert set(doc) >= {"hits", "misses", "evictions", "expirations", "hit_rate"}
