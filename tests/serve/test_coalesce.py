"""Tests for single-flight request coalescing (``repro.serve.coalesce``).

Covers the :class:`SingleFlight` table in isolation, its integration in
:meth:`PlacementService.handle` (one computation per thundering herd,
``cache="coalesced"`` responses, telemetry), the TTL-expiry interaction
(an expired entry's recompute coalesces to one flight and the cache
counts one miss per herd), and registry cache warming.

Herd tests gate the service's ``_compute`` on an event so followers
deterministically arrive while the leader is in flight — the follower
join count is polled via ``SingleFlight.stats`` before release.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.graph import graph_to_dict
from repro.serve import (
    BadRequest,
    FingerprintCache,
    PlacementRequest,
    PlacementService,
    PolicyRegistry,
    ServeConfig,
    SingleFlight,
)
from repro.telemetry import Telemetry
from tests.helpers import tiny_graph

HERD = 6  # leader + 5 followers


# ----------------------------------------------------------------------
# The table in isolation
# ----------------------------------------------------------------------
class TestSingleFlight:
    def test_leader_then_follower(self):
        table = SingleFlight()
        flight, leader = table.begin("k")
        assert leader and len(table) == 1
        same, leader2 = table.begin("k")
        assert not leader2 and same is flight
        assert table.finish(flight, result=42) == 1
        assert same.wait(timeout=1.0) == 42
        assert len(table) == 0
        assert table.stats.flights == 1 and table.stats.coalesced == 1

    def test_keys_are_independent(self):
        table = SingleFlight()
        _, leader_a = table.begin("a")
        _, leader_b = table.begin("b")
        assert leader_a and leader_b
        assert len(table) == 2

    def test_finish_retires_key(self):
        table = SingleFlight()
        flight, _ = table.begin("k")
        table.finish(flight, result=1)
        fresh, leader = table.begin("k")
        assert leader and fresh is not flight  # spent flights never rejoin
        table.finish(fresh, result=2)
        assert table.stats.flights == 2

    def test_exception_propagates_to_followers(self):
        table = SingleFlight()
        flight, _ = table.begin("k")
        follower, leader = table.begin("k")
        assert not leader
        table.finish(flight, exception=ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            follower.wait(timeout=1.0)
        assert table.stats.failures == 1
        # The failure never poisons the next flight for the same key.
        fresh, leader = table.begin("k")
        assert leader
        table.finish(fresh, result="ok")
        assert fresh.wait(timeout=1.0) == "ok"

    def test_concurrent_joins_against_held_flight(self):
        table = SingleFlight()
        held, _ = table.begin("k")  # the leader is in flight throughout
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(9)

        def contend():
            barrier.wait(timeout=5.0)
            flight, leader = table.begin("k")
            with lock:
                outcomes.append((flight, leader))
            assert flight.wait(timeout=10.0) == "done"

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        barrier.wait(timeout=5.0)  # all contenders race begin() together
        deadline = time.perf_counter() + 10.0
        while table.stats.coalesced < 8:
            assert time.perf_counter() < deadline
            time.sleep(0.005)
        assert table.finish(held, result="done") == 8
        for t in threads:
            t.join(timeout=10.0)
        assert all(not leader for _, leader in outcomes)
        assert all(flight is held for flight, _ in outcomes)
        assert table.stats.flights == 1 and table.stats.coalesced == 8

    def test_stats_to_dict(self):
        table = SingleFlight()
        flight, _ = table.begin("k")
        table.begin("k")
        table.finish(flight, result=None)
        assert table.stats.to_dict() == {"flights": 1, "coalesced": 1, "failures": 0}


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
def make_service(ckpt_dir: str, **cfg) -> PlacementService:
    return PlacementService(
        PolicyRegistry(ckpt_dir),
        config=ServeConfig(**cfg),
        telemetry=Telemetry(),  # in-memory metrics, null events
    )


def gate_compute(service: PlacementService):
    """Wrap ``service._compute`` so the first entrant blocks on a release
    event; returns (entered, release, calls)."""
    entered, release, calls = threading.Event(), threading.Event(), []
    original = service._compute

    def gated(*args, **kwargs):
        calls.append(threading.get_ident())
        entered.set()
        assert release.wait(timeout=30.0), "test gate never opened"
        return original(*args, **kwargs)

    service._compute = gated
    return entered, release, calls


def run_herd(service: PlacementService, n: int, **request_overrides):
    """Fire ``n`` identical requests: one leader gated inside _compute,
    ``n - 1`` followers verified to have joined the flight before the
    gate opens. Returns (responses, errors)."""
    entered, release, calls = gate_compute(service)
    responses, errors = [], []
    lock = threading.Lock()

    def fire():
        request = PlacementRequest(
            graph=graph_to_dict(tiny_graph()), **request_overrides
        )
        try:
            response = service.handle(request)
        except Exception as exc:  # noqa: BLE001 - recorded for assertions
            with lock:
                errors.append(exc)
            return
        with lock:
            responses.append(response)

    leader = threading.Thread(target=fire)
    leader.start()
    assert entered.wait(timeout=30.0)
    joined_before = service._flights.stats.coalesced
    followers = [threading.Thread(target=fire) for _ in range(n - 1)]
    for t in followers:
        t.start()
    deadline = time.perf_counter() + 30.0
    while service._flights.stats.coalesced - joined_before < n - 1:
        assert time.perf_counter() < deadline, "followers never joined the flight"
        time.sleep(0.005)
    release.set()
    leader.join(timeout=30.0)
    for t in followers:
        t.join(timeout=30.0)
    return responses, errors, calls


class TestServiceCoalescing:
    def test_thundering_herd_computes_once(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            responses, errors, calls = run_herd(service, HERD)
            assert not errors
            assert len(calls) == 1  # the whole herd cost one computation
            assert len(responses) == HERD
            states = sorted(r.cache for r in responses)
            assert states == ["coalesced"] * (HERD - 1) + ["miss"]
            placements = {tuple(sorted(r.placement.items())) for r in responses}
            assert len(placements) == 1  # every waiter got the same answer
            ids = {r.request_id for r in responses}
            assert len(ids) == HERD  # but kept its own identity
            assert all(r.latency_ms > 0 for r in responses)
        finally:
            service.close()

    def test_coalesced_telemetry(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            run_herd(service, HERD)
            snapshot = service._tel().metrics.snapshot()
            assert snapshot["counters"]["serve.coalesced"]["value"] == HERD - 1
            hist = snapshot["histograms"]["serve.coalesce_wait_s"]
            assert hist["count"] == HERD - 1
            assert "serve.cache_hits" not in snapshot["counters"]
        finally:
            service.close()

    def test_after_flight_resolves_requests_hit_cache(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            run_herd(service, 3)
            late = service.handle(PlacementRequest(graph=graph_to_dict(tiny_graph())))
            assert late.cache == "hit"  # spent flights never rejoin
            assert len(service._flights) == 0
        finally:
            service.close()

    def test_use_cache_false_bypasses_coalescing(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            entered, release, calls = gate_compute(service)
            release.set()  # no gating needed, just counting
            for _ in range(3):
                response = service.handle(
                    PlacementRequest(graph=graph_to_dict(tiny_graph()), use_cache=False)
                )
                assert response.cache == "miss"
            assert len(calls) == 3  # every request computed on its own
            assert service._flights.stats.flights == 0
        finally:
            service.close()

    def test_config_disables_coalescing(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir, coalesce=False)
        try:
            service.handle(PlacementRequest(graph=graph_to_dict(tiny_graph())))
            assert service._flights.stats.flights == 0
        finally:
            service.close()

    def test_leader_error_propagates_to_followers(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            entered, release, calls = gate_compute(service)
            original = service._compute

            def failing(*args, **kwargs):
                calls.append(threading.get_ident())
                entered.set()
                assert release.wait(timeout=30.0)
                raise BadRequest("synthetic leader failure")

            service._compute = failing
            errors = []
            lock = threading.Lock()

            def fire():
                try:
                    service.handle(
                        PlacementRequest(graph=graph_to_dict(tiny_graph()))
                    )
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(3)]
            threads[0].start()
            assert entered.wait(timeout=30.0)
            for t in threads[1:]:
                t.start()
            deadline = time.perf_counter() + 30.0
            while service._flights.stats.coalesced < 2:
                assert time.perf_counter() < deadline
                time.sleep(0.005)
            release.set()
            for t in threads:
                t.join(timeout=30.0)
            assert len(errors) == 3
            assert all(isinstance(e, BadRequest) for e in errors)
            # The failed flight is retired; a fresh request starts a new one.
            service._compute = original
            response = service.handle(
                PlacementRequest(graph=graph_to_dict(tiny_graph()))
            )
            assert response.cache == "miss"
        finally:
            service.close()


# ----------------------------------------------------------------------
# TTL expiry x coalescing (injectable clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTTLCoalescing:
    def test_expired_entry_recompute_coalesces_to_one_flight(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        clock = FakeClock()
        service.cache = FingerprintCache(capacity=8, ttl=10.0, clock=clock)
        try:
            first = service.handle(PlacementRequest(graph=graph_to_dict(tiny_graph())))
            assert first.cache == "miss"
            assert service.cache.stats.misses == 1

            clock.advance(10.5)  # past TTL: the hot entry is now stale
            responses, errors, calls = run_herd(service, HERD)
            assert not errors
            # The herd recomputed exactly once...
            assert len(calls) == 1
            assert sorted(r.cache for r in responses) == (
                ["coalesced"] * (HERD - 1) + ["miss"]
            )
            # ...and the cache saw exactly one miss for the whole herd:
            # only the leader consults it, followers await the flight.
            assert service.cache.stats.misses == 2
            assert service.cache.stats.expirations == 1

            # The recompute refreshed the entry: the next request hits.
            assert (
                service.handle(
                    PlacementRequest(graph=graph_to_dict(tiny_graph()))
                ).cache
                == "hit"
            )
        finally:
            service.close()


# ----------------------------------------------------------------------
# Cache warming from the registry
# ----------------------------------------------------------------------
class TestWarm:
    def test_warm_replays_registered_workloads(self, serve_setup, monkeypatch):
        from repro.workloads import WORKLOADS

        ckpt_dir, _, _ = serve_setup
        # The conftest checkpoints are trained on the test-local "tiny"
        # graph; registering its builder makes that sidecar replayable.
        monkeypatch.setitem(WORKLOADS, "tiny", tiny_graph)
        service = make_service(ckpt_dir)
        try:
            warmed = service.warm()
            assert warmed == 1  # "tiny" replayed; "chain" is unknown -> skipped
            assert len(service.cache) == 1
            counters = service._tel().metrics.snapshot()["counters"]
            assert counters["serve.warmed"]["value"] == 1
            # The warmed entry serves the matching live request as a hit.
            response = service.handle(
                PlacementRequest(graph=graph_to_dict(tiny_graph()))
            )
            assert response.cache == "hit"
            assert response.policy_id == "mars__tiny"
        finally:
            service.close()

    def test_warm_skips_unknown_workloads(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            assert service.warm() == 0  # neither "tiny" nor "chain" registered
            assert len(service.cache) == 0
        finally:
            service.close()

    def test_warm_request_parses_suffixed_names(self, serve_setup):
        ckpt_dir, _, _ = serve_setup
        service = make_service(ckpt_dir)
        try:
            spec = service.registry.get("mars__tiny")
            suffixed = type(spec)(
                **{
                    **spec.__dict__,
                    "workload": "vgg16_b4_s0.25",
                    "meta": {},
                }
            )
            request = service._warm_request(suffixed, budget=2)
            assert request is not None
            assert request.workload == "vgg16"
            assert request.workload_kwargs == {"batch_size": 4, "scale": 0.25}
            assert request.policy_id == spec.policy_id
            assert request.budget == 2
            assert service._warm_request(
                type(spec)(**{**spec.__dict__, "workload": "nope_b4", "meta": {}}),
                budget=0,
            ) is None
        finally:
            service.close()
