"""Tests for the placement analysis tools."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_placement,
    build_timeline,
    critical_path,
    critical_path_ops,
    curves_to_csv,
    history_to_rows,
    render_timeline,
)
from repro.rl.trainer import SearchHistory, SearchRecord
from repro.sim import ClusterSpec, Placement, Scheduler
from tests.helpers import tiny_graph


@pytest.fixture
def placed():
    g = tiny_graph()
    c = ClusterSpec.default()
    return g, c, Placement([4, 0, 1, 0, 1, 4], g, c)


class TestReport:
    def test_report_fields(self, placed):
        g, c, p = placed
        report = analyze_placement(p)
        assert report.makespan > 0
        assert report.cut_edges == p.num_cut_edges()
        assert report.fits_memory
        assert sum(report.device_op_counts.values()) == g.num_nodes

    def test_busy_matches_scheduler(self, placed):
        g, c, p = placed
        report = analyze_placement(p)
        sched = Scheduler().run_step(p)
        assert report.device_busy["gpu:0"] == pytest.approx(sched.device_busy[0])

    def test_utilization_bounded(self, placed):
        _, _, p = placed
        report = analyze_placement(p)
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in report.device_utilization.values())

    def test_summary_text(self, placed):
        _, _, p = placed
        text = analyze_placement(p).summary()
        assert "cut edges" in text and "gpu:0" in text

    def test_oom_warning_in_summary(self):
        g = tiny_graph()
        g.nodes[1].param_bytes = 50 * 2**30
        c = ClusterSpec.default()
        text = analyze_placement(Placement([0] * 6, g, c)).summary()
        assert "OOM" in text


class TestTimeline:
    def test_intervals_cover_all_ops(self, placed):
        g, _, p = placed
        timelines = build_timeline(p)
        total_ops = sum(len(tl.intervals) for tl in timelines)
        assert total_ops == g.num_nodes

    def test_intervals_non_overlapping_per_device(self, placed):
        _, _, p = placed
        for tl in build_timeline(p):
            for (a, b) in zip(tl.intervals, tl.intervals[1:]):
                assert a[2] <= b[1] + 1e-12  # previous end <= next start

    def test_render_contains_device_names(self, placed):
        _, _, p = placed
        text = render_timeline(build_timeline(p))
        assert "gpu:0" in text and "#" in text

    def test_render_empty(self):
        from repro.analysis.timeline import DeviceTimeline

        assert "empty" in render_timeline([DeviceTimeline("gpu:0", [])])


class TestCriticalPath:
    def test_lower_bound_without_placement(self, placed):
        g, c, p = placed
        unplaced, _ = critical_path(g, c)
        placed_len, _ = critical_path(g, c, p)
        assert unplaced <= placed_len + 1e-12

    def test_path_is_connected_chain(self, placed):
        g, c, p = placed
        path = critical_path_ops(g, c, p)
        assert path[0] in [i for i in range(g.num_nodes) if not g.predecessors(i)]
        for u, v in zip(path, path[1:]):
            assert u in g.predecessors(v)

    def test_single_device_critical_path_leq_makespan(self, placed):
        g, c, _ = placed
        p = Placement([0] * 6, g, c)
        cp, _ = critical_path(g, c, p)
        makespan = Scheduler().run_step(p).makespan
        assert cp <= makespan + 1e-12


class TestExport:
    def _history(self):
        h = SearchHistory()
        h.records.append(SearchRecord(0, 10, [1.0], [1.0], 0, 0, 1.0, -1.0, 100.0))
        h.records.append(SearchRecord(1, 20, [0.5], [0.5], 1, 0, 0.5, -0.9, 200.0))
        return h

    def test_history_rows(self):
        rows = history_to_rows(self._history())
        assert len(rows) == 2
        assert rows[1]["best_runtime"] == 0.5
        assert rows[1]["sim_clock_hours"] == pytest.approx(200 / 3600)

    def test_curves_csv(self, tmp_path):
        path = str(tmp_path / "curves.csv")
        text = curves_to_csv({"mars": ([10, 20], [0.5, 0.4])}, path)
        assert "mars,10,0.5" in text
        assert open(path).read() == text
