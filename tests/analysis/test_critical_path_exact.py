"""Exact-value critical-path tests on hand-constructed graphs."""

import numpy as np
import pytest

from repro.analysis import critical_path, critical_path_ops
from repro.graph import CompGraph, OpNode
from repro.sim import ClusterSpec, CostModel, Placement


@pytest.fixture
def cluster():
    return ClusterSpec.default()


def chain(n, flops):
    g = CompGraph("chain")
    prev = None
    for i in range(n):
        g.add_node(OpNode(f"op{i}", "Conv2D", (8, 8), flops=flops),
                   inputs=[prev] if prev else [])
        prev = f"op{i}"
    return g


class TestExactValues:
    def test_chain_lower_bound_is_sum_of_best_times(self, cluster):
        g = chain(4, 1e10)
        cm = CostModel()
        best = cm.op_time_matrix(g, cluster).min(axis=1)
        total, _ = critical_path(g, cluster, cost_model=cm)
        assert total == pytest.approx(best.sum())

    def test_diamond_takes_heavier_branch(self, cluster):
        g = CompGraph("diamond")
        g.add_node(OpNode("src", "Conv2D", (1,), flops=1e9))
        g.add_node(OpNode("light", "Conv2D", (1,), flops=1e8), inputs=["src"])
        g.add_node(OpNode("heavy", "Conv2D", (1,), flops=1e11), inputs=["src"])
        g.add_node(OpNode("sink", "Concat", (2,)), inputs=["light", "heavy"])
        path = critical_path_ops(g, cluster)
        names = [g.nodes[i].name for i in path]
        assert names == ["src", "heavy", "sink"]

    def test_placement_transfer_added_exactly(self, cluster):
        g = chain(2, 1e10)
        cm = CostModel()
        same = Placement([0, 0], g, cluster)
        split = Placement([0, 1], g, cluster)
        t_same, _ = critical_path(g, cluster, same, cm)
        t_split, _ = critical_path(g, cluster, split, cm)
        transfer = cm.transfer_time(g.nodes[0].output_bytes, cluster, 0, 1)
        assert t_split - t_same == pytest.approx(transfer)

    def test_per_op_longest_monotone_along_chain(self, cluster):
        g = chain(5, 1e9)
        _, longest = critical_path(g, cluster)
        assert np.all(np.diff(longest) > 0)

    def test_empty_graph(self, cluster):
        total, longest = critical_path(CompGraph("empty"), cluster)
        assert total == 0.0 and longest.size == 0
