"""Integration tests: optimize_placement and the generalization pipeline."""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import optimize_placement, transfer_agent
from repro.core.generalize import generalization_run
from repro.core.search import AGENT_BUILDERS, build_agent
from repro.graph import FeatureExtractor
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16, build_transformer


@pytest.fixture(scope="module")
def quick_cfg():
    return fast_profile(seed=0, iterations=3)


@pytest.fixture(scope="module")
def graph():
    return build_vgg16(scale=0.25, batch_size=4)


class TestOptimizePlacement:
    def test_returns_complete_result(self, graph, quick_cfg):
        res = optimize_placement(graph, ClusterSpec.default(), "mars", quick_cfg)
        assert res.workload == graph.name
        assert res.agent_kind == "mars"
        assert np.isfinite(res.final_runtime)
        assert res.history.best_placement is not None
        assert res.training_hours > 0

    @pytest.mark.parametrize(
        "kind", ["mars_no_pretrain", "grouper_placer", "encoder_placer", "study:mlp"]
    )
    def test_all_agent_kinds_run(self, graph, quick_cfg, kind):
        res = optimize_placement(graph, ClusterSpec.default(), kind, quick_cfg)
        assert np.isfinite(res.final_runtime)

    def test_unknown_agent_kind(self, graph, quick_cfg):
        with pytest.raises(KeyError, match="unknown agent kind"):
            optimize_placement(graph, ClusterSpec.default(), "alphaplace", quick_cfg)

    def test_registry_contains_expected_kinds(self):
        assert {"mars", "mars_no_pretrain", "grouper_placer", "encoder_placer"} <= set(
            AGENT_BUILDERS
        )

    def test_mars_pretrain_clock_counted(self, graph, quick_cfg):
        res = optimize_placement(graph, ClusterSpec.default(), "mars", quick_cfg)
        assert res.history.pretrain_clock > 0
        res2 = optimize_placement(graph, ClusterSpec.default(), "mars_no_pretrain", quick_cfg)
        assert res2.history.pretrain_clock == 0.0

    def test_reproducible_given_seed(self, graph):
        cfg = fast_profile(seed=5, iterations=2)
        a = optimize_placement(graph, ClusterSpec.default(), "mars_no_pretrain", cfg)
        b = optimize_placement(graph, ClusterSpec.default(), "mars_no_pretrain", cfg)
        assert a.history.best_runtime == b.history.best_runtime
        assert np.array_equal(a.history.best_placement, b.history.best_placement)


class TestTransfer:
    def test_transfer_agent_copies_weights(self, graph, quick_cfg):
        cluster = ClusterSpec.default()
        fx = FeatureExtractor()
        source, _ = build_agent("mars_no_pretrain", graph, cluster, quick_cfg, fx)
        target_graph = build_transformer(scale=0.3, batch_size=4)
        target = transfer_agent(source, target_graph, cluster, quick_cfg, feature_extractor=fx)
        src_state = source.state_dict()
        dst_state = target.state_dict()
        assert set(src_state) == set(dst_state)
        for k in src_state:
            assert np.array_equal(src_state[k], dst_state[k])

    def test_generalization_run_end_to_end(self, quick_cfg):
        train = build_vgg16(scale=0.25, batch_size=4)
        test = build_transformer(scale=0.3, batch_size=4)
        gen = generalization_run(
            train,
            test,
            cluster=ClusterSpec.default(),
            config=quick_cfg,
            finetune_samples=20,
            train_patience=30,
        )
        assert gen.train_workload == train.name
        assert gen.test_workload == test.name
        assert np.isfinite(gen.final_runtime)
        assert gen.finetune_history.total_samples == 20
