"""Tests for agent checkpointing."""

import numpy as np
import pytest

from repro.config import fast_profile, with_seed
from repro.core import build_mars_agent, greedy_placement, load_agent, save_agent
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def setting():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)
    agent = build_mars_agent(graph, cluster, cfg)
    return graph, cluster, cfg, agent


class TestCheckpoint:
    def test_roundtrip_same_policy(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", workload=graph.name)
        restored, meta = load_agent(path, graph, cluster, with_seed(cfg, 77))
        assert meta["workload"] == graph.name
        a = agent.sample(2, np.random.default_rng(3))
        b = restored.sample(2, np.random.default_rng(3))
        assert np.array_equal(a.placements, b.placements)

    def test_metadata_sidecar(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars")
        import json

        meta = json.load(open(path + ".json"))
        assert meta["num_ops"] == graph.num_nodes
        assert meta["num_parameters"] == agent.num_parameters()

    def test_device_count_mismatch_rejected(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars")
        small = ClusterSpec.default(num_gpus=2)
        with pytest.raises(ValueError, match="devices"):
            load_agent(path, graph, small, cfg)

    def test_greedy_placement_deterministic(self, setting):
        graph, cluster, cfg, agent = setting
        env = PlacementEnv(graph, cluster)
        a = greedy_placement(agent, env)
        b = greedy_placement(agent, env)
        assert np.array_equal(a, b)
        assert a.shape == (graph.num_nodes,)
