"""Tests for agent checkpointing."""

import json
import os

import numpy as np
import pytest

from repro.config import fast_profile, with_seed
from repro.core import build_mars_agent, greedy_placement, load_agent, save_agent
from repro.core.search import AGENT_BUILDERS, build_agent
from repro.graph import FeatureExtractor
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16
from tests.helpers import tiny_graph


@pytest.fixture(scope="module")
def setting():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)
    agent = build_mars_agent(graph, cluster, cfg)
    return graph, cluster, cfg, agent


class TestCheckpoint:
    def test_roundtrip_same_policy(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", workload=graph.name)
        restored, meta = load_agent(path, graph, cluster, with_seed(cfg, 77))
        assert meta["workload"] == graph.name
        a = agent.sample(2, np.random.default_rng(3))
        b = restored.sample(2, np.random.default_rng(3))
        assert np.array_equal(a.placements, b.placements)

    def test_metadata_sidecar(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars")
        import json

        meta = json.load(open(path + ".json"))
        assert meta["num_ops"] == graph.num_nodes
        assert meta["num_parameters"] == agent.num_parameters()

    def test_device_count_mismatch_rejected(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars")
        small = ClusterSpec.default(num_gpus=2)
        with pytest.raises(ValueError, match="devices"):
            load_agent(path, graph, small, cfg)

    def test_greedy_placement_deterministic(self, setting):
        graph, cluster, cfg, agent = setting
        env = PlacementEnv(graph, cluster)
        a = greedy_placement(agent, env)
        b = greedy_placement(agent, env)
        assert np.array_equal(a, b)
        assert a.shape == (graph.num_nodes,)

    def test_save_is_atomic_no_temp_left_behind(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", config=cfg)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "agent.json",
            "agent.npz",
        ]

    def test_sidecar_records_feature_dim_and_echo(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", workload=graph.name, config=cfg)
        meta = json.load(open(path + ".json"))
        assert meta["feature_dim"] == FeatureExtractor().dim
        echo = meta["config"]
        assert echo["seed"] == cfg.seed
        assert echo["encoder"]["hidden_dim"] == cfg.encoder.hidden_dim
        assert echo["placer"]["hidden_size"] == cfg.placer.hidden_size

    def test_load_without_config_uses_echo(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", config=cfg)
        restored, _ = load_agent(path, graph, cluster)  # config=None
        a = agent.sample(1, np.random.default_rng(0), greedy=True)
        b = restored.sample(1, np.random.default_rng(0), greedy=True)
        assert np.array_equal(a.placements, b.placements)

    def test_load_without_config_or_echo_is_a_clear_error(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars")  # no config echo
        with pytest.raises(ValueError, match="config echo"):
            load_agent(path, graph, cluster)

    def test_feature_dim_mismatch_is_a_clear_error(self, setting, tmp_path):
        graph, cluster, cfg, agent = setting
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", config=cfg)
        meta = json.load(open(path + ".json"))
        meta["feature_dim"] += 7
        json.dump(meta, open(path + ".json", "w"))
        with pytest.raises(ValueError, match="feature"):
            load_agent(path, graph, cluster, cfg)


class TestRoundTripAllKinds:
    """Every registered agent kind must survive save -> load -> place."""

    @pytest.fixture(scope="class")
    def setting(self):
        graph = tiny_graph()
        cluster = ClusterSpec.default()
        cfg = fast_profile(seed=1)
        return graph, cluster, cfg

    @pytest.mark.parametrize("kind", sorted(AGENT_BUILDERS))
    def test_roundtrip_identical_greedy_placement(self, setting, tmp_path, kind):
        graph, cluster, cfg = setting
        agent, _ = build_agent(kind, graph, cluster, cfg, None)
        path = str(tmp_path / "agent")
        save_agent(path, agent, kind, workload=graph.name, config=cfg)
        restored, meta = load_agent(path, graph, cluster)
        assert meta["agent_kind"] == kind
        env = PlacementEnv(graph, cluster)
        assert np.array_equal(
            greedy_placement(agent, env), greedy_placement(restored, env)
        )

    def test_transfer_load_onto_other_graph(self, setting, tmp_path):
        graph, cluster, cfg = setting
        agent, _ = build_agent("mars_no_pretrain", graph, cluster, cfg, None)
        path = str(tmp_path / "agent")
        save_agent(path, agent, "mars", workload=graph.name, config=cfg)
        other = build_vgg16(scale=0.25, batch_size=4)
        restored, _ = load_agent(path, other, cluster)
        env = PlacementEnv(other, cluster)
        placement = greedy_placement(restored, env)
        assert placement.shape == (other.num_nodes,)
        assert placement.max() < cluster.num_devices
