"""Tests for the frozen-encoder mode used by the Table 1 placer study."""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core.search import build_agent
from repro.graph import FeatureExtractor
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def study_agent():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)
    cfg.pretrain.iterations = 5
    agent, _ = build_agent("study:segment_seq2seq", graph, cluster, cfg, FeatureExtractor())
    return agent


class TestFrozenEncoder:
    def test_parameters_exclude_encoder(self, study_agent):
        assert study_agent.freeze_encoder
        placer_count = len(study_agent.placer.parameters())
        assert len(study_agent.parameters()) == placer_count

    def test_state_dict_still_full(self, study_agent):
        """Checkpointing must include the (frozen) encoder weights."""
        names = set(study_agent.state_dict())
        assert any(name.startswith("encoder.") for name in names)
        assert any(name.startswith("placer.") for name in names)

    def test_representations_detached(self, study_agent):
        reps = study_agent.node_representations()
        assert not reps.requires_grad

    def test_encoder_untouched_by_update(self, study_agent):
        from repro.rl.ppo import PPOConfig, PPOUpdater

        before = {
            k: v.copy()
            for k, v in study_agent.state_dict().items()
            if k.startswith("encoder.")
        }
        rollout = study_agent.sample(4, np.random.default_rng(0))
        updater = PPOUpdater(study_agent, PPOConfig(learning_rate=0.1), seed=0)
        updater.update(rollout, np.linspace(-1, 1, 4))
        after = study_agent.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_placer_moves(self, study_agent):
        before = {
            k: v.copy()
            for k, v in study_agent.state_dict().items()
            if k.startswith("placer.")
        }
        from repro.rl.ppo import PPOConfig, PPOUpdater

        rollout = study_agent.sample(4, np.random.default_rng(1))
        updater = PPOUpdater(study_agent, PPOConfig(learning_rate=0.1), seed=0)
        updater.update(rollout, np.linspace(-1, 1, 4))
        after = study_agent.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)
