"""Tests for static placement baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    balanced_chain_placement,
    gpu_only_placement,
    human_expert_placement,
    partitioner_placement,
    round_robin_groups_placement,
)
from repro.sim import ClusterSpec, MemoryModel, PlacementEnv
from repro.workloads import build_bert, build_gnmt, build_inception_v3


@pytest.fixture(scope="module")
def cluster():
    return ClusterSpec.default()


@pytest.fixture(scope="module")
def inception():
    return build_inception_v3(scale=0.34)


@pytest.fixture(scope="module")
def gnmt():
    return build_gnmt(scale=0.3)


class TestGpuOnly:
    def test_everything_on_first_gpu(self, inception, cluster):
        p = gpu_only_placement(inception, cluster)
        non_cpu = [i for i, n in enumerate(inception.nodes) if not n.cpu_only]
        assert all(p.device_of(i) == 0 for i in non_cpu)

    def test_cpu_only_stays_on_cpu(self, inception, cluster):
        p = gpu_only_placement(inception, cluster)
        cpu_ops = [i for i, n in enumerate(inception.nodes) if n.cpu_only]
        assert cpu_ops and all(p.device_of(i) == cluster.cpu_index for i in cpu_ops)

    def test_ooms_for_bert(self, cluster):
        """Table 2: GPU-Only is OOM for BERT."""
        bert = build_bert()
        report = MemoryModel().check(gpu_only_placement(bert, cluster))
        assert not report.fits


class TestHumanExpert:
    def test_vision_model_single_gpu(self, inception, cluster):
        p = human_expert_placement(inception, cluster)
        assert p == gpu_only_placement(inception, cluster)

    def test_gnmt_round_robin_layers(self, gnmt, cluster):
        p = human_expert_placement(gnmt, cluster)
        l0 = gnmt.index_of("enc/l0/cell_t0")
        l1 = gnmt.index_of("enc/l1/cell_t0")
        l2 = gnmt.index_of("enc/l2/cell_t0")
        assert p.device_of(l0) == 0
        assert p.device_of(l1) == 1
        assert p.device_of(l2) == 2

    def test_gnmt_softmax_on_last_gpu(self, gnmt, cluster):
        p = human_expert_placement(gnmt, cluster)
        assert p.device_of(gnmt.index_of("proj/logits_t0")) == cluster.gpu_indices[-1]

    def test_gnmt_spread_beats_single_gpu(self, gnmt, cluster):
        env = PlacementEnv(gnmt, cluster)
        expert = env.makespan(human_expert_placement(gnmt, cluster))
        single = env.makespan(gpu_only_placement(gnmt, cluster))
        assert expert < single

    def test_bert_expert_is_single_gpu(self, cluster):
        bert = build_bert(scale=0.3)
        p = human_expert_placement(bert, cluster)
        assert p == gpu_only_placement(bert, cluster)


class TestChainAndPartitioner:
    def test_balanced_chain_uses_k_devices(self, inception, cluster):
        p = balanced_chain_placement(inception, cluster, k=4)
        used = {p.device_of(i) for i in range(inception.num_nodes)}
        assert len(used & set(cluster.gpu_indices)) == 4

    def test_balanced_chain_balances_compute(self, gnmt, cluster):
        from repro.sim import CostModel

        p = balanced_chain_placement(gnmt, cluster, k=4)
        times = CostModel().op_time_matrix(gnmt, cluster)
        loads = np.zeros(cluster.num_devices)
        for i in range(gnmt.num_nodes):
            loads[p.device_of(i)] += times[i, p.device_of(i)]
        gpu_loads = loads[cluster.gpu_indices]
        assert gpu_loads.max() < 2.5 * max(gpu_loads.mean(), 1e-9)

    def test_partitioner_reduces_cut_vs_scatter(self, inception, cluster):
        part = partitioner_placement(inception, cluster, k=4)
        scatter = round_robin_groups_placement(inception, cluster, 40)
        assert part.num_cut_edges() < scatter.num_cut_edges()

    def test_partitioner_deterministic_given_seed(self, inception, cluster):
        a = partitioner_placement(inception, cluster, seed=3)
        b = partitioner_placement(inception, cluster, seed=3)
        assert a == b

    def test_round_robin_scatters(self, inception, cluster):
        p = round_robin_groups_placement(inception, cluster, 12)
        used = {p.device_of(i) for i in range(inception.num_nodes)}
        assert len(used & set(cluster.gpu_indices)) == 4

    def test_balanced_chain_empty_graph(self, cluster):
        from repro.graph import CompGraph

        p = balanced_chain_placement(CompGraph("empty"), cluster)
        assert p.devices.shape == (0,)

    def test_balanced_chain_k1_single_gpu(self, inception, cluster):
        p = balanced_chain_placement(inception, cluster, k=1)
        non_cpu = [i for i, n in enumerate(inception.nodes) if not n.cpu_only]
        first_gpu = cluster.gpu_indices[0]
        assert non_cpu and all(p.device_of(i) == first_gpu for i in non_cpu)

    def test_balanced_chain_single_node_graph(self, cluster):
        from repro.graph import CompGraph, OpNode

        g = CompGraph("one")
        g.add_node(OpNode("only", "MatMul", (4, 4), flops=1e6))
        p = balanced_chain_placement(g, cluster, k=4)
        assert p.device_of(0) in cluster.gpu_indices
