"""Tests for the encoder-placer policy agents."""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import (
    build_encoder_placer_agent,
    build_mars_agent,
    build_placer_study_agent,
)
from repro.core.agents import _IdentityEncoder, EncoderPlacerPolicy
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def setting():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)
    return graph, cluster, cfg


class TestMarsAgent:
    def test_sample_contract(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        rollout = agent.sample(5, np.random.default_rng(0))
        assert rollout.placements.shape == (5, graph.num_nodes)
        assert rollout.old_logp.shape == (5, graph.num_nodes)
        assert rollout.placements.max() < cluster.num_devices

    def test_evaluate_matches_sampling_logp(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        rollout = agent.sample(3, np.random.default_rng(1))
        logp, entropy = agent.evaluate(rollout.internal)
        assert np.allclose(logp.data, rollout.old_logp, atol=1e-10)
        assert logp.requires_grad and entropy.requires_grad

    def test_sampling_is_gradient_free(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        rollout = agent.sample(2, np.random.default_rng(2))
        assert all(p.grad is None for p in agent.parameters())

    def test_pretrain_returns_positive_clock(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        cfg.pretrain.iterations = 10
        clock = agent.pretrain(cfg.pretrain, seed=0)
        assert clock > 0
        assert agent.pretrain_result is not None

    def test_pretrain_disabled(self, setting):
        graph, cluster, cfg = setting
        from dataclasses import replace

        agent = build_mars_agent(graph, cluster, cfg)
        clock = agent.pretrain(replace(cfg.pretrain, enabled=False))
        assert clock == 0.0 and agent.pretrain_result is None

    def test_update_flops_positive(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        assert agent.update_flops(4) > 0

    def test_state_dict_roundtrip_same_policy(self, setting):
        graph, cluster, cfg = setting
        a = build_mars_agent(graph, cluster, cfg)
        from repro.config import with_seed

        b = build_mars_agent(graph, cluster, with_seed(cfg, 99))
        b.load_state_dict(a.state_dict())
        ra = a.sample(2, np.random.default_rng(7))
        rb = b.sample(2, np.random.default_rng(7))
        assert np.array_equal(ra.placements, rb.placements)


class TestEncoderPlacerAgent:
    def test_gdp_uses_sage_and_txl(self, setting):
        graph, cluster, cfg = setting
        from repro.gnn import GraphSAGEEncoder
        from repro.placers import TransformerXLPlacer

        agent = build_encoder_placer_agent(graph, cluster, cfg)
        assert isinstance(agent.encoder, GraphSAGEEncoder)
        assert isinstance(agent.placer, TransformerXLPlacer)

    def test_sample_and_evaluate(self, setting):
        graph, cluster, cfg = setting
        agent = build_encoder_placer_agent(graph, cluster, cfg)
        rollout = agent.sample(4, np.random.default_rng(3))
        logp, _ = agent.evaluate(rollout.internal)
        assert np.allclose(logp.data, rollout.old_logp, atol=1e-10)


class TestPlacerStudyAgents:
    @pytest.mark.parametrize("kind", ["seq2seq", "segment_seq2seq", "transformer_xl", "mlp"])
    def test_all_kinds_build_and_sample(self, setting, kind):
        graph, cluster, cfg = setting
        agent = build_placer_study_agent(graph, cluster, cfg, kind)
        rollout = agent.sample(2, np.random.default_rng(4))
        assert rollout.placements.shape == (2, graph.num_nodes)

    def test_unknown_kind(self, setting):
        graph, cluster, cfg = setting
        with pytest.raises(ValueError):
            build_placer_study_agent(graph, cluster, cfg, "gru")


class TestIdentityEncoder:
    def test_passthrough(self, setting):
        graph, cluster, cfg = setting
        enc = _IdentityEncoder(5)
        x = np.ones((3, 5))
        assert np.array_equal(enc(x, None).data, x)
