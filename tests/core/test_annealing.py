"""Tests for the simulated-annealing baseline."""

import numpy as np
import pytest

from repro.core import AnnealingConfig, anneal_placement
from repro.core.annealing import _propose
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16
from tests.helpers import tiny_graph


@pytest.fixture(scope="module")
def env():
    return PlacementEnv(build_vgg16(scale=0.25, batch_size=4), ClusterSpec.default())


class TestProposal:
    def test_single_op_move_changes_at_most_block(self):
        rng = np.random.default_rng(0)
        cfg = AnnealingConfig(block_move_probability=0.0)
        actions = np.zeros(20, dtype=np.int64)
        out = _propose(actions, 4, cfg, rng)
        assert (out != actions).sum() <= 1

    def test_block_move_is_contiguous(self):
        rng = np.random.default_rng(1)
        cfg = AnnealingConfig(block_move_probability=1.0, max_block=5)
        actions = np.zeros(30, dtype=np.int64)
        out = _propose(actions, 4, cfg, rng)
        changed = np.flatnonzero(out != actions)
        if changed.size:
            assert changed.max() - changed.min() + 1 == changed.size
            assert changed.size <= 5

    def test_input_not_mutated(self):
        actions = np.zeros(10, dtype=np.int64)
        _propose(actions, 4, AnnealingConfig(), np.random.default_rng(2))
        assert np.all(actions == 0)


class TestAnnealing:
    def test_improves_over_first_sample(self, env):
        result = anneal_placement(env, AnnealingConfig(evaluations=120, seed=0))
        assert result.best_runtime <= result.runtimes[0]
        assert len(result.runtimes) == 120

    def test_best_placement_is_valid_runtime(self, env):
        result = anneal_placement(env, AnnealingConfig(evaluations=80, seed=1))
        final = env.final_run(result.best_placement)
        assert np.isfinite(final)
        assert final == pytest.approx(result.best_runtime, rel=0.1)

    def test_deterministic_given_seed(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        results = []
        for _ in range(2):
            env = PlacementEnv(g, c)
            results.append(anneal_placement(env, AnnealingConfig(evaluations=50, seed=3)))
        assert results[0].best_runtime == results[1].best_runtime
        assert np.array_equal(results[0].best_placement, results[1].best_placement)

    def test_wall_clock_charged(self, env):
        before = env.stats.wall_clock
        result = anneal_placement(env, AnnealingConfig(evaluations=30, seed=4))
        assert result.wall_clock > 0
        assert env.stats.wall_clock == pytest.approx(before + result.wall_clock)
