"""Tests for the simulated-annealing baseline."""

import numpy as np
import pytest

from repro.core import AnnealingConfig, anneal_placement
from repro.core.annealing import _propose
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16
from tests.helpers import tiny_graph


@pytest.fixture(scope="module")
def env():
    return PlacementEnv(build_vgg16(scale=0.25, batch_size=4), ClusterSpec.default())


class TestProposal:
    def test_single_op_move_changes_at_most_block(self):
        rng = np.random.default_rng(0)
        cfg = AnnealingConfig(block_move_probability=0.0)
        actions = np.zeros(20, dtype=np.int64)
        out = _propose(actions, 4, cfg, rng)
        assert (out != actions).sum() <= 1

    def test_block_move_is_contiguous(self):
        rng = np.random.default_rng(1)
        cfg = AnnealingConfig(block_move_probability=1.0, max_block=5)
        actions = np.zeros(30, dtype=np.int64)
        out = _propose(actions, 4, cfg, rng)
        changed = np.flatnonzero(out != actions)
        if changed.size:
            assert changed.max() - changed.min() + 1 == changed.size
            assert changed.size <= 5

    def test_input_not_mutated(self):
        actions = np.zeros(10, dtype=np.int64)
        _propose(actions, 4, AnnealingConfig(), np.random.default_rng(2))
        assert np.all(actions == 0)


class TestAnnealing:
    def test_improves_over_first_sample(self, env):
        result = anneal_placement(env, AnnealingConfig(evaluations=120, seed=0))
        assert result.best_runtime <= result.runtimes[0]
        assert len(result.runtimes) == 120

    def test_best_placement_is_valid_runtime(self, env):
        result = anneal_placement(env, AnnealingConfig(evaluations=80, seed=1))
        final = env.final_run(result.best_placement)
        assert np.isfinite(final)
        assert final == pytest.approx(result.best_runtime, rel=0.1)

    def test_deterministic_given_seed(self):
        g = tiny_graph()
        c = ClusterSpec.default()
        results = []
        for _ in range(2):
            env = PlacementEnv(g, c)
            results.append(anneal_placement(env, AnnealingConfig(evaluations=50, seed=3)))
        assert results[0].best_runtime == results[1].best_runtime
        assert np.array_equal(results[0].best_placement, results[1].best_placement)

    def test_wall_clock_charged(self, env):
        before = env.stats.wall_clock
        result = anneal_placement(env, AnnealingConfig(evaluations=30, seed=4))
        assert result.wall_clock > 0
        assert env.stats.wall_clock == pytest.approx(before + result.wall_clock)


class TestDefaultConfigNotShared:
    """Regression: `config: AnnealingConfig = AnnealingConfig()` in the
    signature built ONE instance at definition time, shared by every
    call — mutating it through one caller changed the default for the
    whole process. The default must be a fresh instance per call."""

    def test_signature_default_is_none(self):
        import inspect

        sig = inspect.signature(anneal_placement)
        assert sig.parameters["config"].default is None

    def test_mutation_does_not_leak_into_next_default_call(self):
        g, c = tiny_graph(), ClusterSpec.default()

        # With the shared-default bug, this mutation would redirect every
        # later no-config call to a different seed/budget.
        probe = anneal_placement.__defaults__
        assert probe == (None,)

        first = anneal_placement(PlacementEnv(g, c))
        default_cfg = AnnealingConfig()
        default_cfg.seed += 13
        default_cfg.evaluations = 7
        second = anneal_placement(PlacementEnv(g, c))
        assert len(second.runtimes) == len(first.runtimes)
        assert second.best_runtime == first.best_runtime
        assert np.array_equal(second.best_placement, first.best_placement)


class TestGracefulHalt:
    def test_halt_request_stops_schedule_early(self):
        from repro.core.runstate import clear_halt
        import repro.core.runstate as runstate

        g, c = tiny_graph(), ClusterSpec.default()
        env = PlacementEnv(g, c)
        runstate._PENDING_SIGNAL = "SIGTERM"
        try:
            result = anneal_placement(env, AnnealingConfig(evaluations=50, seed=0))
        finally:
            clear_halt()
        # Only the initial placement was evaluated before the halt check.
        assert len(result.runtimes) == 1
        assert result.best_placement is not None
