"""Tests for the grouper-placer baseline agent."""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import build_grouper_placer_agent
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def agent_setup():
    graph = build_vgg16(scale=0.25, batch_size=4)
    cluster = ClusterSpec.default()
    cfg = fast_profile(seed=0)
    agent = build_grouper_placer_agent(graph, cluster, cfg)
    return graph, cluster, agent


class TestGrouperPlacerAgent:
    def test_sample_shapes(self, agent_setup):
        graph, cluster, agent = agent_setup
        rollout = agent.sample(4, np.random.default_rng(0))
        assert rollout.placements.shape == (4, graph.num_nodes)
        assert rollout.internal["groups"].shape == (4, graph.num_nodes)
        assert rollout.internal["devices"].shape == (4, agent.num_groups)
        # Decisions: one per op (group) + one per group (device).
        assert rollout.old_logp.shape == (4, graph.num_nodes + agent.num_groups)

    def test_placement_consistent_with_internal(self, agent_setup):
        graph, cluster, agent = agent_setup
        rollout = agent.sample(3, np.random.default_rng(1))
        groups = rollout.internal["groups"]
        devices = rollout.internal["devices"]
        for b in range(3):
            expected = devices[b][groups[b]]
            assert np.array_equal(rollout.placements[b], expected)

    def test_evaluate_matches_sampled_logp(self, agent_setup):
        graph, cluster, agent = agent_setup
        rollout = agent.sample(3, np.random.default_rng(2))
        logp, entropy = agent.evaluate(rollout.internal)
        assert np.allclose(logp.data, rollout.old_logp, atol=1e-10)
        assert entropy.shape == logp.shape

    def test_gradients_reach_both_networks(self, agent_setup):
        graph, cluster, agent = agent_setup
        rollout = agent.sample(2, np.random.default_rng(3))
        agent.zero_grad()
        logp, _ = agent.evaluate(rollout.internal)
        logp.mean().backward()
        assert all(p.grad is not None for p in agent.grouper.parameters())
        assert all(p.grad is not None for p in agent.placer.parameters())

    def test_num_groups_clamped_to_graph(self):
        from repro.graph import CompGraph, OpNode

        g = CompGraph()
        g.add_node(OpNode("a", "Input"))
        g.add_node(OpNode("b", "ReLU"), inputs=["a"])
        cluster = ClusterSpec.default()
        cfg = fast_profile()
        cfg.grouper.num_groups = 500
        agent = build_grouper_placer_agent(g, cluster, cfg)
        assert agent.num_groups == 2
