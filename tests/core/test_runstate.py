"""Tests for crash-safe resumable runs (``repro.core.runstate``)."""

import json
import os
import signal

import numpy as np
import pytest

from dataclasses import replace

from repro.config import fast_profile
from repro.core.checkpoint import load_agent
from repro.core.runstate import (
    RUNSTATE_VERSION,
    RunStateManager,
    _pack,
    clear_halt,
    history_to_json,
    install_signal_handlers,
    latest_snapshot,
    load_run_state,
    restore_signal_handlers,
)
from repro.core.search import AGENT_BUILDERS, build_agent, optimize_placement
from repro.rl.trainer import JointTrainer, SearchHistory
from repro.sim import ClusterSpec, PlacementEnv
from tests.helpers import tiny_graph


def _quick_cfg(seed=0, iterations=4, snapshot_every=2):
    cfg = fast_profile(seed=seed, iterations=iterations)
    return replace(
        cfg,
        pretrain=replace(cfg.pretrain, iterations=2),
        snapshot=replace(cfg.snapshot, snapshot_every=snapshot_every),
    )


def _normalized(state):
    """(skeleton-json, arrays-as-lists) — an order-stable, comparable form
    of a nested state dict that may contain ndarrays."""
    arrays = {}
    doc = _pack(state, arrays)
    return json.dumps(doc, sort_keys=True), {k: v.tolist() for k, v in arrays.items()}


class TestSnapshotRoundTripAllKinds:
    """Every registered agent kind must survive snapshot -> load -> state
    comparison: the restored trainer and environment report exactly the
    state that was saved."""

    @pytest.mark.parametrize("kind", sorted(AGENT_BUILDERS))
    def test_state_dict_roundtrip(self, tmp_path, kind):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        cfg = _quick_cfg(iterations=2, snapshot_every=1)
        env = PlacementEnv(graph, cluster)
        agent, pretrain_clock = build_agent(kind, graph, cluster, cfg, None)
        trainer = JointTrainer(agent, env, cfg.trainer)
        manager = RunStateManager(
            str(tmp_path), cfg.snapshot, agent_kind=kind,
            workload=graph.name, mars_config=cfg,
        )
        history = trainer.train(
            SearchHistory(pretrain_clock=pretrain_clock), run_state=manager
        )

        snap = latest_snapshot(str(tmp_path))
        assert snap is not None
        state = load_run_state(snap)
        assert state["agent_kind"] == kind
        assert history_to_json(state["history"]) == history_to_json(history)

        restored_agent, meta = load_agent(
            os.path.join(snap, "agent"), graph, cluster, cfg
        )
        assert meta["agent_kind"] == kind
        env2 = PlacementEnv(graph, cluster)
        trainer2 = JointTrainer(restored_agent, env2, cfg.trainer)
        trainer2.load_state_dict(state["trainer"])
        env2.load_state_dict(state["env"])
        assert _normalized(trainer2.state_dict()) == _normalized(trainer.state_dict())
        assert _normalized(env2.state_dict()) == _normalized(env.state_dict())

    def test_algorithm_mismatch_rejected(self, tmp_path):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        cfg = _quick_cfg(iterations=1, snapshot_every=1)
        env = PlacementEnv(graph, cluster)
        agent, _ = build_agent("mars_no_pretrain", graph, cluster, cfg, None)
        trainer = JointTrainer(agent, env, cfg.trainer)
        state = trainer.state_dict()
        state["algorithm"] = "something_else"
        with pytest.raises(ValueError, match="algorithm"):
            trainer.load_state_dict(state)


class TestInterruptResumeEquivalence:
    """The tentpole contract: a run cut at iteration k and resumed must be
    bit-identical to the uninterrupted run — every SearchHistory field,
    the best placement, and the simulated clock."""

    def test_resume_at_k_matches_uninterrupted(self, tmp_path):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        kind = "mars_no_pretrain"
        total, k = 6, 3

        full = optimize_placement(graph, cluster, kind, _quick_cfg(iterations=total))

        snap_dir = str(tmp_path / "snaps")
        optimize_placement(
            graph, cluster, kind, _quick_cfg(iterations=k, snapshot_every=1),
            snapshot_dir=snap_dir,
        )
        resumed = optimize_placement(
            graph, cluster, kind, _quick_cfg(iterations=total),
            snapshot_dir=snap_dir, resume=True,
        )

        assert history_to_json(resumed.history) == history_to_json(full.history)
        assert resumed.final_runtime == full.final_runtime
        assert np.array_equal(
            resumed.history.best_placement, full.history.best_placement
        )

    def test_resume_with_no_snapshot_starts_fresh(self, tmp_path):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        cfg = _quick_cfg(iterations=2)
        fresh = optimize_placement(
            graph, cluster, "mars_no_pretrain", cfg,
            snapshot_dir=str(tmp_path / "empty"), resume=True,
        )
        assert len(fresh.history.records) == 2

    def test_resume_wrong_agent_kind_is_a_clear_error(self, tmp_path):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        snap_dir = str(tmp_path / "snaps")
        optimize_placement(
            graph, cluster, "mars_no_pretrain",
            _quick_cfg(iterations=1, snapshot_every=1), snapshot_dir=snap_dir,
        )
        with pytest.raises(ValueError, match="mars_no_pretrain"):
            optimize_placement(
                graph, cluster, "encoder_placer", _quick_cfg(iterations=2),
                snapshot_dir=snap_dir, resume=True,
            )


class TestSignalHalt:
    """A real SIGTERM mid-run finishes the iteration, snapshots, records
    the halt, and the run resumes bit-identically afterwards."""

    def test_sigterm_halts_snapshots_and_resumes(self, tmp_path):
        graph, cluster = tiny_graph(), ClusterSpec.default()
        kind = "mars_no_pretrain"
        total, kill_after = 5, 2
        snap_dir = str(tmp_path / "snaps")

        class SigtermAfter(RunStateManager):
            def after_iteration(self, trainer, history, telemetry=None, force=False):
                if len(history.records) == kill_after:
                    os.kill(os.getpid(), signal.SIGTERM)
                return super().after_iteration(trainer, history, telemetry, force=force)

        import repro.core.search as search_mod

        install_signal_handlers()
        original = search_mod.RunStateManager
        search_mod.RunStateManager = SigtermAfter
        try:
            interrupted = optimize_placement(
                graph, cluster, kind, _quick_cfg(iterations=total),
                snapshot_dir=snap_dir,
            )
        finally:
            search_mod.RunStateManager = original
            restore_signal_handlers()

        assert interrupted.history.halt_reason == "signal: SIGTERM"
        assert len(interrupted.history.records) == kill_after
        assert latest_snapshot(snap_dir) is not None

        full = optimize_placement(graph, cluster, kind, _quick_cfg(iterations=total))
        resumed = optimize_placement(
            graph, cluster, kind, _quick_cfg(iterations=total),
            snapshot_dir=snap_dir, resume=True,
        )
        assert history_to_json(resumed.history) == history_to_json(full.history)
        assert resumed.final_runtime == full.final_runtime

    def test_clear_halt_after_restore(self):
        install_signal_handlers()
        try:
            os.kill(os.getpid(), signal.SIGTERM)
            from repro.core.runstate import halt_requested

            assert halt_requested() == "SIGTERM"
            clear_halt()
            assert halt_requested() is None
        finally:
            restore_signal_handlers()


class TestSnapshotHygiene:
    def test_incomplete_snapshot_ignored(self, tmp_path):
        complete = tmp_path / "snap-000002"
        partial = tmp_path / "snap-000004"  # no runstate.json: crashed mid-write
        complete.mkdir()
        (complete / "runstate.json").write_text("{}")
        partial.mkdir()
        (partial / "state.npz").write_text("junk")
        assert latest_snapshot(str(tmp_path)) == str(complete)

    def test_prune_keeps_newest_and_drops_partials(self, tmp_path):
        for n in (2, 4, 6):
            d = tmp_path / f"snap-{n:06d}"
            d.mkdir()
            (d / "runstate.json").write_text("{}")
        partial = tmp_path / "snap-000008"
        partial.mkdir()
        manager = RunStateManager(str(tmp_path))
        manager.config.keep_last = 2
        manager.prune()
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snap-000004", "snap-000006",
        ]

    def test_keep_last_zero_keeps_everything(self, tmp_path):
        for n in (2, 4):
            d = tmp_path / f"snap-{n:06d}"
            d.mkdir()
            (d / "runstate.json").write_text("{}")
        manager = RunStateManager(str(tmp_path))
        manager.config.keep_last = 0
        manager.prune()
        assert len(list(tmp_path.iterdir())) == 2

    def test_unknown_version_refused(self, tmp_path):
        snap = tmp_path / "snap-000001"
        snap.mkdir()
        (snap / "runstate.json").write_text(
            json.dumps({"version": RUNSTATE_VERSION + 1})
        )
        with pytest.raises(ValueError, match="version"):
            load_run_state(str(snap))

    def test_fresh_config_per_manager(self, tmp_path):
        a = RunStateManager(str(tmp_path / "a"))
        b = RunStateManager(str(tmp_path / "b"))
        a.config.snapshot_every = 999
        assert b.config.snapshot_every != 999
