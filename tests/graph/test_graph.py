"""Tests for the computational-graph IR."""

import numpy as np
import pytest

from repro.graph import CompGraph, OpNode
from tests.helpers import tiny_graph


class TestOpNode:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            OpNode("", "MatMul")

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            OpNode("x", "MatMul", flops=-1)

    def test_output_bytes(self):
        node = OpNode("x", "MatMul", output_shape=(2, 8))
        assert node.output_elements == 16
        assert node.output_bytes == 64.0

    def test_shape_coerced_to_ints(self):
        node = OpNode("x", "MatMul", output_shape=(np.int64(4), 2.0))
        assert node.output_shape == (4, 2)
        assert all(isinstance(s, int) for s in node.output_shape)


class TestCompGraph:
    def test_add_node_and_lookup(self):
        g = tiny_graph()
        assert g.num_nodes == 6
        assert g.node("a").op_type == "MatMul"
        assert g.index_of("loss") == 5

    def test_duplicate_name_rejected(self):
        g = CompGraph()
        g.add_node(OpNode("x", "Input"))
        with pytest.raises(ValueError):
            g.add_node(OpNode("x", "Input"))

    def test_edge_to_unknown_node(self):
        g = CompGraph()
        g.add_node(OpNode("x", "Input"))
        with pytest.raises(KeyError):
            g.add_edge("x", "nope")

    def test_self_loop_rejected(self):
        g = CompGraph()
        g.add_node(OpNode("x", "Input"))
        with pytest.raises(ValueError):
            g.add_edge("x", "x")

    def test_duplicate_edge_deduplicated(self):
        g = CompGraph()
        g.add_node(OpNode("a", "Input"))
        g.add_node(OpNode("b", "ReLU"), inputs=["a"])
        g.add_edge("a", "b")
        assert g.num_edges == 1

    def test_successors_predecessors(self):
        g = tiny_graph()
        a = g.index_of("a")
        assert sorted(g.successors(a)) == [g.index_of("b"), g.index_of("c")]
        assert g.predecessors(g.index_of("d")) == [g.index_of("b"), g.index_of("c")]

    def test_degrees(self):
        g = tiny_graph()
        assert g.in_degrees()[g.index_of("d")] == 2
        assert g.out_degrees()[g.index_of("a")] == 2

    def test_topological_order_valid(self):
        g = tiny_graph()
        order = g.topological_order()
        position = {op: i for i, op in enumerate(order)}
        for u, v in g.edges():
            assert position[u] < position[v]

    def test_cycle_detection(self):
        g = CompGraph()
        g.add_node(OpNode("a", "Input"))
        g.add_node(OpNode("b", "ReLU"), inputs=["a"])
        # Force a back edge via the internal structures.
        g._succ[1].append(0)
        g._pred[0].append(1)
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_is_topologically_indexed(self):
        assert tiny_graph().is_topologically_indexed()

    def test_validate_rejects_bad_shape(self):
        g = CompGraph()
        node = OpNode("a", "Input", output_shape=(2,))
        g.add_node(node)
        node.output_shape = (0,)
        with pytest.raises(ValueError):
            g.validate()

    def test_totals(self):
        g = tiny_graph()
        assert g.total_flops() == pytest.approx(2e6 + 64 + 128)
        assert g.total_param_bytes() == pytest.approx(1536)

    def test_colocation_groups(self):
        g = CompGraph()
        g.add_node(OpNode("a", "Variable", colocation_group="w"))
        g.add_node(OpNode("b", "MatMul", colocation_group="w"))
        g.add_node(OpNode("c", "ReLU"))
        assert g.colocation_groups() == {"w": [0, 1]}

    def test_to_networkx(self):
        nxg = tiny_graph().to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 6

    def test_summary_contains_counts(self):
        text = tiny_graph().summary()
        assert "6 ops" in text and "edges" in text
