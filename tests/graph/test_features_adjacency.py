"""Tests for node features, op-type vocabulary, and GCN adjacency."""

import numpy as np
import pytest

from repro.graph import (
    FeatureExtractor,
    OpTypeVocabulary,
    adjacency_matrix,
    normalized_adjacency,
)
from repro.graph.features import CANONICAL_OP_TYPES, SHAPE_RANK
from tests.helpers import tiny_graph


class TestVocabulary:
    def test_canonical_types_indexed(self):
        vocab = OpTypeVocabulary()
        assert vocab.index("Conv2D") != vocab.index("MatMul")
        assert len(vocab) == len(CANONICAL_OP_TYPES) + 1

    def test_unknown_maps_to_unk(self):
        vocab = OpTypeVocabulary()
        assert vocab.index("SomethingNew") == vocab.unk_index

    def test_one_hot(self):
        vocab = OpTypeVocabulary(["A", "B"])
        vec = vocab.one_hot("B")
        assert vec.sum() == 1.0 and vec[1] == 1.0

    def test_from_graphs(self):
        vocab = OpTypeVocabulary.from_graphs([tiny_graph()])
        assert vocab.index("MatMul") != vocab.unk_index

    def test_duplicate_types_deduped(self):
        vocab = OpTypeVocabulary(["A", "A", "B"])
        assert len(vocab) == 3  # A, B, <UNK>


class TestFeatureExtractor:
    def test_shape_and_range(self):
        fx = FeatureExtractor()
        x = fx(tiny_graph())
        assert x.shape == (6, fx.dim)
        assert np.isfinite(x).all()
        # Shape features are normalized by the max dimension -> within [0,1].
        type_w = len(fx.vocab)
        shapes = x[:, type_w : type_w + 2 * SHAPE_RANK]
        assert shapes.min() >= 0.0 and shapes.max() <= 1.0

    def test_one_hot_block_rows_sum_to_one(self):
        fx = FeatureExtractor()
        x = fx(tiny_graph())
        assert np.allclose(x[:, : len(fx.vocab)].sum(axis=1), 1.0)

    def test_dim_consistent_across_workloads(self):
        """The generalization experiments need one shared feature space."""
        from repro.workloads import build_inception_v3, build_gnmt

        fx = FeatureExtractor()
        a = fx(build_inception_v3(scale=0.34))
        b = fx(build_gnmt(scale=0.15))
        assert a.shape[1] == b.shape[1] == fx.dim

    def test_optional_blocks_change_dim(self):
        lean = FeatureExtractor(include_costs=False, include_degrees=False)
        full = FeatureExtractor()
        assert full.dim == lean.dim + 5

    def test_empty_graph(self):
        from repro.graph import CompGraph

        fx = FeatureExtractor()
        assert fx(CompGraph()).shape == (0, fx.dim)

    def test_input_shape_feature_uses_first_predecessor(self):
        fx = FeatureExtractor()
        g = tiny_graph()
        x = fx(g)
        type_w = len(fx.vocab)
        in_shape_block = x[g.index_of("b"), type_w + SHAPE_RANK : type_w + 2 * SHAPE_RANK]
        # b's predecessor is a with output (4,16); max dim in graph is 32.
        assert np.allclose(in_shape_block[:2], [4 / 32, 16 / 32])


class TestAdjacency:
    def test_adjacency_symmetric_when_undirected(self):
        a = adjacency_matrix(tiny_graph())
        assert (a != a.T).nnz == 0

    def test_adjacency_directed(self):
        a = adjacency_matrix(tiny_graph(), undirected=False)
        assert a[0, 1] == 1.0 and a[1, 0] == 0.0

    def test_normalized_rows_bounded(self):
        a = normalized_adjacency(tiny_graph())
        assert a.shape == (6, 6)
        # Symmetric normalization keeps the spectral radius at <= 1.
        eigs = np.linalg.eigvalsh(a.toarray())
        assert eigs.max() <= 1.0 + 1e-9

    def test_self_loops_present(self):
        a = normalized_adjacency(tiny_graph())
        assert np.all(a.diagonal() > 0)

    def test_normalization_formula_on_known_graph(self):
        from repro.graph import CompGraph, OpNode

        g = CompGraph()
        g.add_node(OpNode("a", "Input"))
        g.add_node(OpNode("b", "ReLU"), inputs=["a"])
        a = normalized_adjacency(g).toarray()
        # Both nodes have degree 2 after self-loops: entries 1/2.
        assert np.allclose(a, [[0.5, 0.5], [0.5, 0.5]])
