"""Tests for graph (de)serialization."""

import numpy as np
import pytest

from repro.graph import CompGraph, graph_from_dict, graph_to_dict, load_graph, save_graph
from tests.helpers import tiny_graph


class TestGraphIO:
    def test_roundtrip_preserves_structure(self, tmp_path):
        g = tiny_graph()
        path = str(tmp_path / "graph.json")
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.name == g.name
        assert loaded.num_nodes == g.num_nodes
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_roundtrip_preserves_attributes(self):
        g = tiny_graph()
        loaded = graph_from_dict(graph_to_dict(g))
        for a, b in zip(g.nodes, loaded.nodes):
            assert a.name == b.name
            assert a.op_type == b.op_type
            assert a.output_shape == b.output_shape
            assert a.flops == b.flops
            assert a.cpu_only == b.cpu_only
            assert a.colocation_group == b.colocation_group

    def test_load_from_dict_directly(self):
        doc = {
            "name": "mini",
            "nodes": [
                {"name": "a", "op_type": "Input"},
                {"name": "b", "op_type": "ReLU"},
            ],
            "edges": [["a", "b"]],
        }
        g = load_graph(doc)
        assert g.num_nodes == 2 and g.num_edges == 1

    def test_invalid_graph_rejected_on_load(self):
        doc = {
            "name": "cyclic",
            "nodes": [
                {"name": "a", "op_type": "Input"},
                {"name": "b", "op_type": "ReLU"},
            ],
            "edges": [["a", "b"], ["b", "a"]],
        }
        with pytest.raises(ValueError):
            load_graph(doc)

    def test_duplicate_node_name_rejected(self):
        doc = {
            "name": "dup",
            "nodes": [
                {"name": "a", "op_type": "Input"},
                {"name": "a", "op_type": "ReLU"},
            ],
            "edges": [],
        }
        with pytest.raises(ValueError, match=r"duplicate node name 'a' \(nodes\[1\]\)"):
            graph_from_dict(doc)

    def test_edge_referencing_unknown_node_rejected(self):
        doc = {
            "name": "dangling",
            "nodes": [{"name": "a", "op_type": "Input"}],
            "edges": [["a", "ghost"]],
        }
        with pytest.raises(ValueError, match="references unknown node 'ghost'"):
            graph_from_dict(doc)
        doc["edges"] = [["phantom", "a"]]
        with pytest.raises(ValueError, match="references unknown node 'phantom'"):
            graph_from_dict(doc)

    def test_malformed_edge_rejected(self):
        doc = {
            "name": "bad-edge",
            "nodes": [{"name": "a", "op_type": "Input"}],
            "edges": [["a"]],
        }
        with pytest.raises(ValueError, match=r"edges\[0\] must be a \[src, dst\] pair"):
            graph_from_dict(doc)

    def test_error_names_the_document(self):
        doc = {
            "name": "my-workload",
            "nodes": [{"name": "a", "op_type": "Input"}],
            "edges": [["a", "b"]],
        }
        with pytest.raises(ValueError, match="my-workload"):
            graph_from_dict(doc)

    def test_workload_roundtrip_identical_features(self, tmp_path):
        from repro.graph import FeatureExtractor
        from repro.workloads import build_vgg16

        g = build_vgg16(scale=0.25)
        loaded = graph_from_dict(graph_to_dict(g))
        fx = FeatureExtractor()
        assert np.allclose(fx(g), fx(loaded))


class TestChromeTrace:
    def test_trace_document(self, tmp_path):
        import json

        from repro.analysis import placement_to_chrome_trace
        from repro.sim import ClusterSpec, Placement

        g = tiny_graph()
        c = ClusterSpec.default()
        p = Placement([0, 0, 1, 1, 0, 4], g, c)
        path = str(tmp_path / "trace.json")
        doc = placement_to_chrome_trace(p, path=path)
        op_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(op_events) == g.num_nodes
        assert all(e["dur"] > 0 for e in op_events)
        assert json.load(open(path)) == doc

    def test_trace_process_names(self):
        from repro.analysis import placement_to_chrome_trace
        from repro.sim import ClusterSpec, Placement

        g = tiny_graph()
        c = ClusterSpec.default()
        doc = placement_to_chrome_trace(Placement([0] * 6, g, c))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {d.name for d in c.devices}
