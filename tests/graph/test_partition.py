"""Tests for grouping utilities."""

import numpy as np
import pytest

from repro.graph import group_contiguous, topological_groups
from repro.graph.partition import group_feature_means
from tests.helpers import tiny_graph


class TestGroupContiguous:
    def test_even_split(self):
        groups = group_contiguous(8, 4)
        assert np.array_equal(np.bincount(groups), [2, 2, 2, 2])

    def test_uneven_split_near_equal(self):
        groups = group_contiguous(10, 3)
        counts = np.bincount(groups)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1

    def test_more_groups_than_items(self):
        groups = group_contiguous(2, 10)
        assert set(groups) <= {0, 1}

    def test_monotone_nondecreasing(self):
        groups = group_contiguous(17, 5)
        assert np.all(np.diff(groups) >= 0)

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            group_contiguous(5, 0)


class TestTopologicalGroups:
    def test_respects_topology(self):
        g = tiny_graph()
        groups = topological_groups(g, 3)
        order = g.topological_order()
        positions = [groups[op] for op in order]
        assert np.all(np.diff(positions) >= 0)

    def test_group_count(self):
        groups = topological_groups(tiny_graph(), 2)
        assert set(groups) == {0, 1}


class TestGroupFeatureMeans:
    def test_mean_computation(self):
        feats = np.array([[1.0, 0.0], [3.0, 0.0], [0.0, 8.0]])
        groups = np.array([0, 0, 1])
        out = group_feature_means(feats, groups, 3)
        assert np.allclose(out[0], [2.0, 0.0])
        assert np.allclose(out[1], [0.0, 8.0])
        assert np.allclose(out[2], 0.0)  # empty group
