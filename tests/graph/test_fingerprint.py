"""Tests for the stable graph content hash (CompGraph.fingerprint)."""

import json
import subprocess
import sys

from repro.graph import CompGraph, OpNode, graph_from_dict, graph_to_dict
from tests.helpers import tiny_graph


def shuffled_doc(graph: CompGraph, seed: int = 3) -> dict:
    """The graph's document with nodes and edges re-ordered."""
    import random

    doc = graph_to_dict(graph)
    rng = random.Random(seed)
    # Reversing node order would break topological insertion, so shuffle
    # only within a doc round-trip that re-sorts dependencies first:
    # graph_from_dict inserts in document order, so keep nodes topological
    # but permute edges freely and rotate attribute dict key order.
    doc["edges"] = [list(e) for e in reversed(doc["edges"])]
    doc["nodes"] = [dict(reversed(list(n.items()))) for n in doc["nodes"]]
    rng.shuffle(doc["edges"])
    return doc


class TestFingerprint:
    def test_stable_across_instances(self):
        assert tiny_graph().fingerprint() == tiny_graph().fingerprint()

    def test_is_hex_sha256(self):
        fp = tiny_graph().fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex

    def test_insertion_order_invariance(self):
        g = tiny_graph()
        doc = shuffled_doc(g)
        assert graph_from_dict(doc).fingerprint() == g.fingerprint()

    def test_name_sensitivity(self):
        a = tiny_graph()
        doc = graph_to_dict(tiny_graph())
        doc["name"] = "renamed"
        assert graph_from_dict(doc).fingerprint() != a.fingerprint()

    def test_attribute_sensitivity(self):
        base = tiny_graph().fingerprint()
        g = tiny_graph()
        g.node("a").flops *= 2
        assert g.fingerprint() != base

    def test_shape_sensitivity(self):
        base = tiny_graph().fingerprint()
        g = tiny_graph()
        g.node("b").output_shape = (8, 16)
        assert g.fingerprint() != base

    def test_edge_sensitivity(self):
        base = tiny_graph()
        doc = graph_to_dict(base)
        doc["edges"] = [e for e in doc["edges"] if e != ["b", "d"]]
        assert graph_from_dict(doc).fingerprint() != base.fingerprint()

    def test_extra_node_changes_fingerprint(self):
        g = tiny_graph()
        base = g.fingerprint()
        g.add_node(OpNode("tail", "Identity", (1,)), inputs=["loss"])
        assert g.fingerprint() != base

    def test_cross_process_stability(self):
        """The hash must not depend on Python's per-process hash salt."""
        script = (
            "import sys; sys.path.insert(0, 'src'); sys.path.insert(0, '.');"
            "from tests.helpers import tiny_graph;"
            "print(tiny_graph().fingerprint())"
        )
        fps = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                cwd=".",
            ).stdout.strip()
            for _ in range(2)
        }
        assert fps == {tiny_graph().fingerprint()}
