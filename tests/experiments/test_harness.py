"""Tests for the experiment harness (specs, caching, rendering, CLI)."""

import json
import os

import numpy as np
import pytest

from repro.config import fast_profile
from repro.experiments import EVAL_WORKLOADS, WORKLOAD_SPECS, ExperimentContext, WorkloadSpec
from repro.experiments.common import RunSummary, fmt_runtime, format_table
from repro.experiments import fig7, fig8, table1, table2


@pytest.fixture()
def tiny_ctx(tmp_path):
    """A context over one very small workload for fast integration tests."""
    spec = WorkloadSpec(
        key="mini",
        title="Mini",
        workload="vgg16",
        workload_kwargs={"scale": 0.25, "batch_size": 4},
        iterations=2,
    )
    return ExperimentContext(
        config=fast_profile(seed=0),
        cache_dir=str(tmp_path),
        specs={"mini": spec},
    )


class TestSpecs:
    def test_eval_workloads_registered(self):
        for key in EVAL_WORKLOADS:
            assert key in WORKLOAD_SPECS

    def test_feasibility_structure(self):
        """Inception fits one GPU; GNMT and BERT must not (paper Table 2)."""
        from repro.core.baselines import gpu_only_placement
        from repro.sim import MemoryModel

        for key, expect_fits in (("inception_v3", True), ("gnmt4", False), ("bert", False)):
            spec = WORKLOAD_SPECS[key]
            graph = spec.build_graph()
            cluster = spec.build_cluster()
            report = MemoryModel().check(gpu_only_placement(graph, cluster))
            assert report.fits == expect_fits, key

    def test_build_protocol_carries_threshold(self):
        spec = WORKLOAD_SPECS["bert"]
        assert spec.build_protocol().bad_step_threshold == spec.bad_step_threshold


class TestContextCaching:
    def test_run_summary_shape(self, tiny_ctx):
        summary = tiny_ctx.run("mini", "mars_no_pretrain", seed=0)
        assert summary.workload.startswith("vgg16")
        assert np.isfinite(summary.final_runtime)
        assert len(summary.best_curve) == 2

    def test_memory_cache_hit(self, tiny_ctx):
        a = tiny_ctx.run("mini", "mars_no_pretrain", seed=0)
        b = tiny_ctx.run("mini", "mars_no_pretrain", seed=0)
        assert a is b

    def test_disk_cache_roundtrip(self, tiny_ctx, tmp_path):
        tiny_ctx.run("mini", "mars_no_pretrain", seed=0)
        files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
        assert len(files) == 1
        fresh = ExperimentContext(
            config=fast_profile(seed=0),
            cache_dir=str(tmp_path),
            specs=tiny_ctx.specs,
        )
        summary = fresh.run("mini", "mars_no_pretrain", seed=0)
        assert summary.final_runtime == tiny_ctx.run("mini", "mars_no_pretrain").final_runtime

    def test_static_runtime(self, tiny_ctx):
        from repro.core.baselines import gpu_only_placement

        value = tiny_ctx.static_runtime("mini", gpu_only_placement)
        assert np.isfinite(value) and value > 0


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_fmt_runtime_oom(self):
        assert fmt_runtime(float("nan")) == "OOM"
        assert fmt_runtime(1.5) == "1.500"

    def test_table1_render(self):
        text = table1.render_table1({"bert": {"Seq2seq": 1.0, "Trf-XL": 2.0, "Seq2seq (segment)": 0.5}})
        assert "BERT" in text and "0.500" in text

    def test_table2_render_includes_oom(self):
        row = {
            "Human Experts": float("nan"),
            "GPU Only": float("nan"),
            "Grouper-Placer": 2.0,
            "Encoder-Placer": 1.9,
            "Mars": 1.5,
            "Mars (no pre-training)": 1.8,
        }
        text = table2.render_table2({"bert": row})
        assert "OOM" in text and "1.500" in text

    def test_fig8_render_reports_savings(self):
        hours = {
            "bert": {
                "Mars": 8.0,
                "Mars (no pre-training)": 10.0,
                "Grouper-Placer": 11.0,
                "Encoder-Placer": 12.0,
            }
        }
        text = fig8.render_fig8(hours)
        assert "reduces" in text and "20.0%" in text

    def test_fig7_render_downsamples(self):
        curves = {
            "inception_v3": {
                "Mars": ([10, 20, 30], [0.3, 0.2, 0.1]),
                "Grouper-Placer": ([10, 20, 30], [0.4, 0.3, 0.2]),
            }
        }
        text = fig7.render_fig7(curves, points=4)
        assert "Mars" in text and "0.100" in text

    def test_fig7_convergence_summary(self):
        curves = {
            "inception_v3": {"Mars": ([10, 20, 30], [0.3, 0.1, 0.1])}
        }
        text = fig7.convergence_summary(curves)
        assert "step 20" in text


class TestRunnerCLI:
    def test_parser_accepts_experiments(self):
        from repro.experiments.runner import build_parser

        args = build_parser().parse_args(["table2", "--seed", "3"])
        assert args.experiment == "table2" and args.seed == 3

    def test_parser_rejects_unknown(self):
        from repro.experiments.runner import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])
