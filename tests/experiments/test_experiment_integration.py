"""End-to-end integration of the table/figure pipelines on a mini workload.

Uses a single tiny workload spec so each experiment's full code path
(run -> cache -> render) executes in seconds.
"""

import numpy as np
import pytest

from repro.config import fast_profile
from repro.experiments import ExperimentContext, WorkloadSpec
from repro.experiments import fig7, fig8, table1, table2


@pytest.fixture(scope="module")
def mini_ctx(tmp_path_factory):
    spec = WorkloadSpec(
        key="mini",
        title="Mini",
        workload="vgg16",
        workload_kwargs={"scale": 0.25, "batch_size": 4},
        iterations=2,
        patience_samples=None,
    )
    return ExperimentContext(
        config=fast_profile(seed=0),
        cache_dir=str(tmp_path_factory.mktemp("cache")),
        specs={"mini": spec},
    )


class TestTable1Pipeline:
    def test_run_and_render(self, mini_ctx):
        results = table1.run_table1(mini_ctx, workloads=["mini"])
        assert set(results["mini"]) == {t for _, t in table1.PLACER_KINDS}
        assert all(np.isfinite(v) for v in results["mini"].values())


class TestTable2Pipeline:
    def test_run_includes_baselines_and_agents(self, mini_ctx):
        results = table2.run_table2(mini_ctx, workloads=["mini"])
        row = results["mini"]
        assert "Human Experts" in row and "Mars" in row
        assert np.isfinite(row["Mars"])

    def test_multi_seed_averaging(self, mini_ctx):
        single = table2.run_table2(mini_ctx, workloads=["mini"], seeds=[0])
        double = table2.run_table2(mini_ctx, workloads=["mini"], seeds=[0, 1])
        # Different seed sets generally give different averages, and both
        # must be finite.
        assert np.isfinite(double["mini"]["Mars"])
        assert np.isfinite(single["mini"]["Mars"])


class TestFig7Pipeline:
    def test_curves_produced_for_all_agents(self, mini_ctx):
        curves = fig7.run_fig7(mini_ctx, workloads=["mini"])
        assert set(curves["mini"]) == {t for _, t in fig7.FIG7_AGENTS}
        for xs, ys in curves["mini"].values():
            assert len(xs) == len(ys) > 0
            assert all(y <= fig7.MAX_PLOTTED_RUNTIME for y in ys)


class TestFig8Pipeline:
    def test_hours_positive_and_pretrain_costed(self, mini_ctx):
        hours = fig8.run_fig8(mini_ctx, workloads=["mini"])
        row = hours["mini"]
        assert all(h > 0 for h in row.values())
        # The cached Mars run must carry a pre-training clock component.
        summary = mini_ctx.run("mini", "mars", seed=0)
        assert summary.pretrain_clock > 0
