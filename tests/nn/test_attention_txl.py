"""Tests for Bahdanau attention and Transformer-XL layers."""

import numpy as np
import pytest

from repro.nn import BahdanauAttention, Embedding, Tensor, TransformerXL
from repro.nn.transformer_xl import RelativeMultiHeadAttention
from tests.helpers import check_gradient

rng = np.random.default_rng(13)


class TestBahdanauAttention:
    def test_context_shape(self):
        att = BahdanauAttention(6, 4, 5, rng=0)
        ctx = att(Tensor(rng.standard_normal((7, 3, 6))), Tensor(rng.standard_normal((3, 4))))
        assert ctx.shape == (3, 6)

    def test_context_is_convex_combination(self):
        """With identical memory vectors, context equals that vector."""
        att = BahdanauAttention(4, 4, 4, rng=1)
        v = rng.standard_normal(4)
        mem = Tensor(np.tile(v, (5, 2, 1)))
        ctx = att(mem, Tensor(rng.standard_normal((2, 4))))
        assert np.allclose(ctx.data, v, atol=1e-9)

    def test_peaked_attention_selects_matching_key(self):
        att = BahdanauAttention(3, 3, 8, rng=2)
        mem = Tensor(rng.standard_normal((4, 1, 3)))
        q = Tensor(rng.standard_normal((1, 3)))
        ctx = att(mem, q)
        # Context lies within the convex hull of memory slots.
        assert ctx.data.min() >= mem.data.min() - 1e-9
        assert ctx.data.max() <= mem.data.max() + 1e-9

    def test_gradcheck(self):
        att = BahdanauAttention(3, 2, 4, rng=3)
        q = Tensor(rng.standard_normal((1, 2)))
        check_gradient(lambda m: (att(m, q) ** 2).sum(), rng.standard_normal((4, 1, 3)), tol=1e-4)

    def test_memory_batch_broadcasts_to_query_batch(self):
        att = BahdanauAttention(6, 4, 5, rng=4)
        ctx = att(Tensor(rng.standard_normal((7, 1, 6))), Tensor(rng.standard_normal((9, 4))))
        assert ctx.shape == (9, 6)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[1])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2, rng=0)
        with pytest.raises(IndexError):
            emb(np.array([5]))

    def test_gradient_scatters_to_rows(self):
        emb = Embedding(6, 3, rng=0)
        emb(np.array([2, 2])).sum().backward()
        assert np.allclose(emb.weight.grad[2], 2.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestTransformerXL:
    def test_shapes_and_memory_growth(self):
        txl = TransformerXL(dim=8, n_layers=2, n_heads=2, mem_len=6, rng=0)
        txl.reset_memory()
        out1 = txl(Tensor(rng.standard_normal((4, 1, 8))))
        assert out1.shape == (4, 1, 8)
        assert txl._memory[0].shape[0] == 4
        txl(Tensor(rng.standard_normal((4, 1, 8))))
        assert txl._memory[0].shape[0] == 6  # clipped to mem_len

    def test_memory_affects_output(self):
        txl = TransformerXL(dim=8, n_layers=1, n_heads=2, mem_len=8, rng=1)
        seg = Tensor(rng.standard_normal((3, 1, 8)))
        txl.reset_memory()
        first = txl(seg).data.copy()
        second = txl(seg).data  # same input, but now memory is non-empty
        assert not np.allclose(first, second)

    def test_reset_memory_restores_determinism(self):
        txl = TransformerXL(dim=8, n_layers=2, n_heads=2, rng=2)
        seg = Tensor(rng.standard_normal((3, 2, 8)))
        txl.reset_memory()
        a = txl(seg).data.copy()
        txl.reset_memory()
        b = txl(seg).data
        assert np.allclose(a, b)

    def test_causality_within_segment(self):
        """Changing a later position must not affect earlier outputs."""
        txl = TransformerXL(dim=8, n_layers=1, n_heads=2, rng=3)
        x = rng.standard_normal((5, 1, 8))
        txl.reset_memory()
        out1 = txl(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[4] += 5.0
        txl.reset_memory()
        out2 = txl(Tensor(x2)).data
        assert np.allclose(out1[:4], out2[:4], atol=1e-10)
        assert not np.allclose(out1[4], out2[4])

    def test_dim_heads_divisibility(self):
        with pytest.raises(ValueError):
            RelativeMultiHeadAttention(10, 3)

    def test_gradients_flow(self):
        txl = TransformerXL(dim=8, n_layers=2, n_heads=2, rng=4)
        txl.reset_memory()
        x = Tensor(rng.standard_normal((4, 2, 8)), requires_grad=True)
        txl(x).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in txl.parameters())
