"""Tests for LSTM / BiLSTM layers."""

import numpy as np
import pytest

from repro.nn import BiLSTM, LSTM, LSTMCell, Tensor
from tests.helpers import check_gradient

rng = np.random.default_rng(5)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(4, 6, rng=0)
        h, c = cell(Tensor(rng.standard_normal((3, 4))))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_forget_bias_initialized_to_one(self):
        cell = LSTMCell(4, 6, rng=0)
        assert np.allclose(cell.bias.data[6:12], 1.0)
        assert np.allclose(cell.bias.data[:6], 0.0)

    def test_step_matches_forward(self):
        cell = LSTMCell(4, 6, rng=0)
        x = Tensor(rng.standard_normal((2, 4)))
        state = cell.init_state(2)
        h1, c1 = cell(x, state)
        h2, c2 = cell.step(x @ cell.w_ih + cell.bias, state)
        assert np.allclose(h1.data, h2.data) and np.allclose(c1.data, c2.data)

    def test_gradcheck_through_cell(self):
        cell = LSTMCell(3, 4, rng=1)

        def f(x):
            h, c = cell(x)
            return (h * h + c).sum()

        check_gradient(f, rng.standard_normal((2, 3)))

    def test_state_broadcasting_batch1_input(self):
        """Input batch 1 with state batch B broadcasts — used by placers."""
        cell = LSTMCell(3, 4, rng=1)
        x = Tensor(rng.standard_normal((1, 3)))
        state = (Tensor(rng.standard_normal((5, 4))), Tensor(np.zeros((5, 4))))
        h, c = cell(x, state)
        assert h.shape == (5, 4)


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(4, 6, rng=0)
        out, (h, c) = lstm(Tensor(rng.standard_normal((7, 2, 4))))
        assert out.shape == (7, 2, 6)
        assert h.shape == (2, 6)

    def test_final_state_is_last_output(self):
        lstm = LSTM(4, 6, rng=0)
        out, (h, _) = lstm(Tensor(rng.standard_normal((5, 2, 4))))
        assert np.allclose(out.data[-1], h.data)

    def test_state_carrying_equals_contiguous_run(self):
        lstm = LSTM(3, 5, rng=2)
        x = Tensor(rng.standard_normal((8, 2, 3)))
        full, _ = lstm(x)
        first, state = lstm(x[:4])
        second, _ = lstm(x[np.arange(4, 8)], state)
        assert np.allclose(full.data[4:], second.data, atol=1e-12)

    def test_gradient_flows_to_input(self):
        lstm = LSTM(3, 4, rng=3)
        x = Tensor(rng.standard_normal((6, 2, 3)), requires_grad=True)
        out, _ = lstm(x)
        (out * out).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_gradcheck_small(self):
        lstm = LSTM(2, 3, rng=4)

        def f(x):
            out, _ = lstm(x)
            return (out * out).sum()

        check_gradient(f, rng.standard_normal((3, 1, 2)), tol=1e-4)


class TestBiLSTM:
    def test_hidden_size_must_be_even(self):
        with pytest.raises(ValueError):
            BiLSTM(4, 5)

    def test_output_shape_concats_directions(self):
        bi = BiLSTM(4, 8, rng=0)
        out, (fwd, bwd) = bi(Tensor(rng.standard_normal((6, 3, 4))))
        assert out.shape == (6, 3, 8)
        assert fwd[0].shape == (3, 4) and bwd[0].shape == (3, 4)

    def test_backward_direction_sees_future(self):
        """Changing the last input changes the first output's bwd half."""
        bi = BiLSTM(2, 4, rng=1)
        x = rng.standard_normal((5, 1, 2))
        out1, _ = bi(Tensor(x))
        x2 = x.copy()
        x2[-1] += 10.0
        out2, _ = bi(Tensor(x2))
        fwd_half = slice(0, 2)
        bwd_half = slice(2, 4)
        assert np.allclose(out1.data[0, 0, fwd_half], out2.data[0, 0, fwd_half])
        assert not np.allclose(out1.data[0, 0, bwd_half], out2.data[0, 0, bwd_half])

    def test_merge_state_width(self):
        bi = BiLSTM(3, 6, rng=2)
        _, states = bi(Tensor(rng.standard_normal((4, 2, 3))))
        h, c = BiLSTM.merge_state(states)
        assert h.shape == (2, 6) and c.shape == (2, 6)

    def test_forward_state_carry_across_segments(self):
        bi = BiLSTM(3, 6, rng=3)
        x = Tensor(rng.standard_normal((6, 1, 3)))
        _, (fwd_full, _) = bi(x)
        _, (fwd_a, _) = bi(x[:3], (None, None))
        _, (fwd_b, _) = bi(x[np.arange(3, 6)], (fwd_a, None))
        assert np.allclose(fwd_full[0].data, fwd_b[0].data, atol=1e-12)
