"""Tests for composite differentiable ops (softmax family, spmm, losses)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import Tensor
from repro.nn import functional as F
from tests.helpers import check_gradient

rng = np.random.default_rng(7)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(rng.standard_normal((4, 6)))
        s = F.softmax(x, axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_shift_invariance(self):
        x = rng.standard_normal((3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(rng.standard_normal((3, 5)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_log_softmax_stable_at_extremes(self):
        x = Tensor(np.array([[0.0, -1e6], [1e6, 0.0]]))
        out = F.log_softmax(x).data
        # The chosen-class log-prob must be finite (0 here); the other entry
        # may legitimately be -inf at this magnitude but never NaN.
        assert out[0, 0] == pytest.approx(0.0)
        assert out[1, 0] == pytest.approx(0.0)
        assert not np.any(np.isnan(out))

    def test_logsumexp_value(self):
        x = rng.standard_normal((4, 3))
        expected = np.log(np.exp(x).sum(axis=1))
        assert np.allclose(F.logsumexp(Tensor(x), axis=1).data, expected)

    def test_softmax_gradient(self):
        check_gradient(
            lambda x: (F.softmax(x, axis=-1) ** 2).sum(), rng.standard_normal((3, 4))
        )

    def test_log_softmax_gradient(self):
        acts = np.array([0, 2, 1])
        check_gradient(
            lambda x: F.gather_log_probs(F.log_softmax(x, axis=-1), acts).sum(),
            rng.standard_normal((3, 4)),
        )

    def test_softmax_axis0(self):
        x = Tensor(rng.standard_normal((4, 2)))
        assert np.allclose(F.softmax(x, axis=0).data.sum(axis=0), 1.0)


class TestSpmm:
    def test_value_matches_dense(self):
        a = sp.random(6, 6, density=0.4, random_state=3, format="csr")
        x = Tensor(rng.standard_normal((6, 3)))
        assert np.allclose(F.spmm(a, x).data, a.toarray() @ x.data)

    def test_gradient(self):
        a = sp.random(5, 5, density=0.5, random_state=1, format="csr")
        check_gradient(lambda x: (F.spmm(a, x) ** 2).sum(), rng.standard_normal((5, 2)))


class TestLosses:
    def test_bce_with_logits_matches_reference(self):
        z = rng.standard_normal(20)
        y = (rng.random(20) > 0.5).astype(float)
        p = 1.0 / (1.0 + np.exp(-z))
        expected = -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()
        got = F.bce_with_logits(Tensor(z), y).item()
        assert got == pytest.approx(expected, rel=1e-9)

    def test_bce_stable_for_large_logits(self):
        z = Tensor(np.array([1e4, -1e4]))
        val = F.bce_with_logits(z, np.array([1.0, 0.0])).item()
        assert np.isfinite(val) and val < 1e-3

    def test_bce_gradient(self):
        y = np.array([1.0, 0.0, 1.0, 0.0])
        check_gradient(lambda x: F.bce_with_logits(x, y), rng.standard_normal(4))

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = F.mse(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        assert np.allclose(pred.grad, [1.0, 2.0])


class TestGatherAndEntropy:
    def test_gather_log_probs_shape_check(self):
        lp = F.log_softmax(Tensor(rng.standard_normal((2, 3, 4))))
        with pytest.raises(ValueError):
            F.gather_log_probs(lp, np.zeros((2, 2), dtype=int))

    def test_gather_log_probs_values(self):
        lp = F.log_softmax(Tensor(rng.standard_normal((2, 3))))
        acts = np.array([2, 0])
        out = F.gather_log_probs(lp, acts)
        assert out.shape == (2,)
        assert out.data[0] == lp.data[0, 2]

    def test_entropy_uniform_is_log_k(self):
        logits = Tensor(np.zeros((2, 8)))
        ent = F.categorical_entropy(F.log_softmax(logits))
        assert np.allclose(ent.data, np.log(8))

    def test_entropy_onehot_is_zero(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        ent = F.categorical_entropy(F.log_softmax(logits))
        assert ent.data[0] == pytest.approx(0.0, abs=1e-6)


class TestDropout:
    def test_identity_when_eval(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert np.array_equal(out.data, x.data)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))
