"""Tests for optimizers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, SGD, Tensor, clip_grad_norm
from repro.nn.module import Parameter
from repro.nn import functional as F

rng = np.random.default_rng(3)


def quadratic_loss(p: Parameter) -> Tensor:
    return ((p - 3.0) ** 2).sum()


class TestSGD:
    def test_single_step_direction(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        assert p.data[0] == pytest.approx(0.6)

    def test_momentum_accelerates(self):
        histories = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.array([0.0]))
            opt = SGD([p], lr=0.05, momentum=momentum)
            for _ in range(10):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            histories[momentum] = p.data[0]
        assert histories[0.9] > histories[0.0]

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert p.data[0] == pytest.approx(3.0, abs=1e-2)

    def test_bias_correction_first_step_magnitude(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        # First Adam step has magnitude ~lr regardless of gradient scale.
        assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        (p * Tensor(np.zeros(1))).sum().backward()  # zero task gradient
        opt.step()
        assert p.data[0] < 5.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_linear_regression_training(self):
        lin = Linear(3, 1, rng=0)
        true_w = np.array([[1.0], [-2.0], [0.5]])
        x = rng.standard_normal((64, 3))
        y = x @ true_w
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = F.mse(lin(Tensor(x)), y)
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3
        assert np.allclose(lin.weight.data, true_w, atol=0.05)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.5)
        assert p.grad[0] == pytest.approx(0.5)

    def test_clips_to_max_norm(self):
        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.zeros(2))
        p1.grad = np.array([3.0, 0.0])
        p2.grad = np.array([0.0, 4.0])
        norm = clip_grad_norm([p1, p2], 1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt((p1.grad**2).sum() + (p2.grad**2).sum())
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_handles_missing_grads(self):
        p = Parameter(np.zeros(2))
        assert clip_grad_norm([p], 1.0) == 0.0
