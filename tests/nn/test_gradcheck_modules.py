"""Numerical gradient checks for every composite module.

Each check compares the autodiff gradient of a scalar loss w.r.t. the
module *input* and w.r.t. one representative *parameter* against central
differences — the strongest single guarantee that forward and backward
implementations agree.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.gnn.gcn import GCNLayer
from repro.gnn.sage import SAGELayer, row_normalized_adjacency
from repro.nn import (
    BahdanauAttention,
    BiLSTM,
    LSTM,
    LSTMCell,
    LayerNorm,
    Linear,
    MLP,
    PReLU,
    Tensor,
    TransformerXLLayer,
)
from tests.helpers import check_gradient, numerical_gradient

rng = np.random.default_rng(99)


def check_param_gradient(module, param, loss_fn, tol=1e-4):
    """Numerical-vs-autodiff gradient of ``loss_fn()`` w.r.t. ``param``."""
    module.zero_grad()
    loss_fn().backward()
    auto = param.grad.copy()

    base = param.data.copy()
    num = np.zeros_like(base)
    eps = 1e-6
    flat_base = base.reshape(-1)
    flat_num = num.reshape(-1)
    for i in range(flat_base.size):
        for sign, store in ((+1, "p"), (-1, "m")):
            flat = base.copy().reshape(-1)
            flat[i] += sign * eps
            param.data = flat.reshape(base.shape)
            val = float(loss_fn().data)
            if store == "p":
                fp = val
            else:
                fm = val
        flat_num[i] = (fp - fm) / (2 * eps)
    param.data = base
    err = np.abs(num - auto).max()
    assert err < tol, f"parameter gradient mismatch: {err}"


class TestLinearFamily:
    def test_linear_input_grad(self):
        lin = Linear(4, 3, rng=0)
        check_gradient(lambda x: (lin(x) ** 2).sum(), rng.standard_normal((2, 4)))

    def test_linear_weight_grad(self):
        lin = Linear(3, 2, rng=1)
        x = Tensor(rng.standard_normal((4, 3)))
        check_param_gradient(lin, lin.weight, lambda: (lin(x) ** 2).sum())

    def test_mlp_weight_grad(self):
        mlp = MLP([3, 4, 1], activation="tanh", rng=2)
        x = Tensor(rng.standard_normal((2, 3)))
        check_param_gradient(mlp, mlp.layers[0].bias, lambda: (mlp(x) ** 2).sum())

    def test_prelu_slope_grad(self):
        act = PReLU()
        x = Tensor(rng.standard_normal((6,)) - 0.5)
        check_param_gradient(act, act.slope, lambda: (act(x) ** 2).sum())

    def test_layernorm_gamma_grad(self):
        ln = LayerNorm(5)
        x = Tensor(rng.standard_normal((3, 5)))
        check_param_gradient(ln, ln.gamma, lambda: (ln(x) ** 2).sum())


class TestRecurrent:
    def test_lstm_cell_weight_grad(self):
        cell = LSTMCell(2, 3, rng=3)
        x = Tensor(rng.standard_normal((2, 2)))

        def loss():
            h, c = cell(x)
            return (h * h + c * c).sum()

        check_param_gradient(cell, cell.bias, loss)

    def test_lstm_input_grad(self):
        lstm = LSTM(2, 3, rng=4)

        def f(x):
            out, _ = lstm(x)
            return (out * out).sum()

        check_gradient(f, rng.standard_normal((4, 1, 2)), tol=1e-4)

    def test_lstm_recurrent_weight_grad(self):
        lstm = LSTM(2, 2, rng=5)
        x = Tensor(rng.standard_normal((3, 1, 2)))

        def loss():
            out, _ = lstm(x)
            return (out * out).sum()

        check_param_gradient(lstm, lstm.cell.w_hh, loss)

    def test_bilstm_input_grad(self):
        bi = BiLSTM(2, 4, rng=6)

        def f(x):
            out, _ = bi(x)
            return (out * out).sum()

        check_gradient(f, rng.standard_normal((3, 1, 2)), tol=1e-4)


class TestAttention:
    def test_attention_memory_grad(self):
        att = BahdanauAttention(3, 2, 4, rng=7)
        q = Tensor(rng.standard_normal((1, 2)))
        check_gradient(lambda m: (att(m, q) ** 2).sum(), rng.standard_normal((4, 1, 3)), tol=1e-4)

    def test_attention_query_grad(self):
        att = BahdanauAttention(3, 2, 4, rng=8)
        mem = Tensor(rng.standard_normal((4, 1, 3)))
        check_gradient(lambda q: (att(mem, q) ** 2).sum(), rng.standard_normal((1, 2)), tol=1e-4)

    def test_attention_v_param_grad(self):
        att = BahdanauAttention(3, 2, 4, rng=9)
        mem = Tensor(rng.standard_normal((4, 1, 3)))
        q = Tensor(rng.standard_normal((1, 2)))
        check_param_gradient(att, att.v, lambda: (att(mem, q) ** 2).sum())


class TestGraphEncoders:
    def _adj(self, n=5):
        a = sp.random(n, n, density=0.5, random_state=0, format="csr")
        a.data[:] = 1.0
        return a

    def test_gcn_layer_input_grad(self):
        layer = GCNLayer(3, 4, rng=10)
        adj = self._adj()
        check_gradient(lambda x: (layer(x, adj) ** 2).sum(), rng.standard_normal((5, 3)), tol=1e-4)

    def test_gcn_layer_weight_grad(self):
        layer = GCNLayer(3, 2, rng=11)
        adj = self._adj()
        x = Tensor(rng.standard_normal((5, 3)))
        check_param_gradient(layer, layer.linear.weight, lambda: (layer(x, adj) ** 2).sum())

    def test_sage_layer_input_grad(self):
        layer = SAGELayer(3, 4, rng=12)
        adj = row_normalized_adjacency(self._adj())
        check_gradient(
            lambda x: (layer(x, adj) ** 2).sum(), rng.standard_normal((5, 3)) + 0.3, tol=1e-4
        )


class TestTransformer:
    def test_txl_layer_input_grad(self):
        layer = TransformerXLLayer(4, 2, 8, rng=13)
        check_gradient(
            lambda x: (layer(x) ** 2).sum(), rng.standard_normal((3, 1, 4)), tol=1e-3
        )

    def test_txl_layer_rel_bias_grad(self):
        layer = TransformerXLLayer(4, 2, 8, rng=14)
        x = Tensor(rng.standard_normal((3, 1, 4)))
        check_param_gradient(
            layer, layer.attn.rel_bias, lambda: (layer(x) ** 2).sum(), tol=1e-3
        )

    def test_txl_layer_with_memory_grad(self):
        layer = TransformerXLLayer(4, 2, 8, rng=15)
        memory = rng.standard_normal((2, 1, 4))
        check_gradient(
            lambda x: (layer(x, memory) ** 2).sum(),
            rng.standard_normal((3, 1, 4)),
            tol=1e-3,
        )


class TestPlacerLogProb:
    def test_segment_placer_logp_grad_wrt_reps(self):
        from repro.placers import SegmentSeq2SeqPlacer

        placer = SegmentSeq2SeqPlacer(3, 3, hidden_size=4, segment_size=2, action_embed_dim=2, rng=16)
        actions = np.array([[0, 2, 1, 0, 1]])

        def f(reps):
            out = placer.run(reps, actions=actions)
            return out.log_probs.sum()

        check_gradient(f, rng.standard_normal((5, 3)), tol=1e-4)
