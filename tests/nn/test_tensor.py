"""Unit + gradient-check tests for the autodiff tensor core."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, stack, where, maximum, minimum, no_grad, is_grad_enabled
from tests.helpers import check_gradient

rng = np.random.default_rng(42)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert not t.requires_grad

    def test_construction_from_tensor_copies_data_reference(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_on_vector_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_stops_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_grad_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones(3))


class TestArithmeticGradients:
    def test_add(self):
        check_gradient(lambda x: (x + 3.0).sum(), rng.standard_normal((3, 4)))

    def test_mul(self):
        check_gradient(lambda x: (x * x).sum(), rng.standard_normal((3, 4)))

    def test_div(self):
        check_gradient(lambda x: (1.0 / (x + 10.0)).sum(), rng.standard_normal((3, 4)))

    def test_pow(self):
        check_gradient(lambda x: (x**3).sum(), rng.standard_normal((5,)))

    def test_neg_sub(self):
        check_gradient(lambda x: (5.0 - x).sum(), rng.standard_normal((4,)))

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = (3.0 - x) + (6.0 / x)
        y.backward(np.ones(1))
        assert np.allclose(x.grad, -1.0 - 6.0 / 4.0)

    def test_broadcast_add_gradient(self):
        x0 = rng.standard_normal((1, 4))
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda x: ((x + other) ** 2).sum(), x0)

    def test_broadcast_scalar_axis(self):
        x0 = rng.standard_normal((3, 1))
        other = Tensor(rng.standard_normal((3, 5)))
        check_gradient(lambda x: (x * other).sum(), x0)


class TestMatmulGradients:
    def test_2d_2d(self):
        w = Tensor(rng.standard_normal((4, 2)))
        check_gradient(lambda x: ((x @ w) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_2d_2d_rhs(self):
        a = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda x: ((a @ x) ** 2).sum(), rng.standard_normal((4, 2)))

    def test_batched_lhs(self):
        w = Tensor(rng.standard_normal((4, 2)))
        check_gradient(lambda x: ((x @ w) ** 2).sum(), rng.standard_normal((2, 3, 4)))

    def test_batched_rhs_broadcast(self):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        check_gradient(lambda x: ((a @ x) ** 2).sum(), rng.standard_normal((4, 2)))

    def test_1d_rhs(self):
        v = rng.standard_normal(4)
        a = Tensor(rng.standard_normal((2, 3, 4)))
        check_gradient(lambda x: ((a @ x) ** 2).sum(), v)

    def test_1d_lhs(self):
        m = Tensor(rng.standard_normal((4, 3)))
        check_gradient(lambda x: ((x @ m) ** 2).sum(), rng.standard_normal(4))

    def test_vector_dot(self):
        v = Tensor(rng.standard_normal(4))
        check_gradient(lambda x: (x @ v) ** 2, rng.standard_normal(4))


class TestElementwiseGradients:
    def test_exp_log(self):
        check_gradient(lambda x: (x.exp() + (x + 10.0).log()).sum(), rng.standard_normal((3,)))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), rng.standard_normal((7,)))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), rng.standard_normal((7,)))

    def test_sigmoid_extreme_values_stable(self):
        y = Tensor(np.array([-1000.0, 1000.0])).sigmoid()
        assert np.all(np.isfinite(y.data))
        assert y.data[0] == pytest.approx(0.0)
        assert y.data[1] == pytest.approx(1.0)

    def test_relu(self):
        check_gradient(lambda x: x.relu().sum(), rng.standard_normal((9,)) + 0.1)

    def test_abs(self):
        check_gradient(lambda x: x.abs().sum(), rng.standard_normal((9,)) + 0.05)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt().sum(), rng.random((5,)) + 0.5)

    def test_clip_gradient_masked(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        assert np.array_equal(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), rng.standard_normal((3, 4)))

    def test_mean(self):
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), rng.standard_normal((3, 4)))

    def test_mean_value(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(x.mean(axis=1).data, [1.0, 4.0])

    def test_max(self):
        x0 = rng.standard_normal((3, 4))
        check_gradient(lambda x: x.max(axis=1).sum(), x0)

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(6) ** 2).sum(), rng.standard_normal((2, 3)))

    def test_transpose(self):
        a = Tensor(rng.standard_normal((3, 2)))
        check_gradient(lambda x: ((x.T + a) ** 2).sum(), rng.standard_normal((2, 3)))

    def test_transpose_axes(self):
        check_gradient(
            lambda x: (x.transpose(2, 0, 1) ** 2).sum(), rng.standard_normal((2, 3, 4))
        )

    def test_swapaxes(self):
        x = Tensor(rng.standard_normal((2, 3, 4)))
        assert x.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_slice(self):
        check_gradient(lambda x: (x[1:3] ** 2).sum(), rng.standard_normal((5, 2)))

    def test_getitem_fancy_accumulates_duplicates(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x[np.array([0, 0, 1])]
        y.sum().backward()
        assert np.array_equal(x.grad, [2.0, 1.0])

    def test_gather_rows(self):
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        out = x.gather_rows(np.array([2, 0]))
        assert out.shape == (2, 3)
        out.sum().backward()
        assert x.grad[1].sum() == 0.0

    def test_broadcast_to(self):
        check_gradient(lambda x: (x.broadcast_to((4, 3)) ** 2).sum(), rng.standard_normal((1, 3)))

    def test_flatten(self):
        assert Tensor(np.zeros((2, 3))).flatten().shape == (6,)


class TestCombinators:
    def test_concat_gradients(self):
        a0 = rng.standard_normal((2, 3))
        b = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        check_gradient(lambda a: (concat([a, b], axis=1) ** 2).sum(), a0)

    def test_stack_gradients(self):
        a0 = rng.standard_normal((3,))
        b = Tensor(rng.standard_normal((3,)))
        check_gradient(lambda a: (stack([a, b], axis=0) ** 2).sum(), a0)

    def test_where(self):
        cond = np.array([True, False, True])
        b = Tensor(np.zeros(3))
        check_gradient(lambda x: where(cond, x, b).sum(), rng.standard_normal(3))

    def test_maximum_minimum(self):
        b = Tensor(np.zeros(5))
        check_gradient(lambda x: maximum(x, b).sum(), rng.standard_normal(5) + 0.01)
        check_gradient(lambda x: minimum(x, b).sum(), rng.standard_normal(5) + 0.01)

    def test_maximum_tie_split(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = Tensor(np.array([1.0]), requires_grad=True)
        maximum(x, y).sum().backward()
        assert np.allclose(x.grad, 0.5) and np.allclose(y.grad, 0.5)


class TestAutodiffMachinery:
    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0
        y.sum().backward()
        assert np.allclose(x.grad, 2 * 2.0 + 3.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).sum().backward()
        assert np.allclose(x.grad, 2 * 3 * 2 * 1.5)

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_no_grad_context(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = (x * 2).sum()
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_no_grad_nesting(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_comparisons_return_arrays(self):
        x = Tensor(np.array([1.0, 3.0]))
        assert (x > 2.0).dtype == bool
        assert (x <= 3.0).all()
