"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init

rng = np.random.default_rng(0)


class TestXavier:
    def test_bounds(self):
        w = init.xavier_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_custom_shape(self):
        w = init.xavier_uniform(rng, 10, 10, shape=(2, 10, 10))
        assert w.shape == (2, 10, 10)

    def test_scale_shrinks_with_fan(self):
        small = np.abs(init.xavier_uniform(rng, 4, 4)).max()
        large = np.abs(init.xavier_uniform(rng, 4000, 4000)).max()
        assert large < small


class TestOrthogonal:
    def test_square_is_orthogonal(self):
        q = init.orthogonal(rng, 16, 16)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_tall_has_orthonormal_columns(self):
        q = init.orthogonal(rng, 20, 8)
        assert q.shape == (20, 8)
        assert np.allclose(q.T @ q, np.eye(8), atol=1e-10)

    def test_wide_has_orthonormal_rows(self):
        q = init.orthogonal(rng, 8, 20)
        assert q.shape == (8, 20)
        assert np.allclose(q @ q.T, np.eye(8), atol=1e-10)

    def test_gain_scales(self):
        q = init.orthogonal(rng, 6, 6, gain=3.0)
        assert np.allclose(q @ q.T, 9.0 * np.eye(6), atol=1e-9)


class TestUniformZeros:
    def test_uniform_range(self):
        w = init.uniform(rng, (100,), scale=0.2)
        assert np.abs(w).max() <= 0.2

    def test_zeros(self):
        assert np.array_equal(init.zeros((3, 2)), np.zeros((3, 2)))
