"""Additional edge-case coverage for the tensor core."""

import numpy as np
import pytest

from repro.nn import Tensor
from tests.helpers import check_gradient

rng = np.random.default_rng(123)


class TestShapeEdges:
    def test_reshape_minus_one(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.reshape(2, -1).shape == (2, 12)

    def test_reshape_tuple_argument(self):
        x = Tensor(np.zeros(6))
        assert x.reshape((2, 3)).shape == (2, 3)

    def test_sum_multiple_axes(self):
        check_gradient(
            lambda x: (x.sum(axis=(0, 2)) ** 2).sum(), rng.standard_normal((2, 3, 4))
        )

    def test_sum_negative_axis(self):
        check_gradient(
            lambda x: (x.sum(axis=-1) ** 2).sum(), rng.standard_normal((3, 4))
        )

    def test_max_keepdims_gradient(self):
        x0 = rng.standard_normal((3, 4))
        check_gradient(lambda x: (x.max(axis=1, keepdims=True) * x).sum(), x0)

    def test_mean_multiple_axes_value(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4))
        assert np.allclose(x.mean(axis=(0, 2)).data, x.data.mean(axis=(0, 2)))

    def test_transpose_reverses_by_default(self):
        assert Tensor(np.zeros((2, 3, 4))).T.shape == (4, 3, 2)


class TestNumericalEdges:
    def test_zero_size_leading_ops(self):
        x = Tensor(np.zeros((0, 3)), requires_grad=True)
        y = (x * 2.0).sum()
        y.backward()
        assert x.grad.shape == (0, 3)

    def test_scalar_tensor_arithmetic(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a * a).backward()
        assert a.grad == pytest.approx(12.0)

    def test_grad_not_tracked_on_constants(self):
        a = Tensor(np.ones(3))
        b = a * 2 + 1
        assert not b.requires_grad and b._parents == ()

    def test_inplace_data_mutation_visible(self):
        """Optimizers mutate .data in place; results must reflect it."""
        a = Tensor(np.ones(2), requires_grad=True)
        a.data -= 0.5
        assert np.allclose((a * 2).data, 1.0)

    def test_backward_twice_accumulates(self):
        a = Tensor(np.ones(2), requires_grad=True)
        (a * 3).sum().backward()
        (a * 3).sum().backward()
        assert np.allclose(a.grad, 6.0)

    def test_clip_full_passthrough_inside_range(self):
        x0 = rng.standard_normal((5,)) * 0.1
        check_gradient(lambda x: x.clip(-1, 1).sum(), x0)

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4
