"""Tests for Module/Parameter plumbing, Linear/MLP, activations, norm."""

import numpy as np
import pytest

from repro.nn import MLP, LayerNorm, Linear, Module, Parameter, PReLU, Tensor, apply_activation
from tests.helpers import check_gradient

rng = np.random.default_rng(11)


class TestModuleRegistry:
    def test_parameters_discovered_recursively(self):
        mlp = MLP([4, 8, 2], rng=0)
        names = [n for n, _ in mlp.named_parameters()]
        assert "layer0.weight" in names and "layer1.bias" in names
        assert len(mlp.parameters()) == 4

    def test_num_parameters(self):
        lin = Linear(4, 3, rng=0)
        assert lin.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self):
        a = MLP([4, 8, 2], rng=0)
        b = MLP([4, 8, 2], rng=99)
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.standard_normal((5, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_load_state_dict_strict_mismatch(self):
        a = Linear(4, 3, rng=0)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(4, 3, rng=0)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_train_eval_propagates(self):
        mlp = MLP([2, 2, 2], rng=0)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())

    def test_zero_grad_clears(self):
        lin = Linear(3, 2, rng=0)
        lin(Tensor(np.ones((1, 3)))).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLinearMLP:
    def test_linear_shapes(self):
        lin = Linear(6, 4, rng=0)
        assert lin(Tensor(np.zeros((2, 3, 6)))).shape == (2, 3, 4)

    def test_linear_no_bias(self):
        lin = Linear(3, 2, bias=False, rng=0)
        assert len(lin.parameters()) == 1
        assert np.allclose(lin(Tensor(np.zeros((1, 3)))).data, 0.0)

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_gradcheck(self):
        mlp = MLP([3, 5, 1], activation="tanh", rng=2)
        check_gradient(lambda x: mlp(x).sum(), rng.standard_normal((2, 3)))


class TestActivations:
    def test_prelu_positive_passthrough(self):
        act = PReLU(init_slope=0.25)
        x = Tensor(np.array([2.0, -4.0]))
        assert np.allclose(act(x).data, [2.0, -1.0])

    def test_prelu_slope_is_learnable(self):
        act = PReLU()
        x = Tensor(np.array([-1.0]), requires_grad=True)
        act(x).sum().backward()
        assert act.slope.grad is not None
        assert act.slope.grad == pytest.approx(-1.0)

    def test_apply_activation_unknown(self):
        with pytest.raises(ValueError):
            apply_activation(Tensor(np.zeros(2)), "swish")

    def test_apply_activation_identity(self):
        x = Tensor(np.ones(3))
        assert apply_activation(x, "identity") is x


class TestLayerNorm:
    def test_output_normalized(self):
        ln = LayerNorm(8)
        x = Tensor(rng.standard_normal((4, 8)) * 5 + 3)
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradcheck(self):
        ln = LayerNorm(5)
        check_gradient(lambda x: (ln(x) ** 2).sum(), rng.standard_normal((2, 5)))
