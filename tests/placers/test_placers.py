"""Tests shared across all placer designs plus design-specific behaviour."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.placers import (
    MLPGrouper,
    MLPPlacer,
    SegmentSeq2SeqPlacer,
    TransformerXLPlacer,
    sample_categorical,
)
from repro.placers.base import logits_to_choice

rng = np.random.default_rng(17)

N_OPS, IN_DIM, N_DEV = 37, 9, 5


def make_placers():
    return [
        ("segment", SegmentSeq2SeqPlacer(IN_DIM, N_DEV, hidden_size=16, segment_size=8, action_embed_dim=4, rng=0)),
        ("plain", SegmentSeq2SeqPlacer(IN_DIM, N_DEV, hidden_size=16, segment_size=None, action_embed_dim=4, rng=1)),
        ("txl", TransformerXLPlacer(IN_DIM, N_DEV, model_dim=16, n_layers=1, n_heads=2, segment_size=8, rng=2)),
        ("mlp", MLPPlacer(IN_DIM, N_DEV, hidden_size=8, rng=3)),
    ]


@pytest.fixture
def reps():
    return Tensor(rng.standard_normal((N_OPS, IN_DIM)), requires_grad=False)


@pytest.mark.parametrize("name,placer", make_placers(), ids=lambda p: p if isinstance(p, str) else "")
class TestPlacerContract:
    def test_sample_shapes_and_ranges(self, name, placer, reps):
        out = placer.run(reps, n_samples=4, rng=np.random.default_rng(0))
        assert out.actions.shape == (4, N_OPS)
        assert out.actions.dtype == np.int64
        assert out.actions.min() >= 0 and out.actions.max() < N_DEV
        assert out.log_probs.shape == (4, N_OPS)
        assert out.entropy.shape == (4, N_OPS)

    def test_log_probs_negative(self, name, placer, reps):
        out = placer.run(reps, n_samples=2, rng=np.random.default_rng(1))
        assert np.all(out.log_probs.data <= 0)

    def test_entropy_bounded_by_log_k(self, name, placer, reps):
        out = placer.run(reps, n_samples=2, rng=np.random.default_rng(2))
        assert np.all(out.entropy.data >= -1e-9)
        assert np.all(out.entropy.data <= np.log(N_DEV) + 1e-9)

    def test_teacher_forcing_reproduces_logp(self, name, placer, reps):
        out = placer.run(reps, n_samples=3, rng=np.random.default_rng(3))
        scored = placer.run(reps, actions=out.actions)
        assert np.allclose(out.log_probs.data, scored.log_probs.data, atol=1e-10)

    def test_greedy_is_deterministic(self, name, placer, reps):
        a = placer.run(reps, n_samples=1, greedy=True, rng=np.random.default_rng(0))
        b = placer.run(reps, n_samples=1, greedy=True, rng=np.random.default_rng(9))
        assert np.array_equal(a.actions, b.actions)

    def test_gradients_reach_parameters(self, name, placer, reps):
        out = placer.run(reps, n_samples=2, rng=np.random.default_rng(4))
        loss = -(out.log_probs.mean()) - 0.01 * out.entropy.mean()
        placer.zero_grad()
        loss.backward()
        grads = [p.grad is not None for p in placer.parameters()]
        assert all(grads)

    def test_actions_shape_validation(self, name, placer, reps):
        if not isinstance(placer, SegmentSeq2SeqPlacer):
            pytest.skip("only the seq2seq placer validates explicitly")
        with pytest.raises(ValueError):
            placer.run(reps, actions=np.zeros((2, 3), dtype=int))


class TestSegmentSpecifics:
    def test_segment_boundaries(self):
        placer = SegmentSeq2SeqPlacer(IN_DIM, N_DEV, hidden_size=16, segment_size=10, rng=0)
        segs = placer._segments(N_OPS)
        assert segs[0] == slice(0, 10)
        assert segs[-1] == slice(30, 37)

    def test_single_segment_when_none(self):
        placer = SegmentSeq2SeqPlacer(IN_DIM, N_DEV, hidden_size=16, segment_size=None, rng=0)
        assert placer._segments(N_OPS) == [slice(0, 37)]

    def test_invalid_segment_size(self):
        with pytest.raises(ValueError):
            SegmentSeq2SeqPlacer(IN_DIM, N_DEV, segment_size=0)

    def test_action_feedback_matters(self, reps):
        """Teacher-forcing different actions changes subsequent logits."""
        placer = SegmentSeq2SeqPlacer(IN_DIM, N_DEV, hidden_size=16, segment_size=8, rng=5)
        base = np.zeros((1, N_OPS), dtype=np.int64)
        alt = base.copy()
        alt[0, 0] = 3  # change only the first action
        lp_base = placer.run(reps, actions=base).log_probs.data
        lp_alt = placer.run(reps, actions=alt).log_probs.data
        # Later log-probs must differ (the decoder feeds actions back).
        assert not np.allclose(lp_base[0, 1:], lp_alt[0, 1:])


class TestSamplingHelpers:
    def test_sample_categorical_distribution(self):
        probs = np.tile(np.array([0.8, 0.2]), (5000, 1))
        samples = sample_categorical(probs, np.random.default_rng(0))
        assert samples.mean() == pytest.approx(0.2, abs=0.02)

    def test_sample_categorical_deterministic_onehot(self):
        probs = np.tile(np.array([0.0, 0.0, 1.0]), (10, 1))
        samples = sample_categorical(probs, np.random.default_rng(0))
        assert np.all(samples == 2)

    def test_logits_to_choice_requires_rng(self):
        with pytest.raises(ValueError):
            logits_to_choice(Tensor(np.zeros((2, 3))), None, None)


class TestGrouper:
    def test_run_shapes(self):
        g = MLPGrouper(IN_DIM, 6, hidden_size=8, rng=0)
        feats = Tensor(rng.standard_normal((N_OPS, IN_DIM)))
        groups, logp, ent = g.run(feats, n_samples=3, rng=np.random.default_rng(0))
        assert groups.shape == (3, N_OPS)
        assert groups.max() < 6

    def test_group_embeddings_means(self):
        feats = np.array([[2.0, 0.0], [4.0, 0.0], [0.0, 6.0]])
        groups = np.array([[0, 0, 1], [1, 1, 1]])
        emb = MLPGrouper.group_embeddings(feats, groups, 2)
        assert np.allclose(emb[0, 0], [3.0, 0.0])
        assert np.allclose(emb[0, 1], [0.0, 6.0])
        assert np.allclose(emb[1, 0], 0.0)  # empty group
        assert np.allclose(emb[1, 1], feats.mean(axis=0))
