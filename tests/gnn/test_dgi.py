"""Tests for Deep Graph Infomax pre-training."""

import numpy as np
import pytest

from repro.gnn import DGI, GCNEncoder, node_permutation, pretrain_encoder
from repro.graph import FeatureExtractor, normalized_adjacency
from repro.nn import Tensor
from tests.helpers import tiny_graph

rng = np.random.default_rng(31)


@pytest.fixture
def setup():
    g = tiny_graph()
    x = FeatureExtractor()(g)
    adj = normalized_adjacency(g)
    return g, x, adj


class TestCorruption:
    def test_permutation_preserves_rows(self):
        x = rng.standard_normal((10, 4))
        xc = node_permutation(x, rng=np.random.default_rng(0))
        assert sorted(map(tuple, xc)) == sorted(map(tuple, x))

    def test_permutation_actually_shuffles(self):
        x = np.arange(40.0).reshape(10, 4)
        xc = node_permutation(x, rng=np.random.default_rng(0))
        assert not np.array_equal(xc, x)


class TestDGIComponents:
    def test_readout_shape_and_range(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=0)
        dgi = DGI(enc, rng=1)
        s = dgi.readout(enc(x, adj))
        assert s.shape == (8,)
        assert np.all((s.data > 0) & (s.data < 1))  # sigmoid output

    def test_discriminator_logits_shape(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=0)
        dgi = DGI(enc, rng=1)
        h = enc(x, adj)
        logits = dgi.discriminator_logits(h, dgi.readout(h))
        assert logits.shape == (len(x),)

    def test_loss_positive_scalar(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=0)
        dgi = DGI(enc, rng=1)
        loss = dgi.loss(x, adj, rng=np.random.default_rng(2))
        assert loss.size == 1
        assert loss.item() > 0

    def test_loss_backward_reaches_encoder_and_disc(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=0)
        dgi = DGI(enc, rng=1)
        dgi.loss(x, adj, rng=np.random.default_rng(2)).backward()
        assert dgi.w_disc.grad is not None
        assert all(p.grad is not None for p in enc.parameters())


class TestPretraining:
    def test_loss_decreases(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, num_layers=2, rng=0)
        result = pretrain_encoder(enc, x, adj, iterations=80, seed=3)
        assert result.best_loss < result.losses[0]
        assert result.iterations == 80

    def test_restores_best_state(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, num_layers=2, rng=0)
        result = pretrain_encoder(enc, x, adj, iterations=40, seed=4)
        assert result.best_state
        current = enc.state_dict()
        for k, v in result.best_state.items():
            assert np.array_equal(current[k], v)

    def test_early_stopping_with_patience(self, setup):
        _, x, adj = setup
        enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=0)
        result = pretrain_encoder(enc, x, adj, iterations=500, patience=5, seed=5)
        assert result.iterations < 500

    def test_deterministic_given_seed(self, setup):
        _, x, adj = setup
        losses = []
        for _ in range(2):
            enc = GCNEncoder(x.shape[1], hidden_dim=8, rng=7)
            result = pretrain_encoder(enc, x, adj, iterations=20, seed=9)
            losses.append(result.losses)
        assert losses[0] == losses[1]

    def test_discriminator_learns_on_real_workload(self):
        """On a real graph the discriminator should beat chance clearly."""
        from repro.workloads import build_vgg16

        g = build_vgg16(scale=0.5)
        fx = FeatureExtractor()
        x = fx(g)
        adj = normalized_adjacency(g)
        enc = GCNEncoder(x.shape[1], hidden_dim=16, num_layers=2, rng=1)
        dgi = DGI(enc, rng=2)
        from repro.nn import Adam

        opt = Adam(dgi.parameters(), lr=1e-2)
        gen = np.random.default_rng(3)
        for _ in range(60):
            opt.zero_grad()
            dgi.loss(x, adj, gen).backward()
            opt.step()
        assert dgi.accuracy(x, adj, np.random.default_rng(4)) > 0.8
