"""Tests for GCN and GraphSAGE encoders."""

import numpy as np
import pytest

from repro.gnn import GCNEncoder, GraphSAGEEncoder
from repro.gnn.sage import row_normalized_adjacency
from repro.graph import adjacency_matrix, normalized_adjacency
from repro.nn import Tensor
from tests.helpers import tiny_graph

rng = np.random.default_rng(21)


@pytest.fixture
def graph_data():
    g = tiny_graph()
    x = rng.standard_normal((g.num_nodes, 7))
    return g, x


class TestGCNEncoder:
    def test_output_shape(self, graph_data):
        g, x = graph_data
        enc = GCNEncoder(7, hidden_dim=16, num_layers=3, rng=0)
        h = enc(x, normalized_adjacency(g))
        assert h.shape == (6, 16)
        assert enc.out_dim == 16

    def test_layer_count_validation(self):
        with pytest.raises(ValueError):
            GCNEncoder(4, num_layers=0)

    def test_three_layer_receptive_field(self, graph_data):
        """A 3-layer GCN propagates information 3 hops."""
        g, x = graph_data
        enc = GCNEncoder(7, hidden_dim=8, num_layers=3, rng=1)
        adj = normalized_adjacency(g)
        base = enc(x, adj).data.copy()
        x2 = x.copy()
        x2[g.index_of("loss")] += 10.0  # 3 hops from "a"
        changed = enc(x2, adj).data
        assert not np.allclose(base[g.index_of("a")], changed[g.index_of("a")])

    def test_one_layer_locality(self, graph_data):
        """A 1-layer GCN must NOT see beyond 1 hop."""
        g, x = graph_data
        enc = GCNEncoder(7, hidden_dim=8, num_layers=1, rng=2)
        adj = normalized_adjacency(g)
        base = enc(x, adj).data.copy()
        x2 = x.copy()
        x2[g.index_of("loss")] += 10.0  # 2+ hops from "in"
        changed = enc(x2, adj).data
        assert np.allclose(base[g.index_of("in")], changed[g.index_of("in")])

    def test_gradients_reach_all_layers(self, graph_data):
        g, x = graph_data
        enc = GCNEncoder(7, hidden_dim=8, num_layers=3, rng=3)
        out = enc(x, normalized_adjacency(g))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in enc.parameters())

    def test_accepts_tensor_input(self, graph_data):
        g, x = graph_data
        enc = GCNEncoder(7, hidden_dim=8, rng=4)
        h = enc(Tensor(x), normalized_adjacency(g))
        assert h.shape == (6, 8)


class TestGraphSAGE:
    def test_output_shape(self, graph_data):
        g, x = graph_data
        enc = GraphSAGEEncoder(7, hidden_dim=12, num_layers=2, rng=0)
        h = enc(x, adjacency_matrix(g))
        assert h.shape == (6, 12)

    def test_row_normalized_adjacency_rows_sum_to_one(self, graph_data):
        g, _ = graph_data
        mean_adj = row_normalized_adjacency(adjacency_matrix(g))
        sums = np.asarray(mean_adj.sum(axis=1)).ravel()
        assert np.allclose(sums[sums > 0], 1.0)

    def test_isolated_node_zero_neighbors(self):
        from repro.graph import CompGraph, OpNode

        g = CompGraph()
        g.add_node(OpNode("lonely", "Input"))
        enc = GraphSAGEEncoder(3, hidden_dim=4, num_layers=1, rng=1)
        h = enc(np.ones((1, 3)), adjacency_matrix(g))
        assert np.all(np.isfinite(h.data))

    def test_gradients_flow(self, graph_data):
        g, x = graph_data
        enc = GraphSAGEEncoder(7, hidden_dim=8, rng=2)
        enc(x, adjacency_matrix(g)).sum().backward()
        assert all(p.grad is not None for p in enc.parameters())
