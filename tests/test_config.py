"""Tests for configuration profiles."""

from repro.config import fast_profile, paper_profile, with_seed


class TestProfiles:
    def test_paper_profile_matches_section_4_2(self):
        cfg = paper_profile()
        assert cfg.encoder.hidden_dim == 256
        assert cfg.encoder.num_layers == 3
        assert cfg.placer.hidden_size == 512
        assert cfg.placer.segment_size == 128
        assert cfg.pretrain.iterations == 1000
        assert cfg.trainer.samples_per_policy == 10
        assert cfg.trainer.update_min_samples == 20
        assert cfg.trainer.ppo.clip_ratio == 0.2
        assert cfg.trainer.ppo.entropy_coef == 1e-3
        assert cfg.trainer.ppo.learning_rate == 3e-4
        assert cfg.trainer.ppo.epochs == 3
        assert cfg.trainer.ppo.minibatches == 4
        assert cfg.trainer.ppo.grad_clip_norm == 1.0
        assert cfg.trainer.reward.transform == "neg_sqrt"
        assert cfg.trainer.reward.ema_mu == 0.99

    def test_fast_profile_is_smaller(self):
        fast, paper = fast_profile(), paper_profile()
        assert fast.encoder.hidden_dim < paper.encoder.hidden_dim
        assert fast.placer.hidden_size < paper.placer.hidden_size
        assert fast.pretrain.iterations < paper.pretrain.iterations

    def test_fast_profile_keeps_architecture(self):
        fast = fast_profile()
        assert fast.encoder.kind == "gcn"
        assert fast.encoder.num_layers == 3
        assert fast.placer.kind == "segment_seq2seq"

    def test_with_seed(self):
        cfg = with_seed(fast_profile(), 42)
        assert cfg.seed == 42
        assert cfg.trainer.seed == 42

    def test_with_seed_copies(self):
        base = fast_profile(seed=0)
        cfg = with_seed(base, 42)
        assert base.seed == 0
        assert base.trainer.seed == 0

    def test_fast_profile_iterations_param(self):
        assert fast_profile(iterations=7).trainer.iterations == 7
