"""Guard that every example script compiles and declares a main()."""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


@pytest.mark.parametrize("filename", EXAMPLES)
class TestExamples:
    def test_compiles(self, filename):
        source = open(os.path.join(EXAMPLES_DIR, filename)).read()
        compile(source, filename, "exec")

    def test_has_main_guard(self, filename):
        source = open(os.path.join(EXAMPLES_DIR, filename)).read()
        tree = ast.parse(source)
        funcs = [n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)]
        assert "main" in funcs
        assert '__name__ == "__main__"' in source

    def test_has_docstring(self, filename):
        source = open(os.path.join(EXAMPLES_DIR, filename)).read()
        module = ast.parse(source)
        assert ast.get_docstring(module), f"{filename} needs a docstring"

    def test_imports_resolve(self, filename):
        """Every repro import in the example exists in the package."""
        source = open(os.path.join(EXAMPLES_DIR, filename)).read()
        tree = ast.parse(source)
        import importlib

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                mod = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(mod, alias.name), f"{node.module}.{alias.name}"


def test_expected_example_set():
    assert {
        "quickstart.py",
        "place_bert.py",
        "pretrain_and_transfer.py",
        "custom_workload.py",
        "compare_placers.py",
        "analyze_and_deploy.py",
    } <= set(EXAMPLES)
