"""Tests for utils: rng, timing, serialization, logging."""

import logging
import os

import numpy as np
import pytest

from repro.utils import Timer, get_logger, new_rng, spawn_rng
from repro.utils.rng import hash_seed
from repro.utils.serialization import load_state_dict, save_state_dict


class TestRng:
    def test_new_rng_from_int_deterministic(self):
        assert new_rng(7).random() == new_rng(7).random()

    def test_new_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert new_rng(g) is g

    def test_spawn_independent_streams(self):
        children = spawn_rng(new_rng(0), 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_requires_positive(self):
        with pytest.raises(ValueError):
            spawn_rng(new_rng(0), 0)

    def test_hash_seed_stable_and_distinct(self):
        assert hash_seed(1, "a") == hash_seed(1, "a")
        assert hash_seed(1, "a") != hash_seed(1, "b")
        assert 0 <= hash_seed("x") < 2**63


class TestTimer:
    def test_sections_accumulate(self):
        t = Timer()
        with t.section("a"):
            pass
        with t.section("a"):
            pass
        assert t.total("a") >= 0
        assert t.grand_total() == t.total("a")

    def test_unknown_section_is_zero(self):
        assert Timer().total("nope") == 0.0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = os.path.join(tmp_path, "ckpt")
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])

    def test_npz_suffix_optional(self, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        save_state_dict(path, {"x": np.ones(2)})
        assert np.array_equal(load_state_dict(path)["x"], np.ones(2))


class TestLogging:
    def test_namespaced_logger(self):
        log = get_logger("repro.test")
        assert log.name == "repro.test"
        assert isinstance(log, logging.Logger)
