"""Smoke tests that the full paper-scale configuration actually builds.

The paper profile (GCN-256x3, LSTM-512, segment 128) is too slow for CI
training runs on a CPU, but constructing the agents and pushing one batch
through them must work.
"""

import numpy as np
import pytest

from repro.config import paper_profile
from repro.core import (
    build_encoder_placer_agent,
    build_grouper_placer_agent,
    build_mars_agent,
)
from repro.sim import ClusterSpec
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def setting():
    return build_vgg16(scale=0.25, batch_size=4), ClusterSpec.default(), paper_profile()


class TestPaperProfile:
    def test_mars_agent_paper_scale(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        assert agent.encoder.hidden_dim == 256
        assert agent.placer.hidden_size == 512
        assert agent.placer.segment_size == 128
        rollout = agent.sample(2, np.random.default_rng(0))
        assert rollout.placements.shape == (2, graph.num_nodes)
        # Parameter count sanity: the paper-scale agent is in the millions.
        assert agent.num_parameters() > 1_000_000

    def test_encoder_placer_paper_scale(self, setting):
        graph, cluster, cfg = setting
        agent = build_encoder_placer_agent(graph, cluster, cfg)
        rollout = agent.sample(1, np.random.default_rng(1))
        assert rollout.placements.shape == (1, graph.num_nodes)

    def test_grouper_placer_paper_scale(self, setting):
        graph, cluster, cfg = setting
        agent = build_grouper_placer_agent(graph, cluster, cfg)
        rollout = agent.sample(1, np.random.default_rng(2))
        assert rollout.placements.shape == (1, graph.num_nodes)

    def test_paper_scale_ppo_pass(self, setting):
        graph, cluster, cfg = setting
        agent = build_mars_agent(graph, cluster, cfg)
        rollout = agent.sample(2, np.random.default_rng(3))
        logp, ent = agent.evaluate(rollout.internal)
        loss = -(logp.mean()) - 1e-3 * ent.mean()
        loss.backward()
        assert all(p.grad is not None for p in agent.parameters())
