"""Regression tests: default configs must not be shared across instances.

``config: PPOConfig = PPOConfig()`` in a signature evaluates once at
import time — every updater built with the default then aliases the same
mutable dataclass, so tuning one agent silently reconfigures all others.
"""

import numpy as np

from repro.rl.cem import CEMConfig, CEMUpdater
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.reinforce import ReinforceConfig, ReinforceUpdater
from repro.rl.reward import RewardConfig, RewardTracker
from repro.rl.trainer import JointTrainer, TrainerConfig
from repro.sim import ClusterSpec, PlacementEnv
from tests.helpers import tiny_graph


class _StubAgent:
    """Just enough of PolicyAgent for updater construction."""

    def __init__(self):
        from repro.nn import Tensor

        self._params = [Tensor(np.zeros(3), requires_grad=True)]

    def parameters(self):
        return self._params


def test_ppo_default_configs_independent():
    a = PPOUpdater(_StubAgent())
    b = PPOUpdater(_StubAgent())
    assert a.config is not b.config
    a.config.clip_ratio = 0.99
    assert b.config.clip_ratio == PPOConfig().clip_ratio


def test_reinforce_default_configs_independent():
    a = ReinforceUpdater(_StubAgent())
    b = ReinforceUpdater(_StubAgent())
    assert a.config is not b.config
    a.config.learning_rate = 123.0
    assert b.config.learning_rate == ReinforceConfig().learning_rate


def test_cem_default_configs_independent():
    a = CEMUpdater(_StubAgent())
    b = CEMUpdater(_StubAgent())
    assert a.config is not b.config
    a.config.elite_fraction = 0.5
    assert b.config.elite_fraction == CEMConfig().elite_fraction


def test_reward_tracker_default_configs_independent():
    a = RewardTracker()
    b = RewardTracker()
    assert a.config is not b.config
    a.config.ema_mu = 0.0
    assert b.config.ema_mu == RewardConfig().ema_mu


def test_explicit_config_still_honoured():
    cfg = PPOConfig(clip_ratio=0.42)
    assert PPOUpdater(_StubAgent(), cfg).config is cfg


def test_trainer_default_configs_independent():
    class _SamplingStub(_StubAgent):
        def sample(self, n, rng):  # pragma: no cover - never called here
            raise NotImplementedError

    env = PlacementEnv(tiny_graph(), ClusterSpec.default())
    a = JointTrainer(_SamplingStub(), env)
    b = JointTrainer(_SamplingStub(), env)
    assert a.config is not b.config
    a.config.iterations = 7
    assert b.config.iterations == TrainerConfig().iterations
