"""Edge-case tests for the training loop and environment determinism."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import fast_profile
from repro.core import build_mars_agent
from repro.rl import JointTrainer
from repro.sim import ClusterSpec, PlacementEnv
from repro.workloads import build_vgg16


@pytest.fixture(scope="module")
def setting():
    graph = build_vgg16(scale=0.25, batch_size=4)
    return graph, ClusterSpec.default()


class TestTrainerEdges:
    def test_no_update_before_min_samples(self, setting):
        """With update_min_samples > total samples, parameters never move."""
        graph, cluster = setting
        cfg = fast_profile(seed=0, iterations=1)
        tc = replace(cfg.trainer, update_min_samples=10_000)
        agent = build_mars_agent(graph, cluster, cfg)
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        JointTrainer(agent, PlacementEnv(graph, cluster), tc).train()
        after = agent.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_update_changes_parameters(self, setting):
        graph, cluster = setting
        cfg = fast_profile(seed=0, iterations=2)  # 20 samples -> 1 update
        agent = build_mars_agent(graph, cluster, cfg)
        before = {k: v.copy() for k, v in agent.state_dict().items()}
        JointTrainer(agent, PlacementEnv(graph, cluster), cfg.trainer).train()
        after = agent.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)

    def test_patience_ignores_subthreshold_trickle(self, setting):
        """Improvements below patience_min_improvement do not reset patience."""
        graph, cluster = setting
        cfg = fast_profile(seed=0, iterations=50)
        tc = replace(
            cfg.trainer,
            patience_samples=20,
            patience_min_improvement=1.0,  # nothing can improve by 100%
        )
        agent = build_mars_agent(graph, cluster, cfg)
        history = JointTrainer(agent, PlacementEnv(graph, cluster), tc).train()
        # 20-sample patience with impossible improvement bar -> 2 iterations.
        assert history.total_samples == 20

    def test_history_continuation_accumulates(self, setting):
        graph, cluster = setting
        cfg = fast_profile(seed=0, iterations=2)
        env = PlacementEnv(graph, cluster)
        agent = build_mars_agent(graph, cluster, cfg)
        trainer = JointTrainer(agent, env, cfg.trainer)
        history = trainer.train()
        first_clock = history.sim_clock
        history = trainer.train(history)
        assert history.total_samples == 40
        assert history.sim_clock > first_clock


class TestEnvDeterminism:
    def test_fresh_envs_agree(self, setting):
        graph, cluster = setting
        actions = np.random.default_rng(0).integers(0, 5, graph.num_nodes)
        a = PlacementEnv(graph, cluster).evaluate(actions)
        b = PlacementEnv(graph, cluster).evaluate(actions)
        assert a.per_step_time == b.per_step_time
        assert a.wall_clock == b.wall_clock

    def test_protocol_seed_changes_noise(self, setting):
        from repro.sim import MeasurementProtocol

        graph, cluster = setting
        actions = np.zeros(graph.num_nodes, dtype=int)
        a = PlacementEnv(graph, cluster, protocol=MeasurementProtocol(seed=1)).evaluate(actions)
        b = PlacementEnv(graph, cluster, protocol=MeasurementProtocol(seed=2)).evaluate(actions)
        assert a.per_step_time != b.per_step_time

    def test_final_run_matches_repeat(self, setting):
        graph, cluster = setting
        actions = np.zeros(graph.num_nodes, dtype=int)
        env = PlacementEnv(graph, cluster)
        assert env.final_run(actions) == env.final_run(actions)


class TestHumanExpertOnSeq2Seq:
    def test_rnn_pattern_detected(self):
        from repro.core import human_expert_placement
        from repro.workloads import build_seq2seq

        graph = build_seq2seq(scale=0.3, batch_size=8)
        cluster = ClusterSpec.default()
        p = human_expert_placement(graph, cluster)
        assert p.device_of(graph.index_of("enc/l0/cell_t0")) == 0
        assert p.device_of(graph.index_of("enc/l1/cell_t0")) == 1
