"""Tests for the cross-entropy-method updater (Post-style extension)."""

import numpy as np
import pytest

from repro.rl.cem import CEMConfig, CEMUpdater
from tests.rl.test_ppo import BanditAgent, make_batch


class TestCEMConfig:
    def test_elite_fraction_validated(self):
        with pytest.raises(ValueError):
            CEMConfig(elite_fraction=0.0)
        with pytest.raises(ValueError):
            CEMConfig(elite_fraction=1.5)


class TestCEMUpdater:
    def test_policy_concentrates_on_elite_action(self):
        agent = BanditAgent(4)
        updater = CEMUpdater(agent, CEMConfig(elite_fraction=0.25, learning_rate=0.1))
        rng = np.random.default_rng(0)
        for _ in range(60):
            rollout, adv = make_batch(agent, rng, lambda a: 1.0 if a == 3 else 0.0)
            updater.update(rollout, adv)
        probs = np.exp(agent.logits.data - agent.logits.data.max())
        probs /= probs.sum()
        assert probs[3] > 0.8

    def test_elite_count_at_least_one(self):
        agent = BanditAgent(3)
        updater = CEMUpdater(agent, CEMConfig(elite_fraction=0.01))
        rollout, adv = make_batch(agent, np.random.default_rng(1), lambda a: float(a))
        stats = updater.update(rollout, adv)
        assert stats.passes == 1

    def test_trainer_accepts_cem_algorithm(self):
        from dataclasses import replace

        from repro.config import fast_profile
        from repro.core import build_mars_agent
        from repro.rl import JointTrainer
        from repro.sim import ClusterSpec, PlacementEnv
        from repro.workloads import build_vgg16

        graph = build_vgg16(scale=0.25, batch_size=4)
        cluster = ClusterSpec.default()
        cfg = fast_profile(seed=0, iterations=2)
        tc = replace(cfg.trainer, algorithm="cem")
        agent = build_mars_agent(graph, cluster, cfg)
        history = JointTrainer(agent, PlacementEnv(graph, cluster), tc).train()
        assert len(history.records) == 2
