"""Tests for PPO and REINFORCE updaters on a contrived bandit policy."""

import numpy as np
import pytest

from repro.nn import Parameter, Tensor
from repro.nn.functional import log_softmax
from repro.rl.policy import AgentRollout, PolicyAgent
from repro.rl.ppo import PPOConfig, PPOUpdater
from repro.rl.reinforce import ReinforceUpdater
from repro.utils.rng import new_rng


class BanditAgent(PolicyAgent):
    """A single-op, K-device bandit: one learnable logit vector."""

    def __init__(self, k: int = 4):
        super().__init__()
        self.num_ops = 1
        self.num_devices = k
        self.logits = Parameter(np.zeros(k))

    def _dist(self, batch):
        return log_softmax(self.logits.reshape(1, -1).broadcast_to((batch, self.num_devices)), axis=-1)

    def sample(self, n_samples, rng, greedy=False):
        rng = new_rng(rng)
        probs = np.exp(self._dist(1).data[0])
        actions = rng.choice(self.num_devices, size=(n_samples, 1), p=probs / probs.sum())
        lp = self._dist(n_samples).data[np.arange(n_samples), actions[:, 0]][:, None]
        return AgentRollout(placements=actions, internal={"placement": actions}, old_logp=lp)

    def evaluate(self, internal):
        actions = internal["placement"]
        b = actions.shape[0]
        lp_full = self._dist(b)
        idx = (np.arange(b), actions[:, 0])
        logp = lp_full[idx].reshape(b, 1)
        p = lp_full.exp()
        ent = -(p * lp_full).sum(axis=-1).reshape(b, 1).broadcast_to((b, 1))
        return logp, ent


def make_batch(agent, rng, reward_for_action):
    rollout = agent.sample(32, rng)
    rewards = np.array([reward_for_action(a) for a in rollout.placements[:, 0]])
    advantages = rewards - rewards.mean()
    return rollout, advantages


class TestPPOUpdater:
    def test_policy_moves_toward_rewarded_action(self):
        agent = BanditAgent(4)
        updater = PPOUpdater(agent, PPOConfig(learning_rate=0.05, epochs=3, minibatches=2), seed=0)
        rng = np.random.default_rng(0)
        for _ in range(30):
            rollout, adv = make_batch(agent, rng, lambda a: 1.0 if a == 2 else 0.0)
            updater.update(rollout, adv)
        probs = np.exp(agent.logits.data - agent.logits.data.max())
        probs /= probs.sum()
        assert probs[2] > 0.8

    def test_clip_fraction_reported(self):
        agent = BanditAgent(3)
        updater = PPOUpdater(agent, PPOConfig(learning_rate=0.5, epochs=4, minibatches=1), seed=0)
        rng = np.random.default_rng(1)
        rollout, adv = make_batch(agent, rng, lambda a: float(a))
        stats = updater.update(rollout, adv)
        assert 0.0 <= stats.clip_fraction <= 1.0
        assert stats.passes == 4

    def test_zero_advantage_keeps_policy(self):
        agent = BanditAgent(3)
        before = agent.logits.data.copy()
        updater = PPOUpdater(agent, PPOConfig(entropy_coef=0.0), seed=0)
        rollout, _ = make_batch(agent, np.random.default_rng(2), lambda a: 0.0)
        updater.update(rollout, np.zeros(rollout.batch_size))
        assert np.allclose(agent.logits.data, before, atol=1e-9)

    def test_entropy_bonus_flattens_policy(self):
        agent = BanditAgent(3)
        agent.logits.data = np.array([2.0, 0.0, 0.0])
        updater = PPOUpdater(agent, PPOConfig(entropy_coef=5.0, learning_rate=0.1), seed=0)
        rollout, _ = make_batch(agent, np.random.default_rng(3), lambda a: 0.0)
        spread_before = agent.logits.data.max() - agent.logits.data.min()
        updater.update(rollout, np.zeros(rollout.batch_size))
        spread_after = agent.logits.data.max() - agent.logits.data.min()
        assert spread_after < spread_before

    def test_grad_norm_reported_preclip(self):
        agent = BanditAgent(3)
        updater = PPOUpdater(agent, PPOConfig(learning_rate=0.01, grad_clip_norm=1e-9), seed=0)
        rollout, adv = make_batch(agent, np.random.default_rng(4), lambda a: float(a))
        stats = updater.update(rollout, adv)
        # stats.grad_norm is the pre-clip norm, far above the clip threshold.
        assert stats.grad_norm > 1e-9


class TestReinforce:
    def test_policy_improves(self):
        agent = BanditAgent(4)
        updater = ReinforceUpdater(agent)
        updater.optimizer.lr = 0.1
        rng = np.random.default_rng(5)
        for _ in range(100):
            rollout, adv = make_batch(agent, rng, lambda a: 1.0 if a == 1 else 0.0)
            updater.update(rollout, adv)
        probs = np.exp(agent.logits.data - agent.logits.data.max())
        probs /= probs.sum()
        assert probs[1] > 0.7

    def test_stats_shape(self):
        agent = BanditAgent(3)
        updater = ReinforceUpdater(agent)
        rollout, adv = make_batch(agent, np.random.default_rng(6), lambda a: float(a))
        stats = updater.update(rollout, adv)
        assert stats.passes == 1
        assert np.isfinite(stats.grad_norm)
