"""Tests for reward shaping (Eq. 7) and the rollout buffer."""

import numpy as np
import pytest

from repro.rl import RewardConfig, RewardTracker, RolloutBuffer
from repro.rl.policy import AgentRollout
from repro.rl.reward import transform_runtime


class TestTransform:
    def test_neg_sqrt(self):
        assert transform_runtime(4.0) == -2.0

    def test_neg(self):
        assert transform_runtime(3.0, "neg") == -3.0

    def test_neg_log(self):
        assert transform_runtime(np.e, "neg_log") == pytest.approx(-1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            transform_runtime(0.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            transform_runtime(1.0, "huh")

    def test_monotone_decreasing(self):
        assert transform_runtime(1.0) > transform_runtime(2.0) > transform_runtime(4.0)


class TestRewardTracker:
    def test_first_baseline_equals_first_reward(self):
        """Eq. 7: B_1 = R_1 (there is no B_0)."""
        tracker = RewardTracker()
        rewards, advantages = tracker.compute([4.0])
        assert tracker.baseline == rewards[0]
        assert advantages[0] == 0.0

    def test_ema_update(self):
        tracker = RewardTracker(RewardConfig(ema_mu=0.9))
        tracker.compute([1.0])
        b1 = tracker.baseline
        tracker.compute([4.0])
        expected = (1 - 0.9) * (-2.0) + 0.9 * b1
        assert tracker.baseline == pytest.approx(expected)

    def test_better_runtime_gets_positive_advantage(self):
        tracker = RewardTracker()
        tracker.compute([4.0] * 50)  # establish baseline around -2
        _, adv = tracker.compute([1.0])  # R = -1 > baseline
        assert adv[0] > 0

    def test_worse_runtime_gets_negative_advantage(self):
        tracker = RewardTracker()
        tracker.compute([1.0] * 50)
        _, adv = tracker.compute([9.0])
        assert adv[0] < 0

    def test_normalization_unit_scale(self):
        tracker = RewardTracker(RewardConfig(advantage_normalization=True))
        _, adv = tracker.compute([1.0, 2.0, 3.0, 4.0, 5.0])
        assert adv.std() == pytest.approx(1.0, abs=1e-9)
        assert adv.mean() == pytest.approx(0.0, abs=1e-12)

    def test_baseline_persists_across_batches(self):
        tracker = RewardTracker()
        tracker.compute([1.0, 1.0])
        before = tracker.baseline
        tracker.compute([1.0])
        assert tracker.baseline == pytest.approx(before, rel=0.1)


def _rollout(batch, n_ops=4, k=4):
    rng = np.random.default_rng(batch)
    placements = rng.integers(0, 3, (batch, n_ops))
    return AgentRollout(
        placements=placements,
        internal={"placement": placements},
        old_logp=rng.standard_normal((batch, k)),
    )


class TestRolloutBuffer:
    def test_capacity_trimming(self):
        buf = RolloutBuffer(capacity=20)
        for _ in range(5):
            buf.add(_rollout(10), np.zeros(10))
        assert buf.size == 20

    def test_is_ready(self):
        buf = RolloutBuffer(capacity=20)
        buf.add(_rollout(10), np.zeros(10))
        assert not buf.is_ready()
        buf.add(_rollout(10), np.zeros(10))
        assert buf.is_ready()

    def test_merged_concatenates(self):
        buf = RolloutBuffer(capacity=20)
        buf.add(_rollout(4), np.ones(4))
        buf.add(_rollout(6), 2 * np.ones(6))
        rollout, adv = buf.merged()
        assert rollout.batch_size == 10
        assert adv.tolist() == [1.0] * 4 + [2.0] * 6

    def test_merged_empty_raises(self):
        with pytest.raises(ValueError):
            RolloutBuffer().merged()

    def test_mismatched_advantages_rejected(self):
        buf = RolloutBuffer()
        with pytest.raises(ValueError):
            buf.add(_rollout(4), np.zeros(3))

    def test_clear(self):
        buf = RolloutBuffer()
        buf.add(_rollout(4), np.zeros(4))
        buf.clear()
        assert buf.size == 0

    def test_subset_and_concat_roundtrip(self):
        r = _rollout(6)
        sub = r.subset(np.array([0, 2]))
        assert sub.batch_size == 2
        merged = AgentRollout.concatenate([sub, r.subset(np.array([1]))])
        assert merged.batch_size == 3
